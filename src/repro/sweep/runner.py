"""Sweep execution: resumable, isolated, fingerprint-keyed run dirs.

Each run point of a :class:`~repro.sweep.spec.SweepSpec` executes in
its own directory under ``<run_dir>/points/<key>``, where the key
binds together

* the point's design identity (``design@scale`` plus any node
  override),
* the AP-cache **config fingerprint**
  (:func:`repro.perf.apcache.paaf_fingerprint`) over everything that
  affects results, and
* the **perf-mode key** (:func:`repro.perf.apcache.perf_mode_key`)
  over the knobs that only affect how fast results arrive (``jobs``,
  ``paircheck_mode``, ``apcheck_mode``).

A completed point (``status.json`` state ``done`` with a matching
fingerprint and an ``envelope.json``) is **skipped** on re-run; an
interrupted or failed point directory is scrubbed and re-executed
cleanly.  Points run under a bounded pool of worker *processes* --
one process per point -- so a crashing point marks itself ``failed``
without killing the sweep, and a point exceeding the per-point
timeout is terminated and marked ``timeout``.

Each successful point rolls its timings, obs stats, quality metrics
and qa result fingerprint into one ``repro.qa.bench/v1`` envelope
(``envelope.json``), the unit the reporter aggregates and gates.

Two environment hooks exist purely for the resumability tests:
``REPRO_SWEEP_TEST_CRASH`` hard-kills a worker whose key contains the
value (simulating a mid-run crash that leaves a ``running`` status
behind) and ``REPRO_SWEEP_TEST_HANG`` makes it sleep forever
(exercising the timeout path).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass

from repro.sweep.spec import SweepSpec

RUN_SCHEMA = "repro.sweep.run/v1"
STATUS_SCHEMA = "repro.sweep.status/v1"
LAST_RUN_SCHEMA = "repro.sweep.last_run/v1"

#: Worker exit code for the simulated crash (tests only).
CRASH_EXIT_CODE = 23

DEFAULT_WORKERS = 2
DEFAULT_POINT_TIMEOUT_S = 1800.0


@dataclass(frozen=True)
class PlannedPoint:
    """One expanded run point with its directory key resolved."""

    key: str
    point: dict
    fingerprint: str
    perf_key: str


def point_config(point: dict, cache_dir: str = None, profile: bool = True):
    """Build the :class:`PaafConfig` a point runs under."""
    from repro.core import PaafConfig
    from repro.sweep.spec import POINT_FIELDS

    kwargs = {
        name: point[name]
        for name, (_, kind) in POINT_FIELDS.items()
        if kind == "config" and name in point
    }
    return PaafConfig(cache_dir=cache_dir, profile=profile, **kwargs)


def build_point_design(point: dict):
    """Generate the point's design (node override included)."""
    import dataclasses as dc

    from repro.bench.ispd18 import build_testcase, testcase_spec

    spec = testcase_spec(point["design"])
    if point.get("node"):
        spec = dc.replace(spec, node=point["node"])
    kwargs = {}
    if "utilization" in point:
        kwargs["utilization"] = point["utilization"]
    if "multi_height_fraction" in point:
        kwargs["multi_height_fraction"] = point["multi_height_fraction"]
    return build_testcase(spec, scale=point["scale"], **kwargs)


def point_label(point: dict) -> str:
    """Human prefix of a point key: ``design@scale`` plus node."""
    label = f"{point['design']}@{point['scale']:g}"
    if point.get("node"):
        label += f".{point['node']}"
    return label


def plan_points(spec: SweepSpec) -> list:
    """Resolve every point's run-directory key.

    The key embeds the AP-cache config fingerprint (so a quality-knob
    change lands in a fresh directory and the old one reads as stale)
    and the perf-mode key (so ``jobs=1`` and ``jobs=2`` variants of
    the same configuration keep separate timings).  Designs are built
    once per unique geometry to price the fingerprints.
    """
    from repro.perf.apcache import paaf_fingerprint, perf_mode_key

    designs = {}
    planned = []
    for point in spec.points:
        geometry = tuple(
            (name, point.get(name))
            for name in (
                "design",
                "scale",
                "node",
                "utilization",
                "multi_height_fraction",
            )
        )
        if geometry not in designs:
            designs[geometry] = build_point_design(point)
        config = point_config(point)
        fingerprint = paaf_fingerprint(designs[geometry], config)
        perf_key = perf_mode_key(config)
        key = (
            f"{point_label(point)}-{fingerprint[:12]}-{perf_key[:6]}"
        )
        planned.append(
            PlannedPoint(
                key=key,
                point=dict(point),
                fingerprint=fingerprint,
                perf_key=perf_key,
            )
        )
    return planned


def point_dir(run_dir: str, key: str) -> str:
    """Return the directory one point executes in."""
    return os.path.join(run_dir, "points", key)


def _write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _read_json(path: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _write_status(directory: str, state: str, key: str, **extra) -> None:
    payload = {"schema": STATUS_SCHEMA, "state": state, "key": key}
    payload.update(extra)
    _write_json(os.path.join(directory, "status.json"), payload)


# -- the per-point worker -----------------------------------------------------


def _point_main(run_dir: str, key: str, point: dict, cache_dir: str) -> int:
    """Execute one point inside its own process.

    Everything user-visible lands in the point directory: stdout and
    stderr in ``log.txt``, the ``repro.qa.bench/v1`` payload in
    ``envelope.json`` and the terminal state in ``status.json``.
    Returns the process exit code (0 on success).
    """
    directory = point_dir(run_dir, key)
    log_path = os.path.join(directory, "log.txt")
    with open(log_path, "a") as log:
        old_out, old_err = sys.stdout, sys.stderr
        sys.stdout = sys.stderr = log
        try:
            _write_status(
                directory,
                "running",
                key,
                pid=os.getpid(),
                started_unix=round(time.time(), 3),
            )
            _test_hooks(key)
            started = time.perf_counter()
            envelope = _execute_point(point, key, cache_dir)
            wall_s = round(time.perf_counter() - started, 6)
            _write_json(
                os.path.join(directory, "envelope.json"), envelope
            )
            _write_status(
                directory,
                "done",
                key,
                wall_s=wall_s,
                finished_unix=round(time.time(), 3),
            )
            return 0
        except Exception as exc:
            traceback.print_exc(file=log)
            _write_status(
                directory,
                "failed",
                key,
                error=f"{type(exc).__name__}: {exc}",
                finished_unix=round(time.time(), 3),
            )
            return 1
        finally:
            sys.stdout, sys.stderr = old_out, old_err


def _test_hooks(key: str) -> None:
    crash = os.environ.get("REPRO_SWEEP_TEST_CRASH")
    if crash and crash in key:
        # Simulate a hard crash: no status update, no cleanup.  The
        # parent (or the next run) must cope with the stale
        # ``running`` state this leaves behind.
        os._exit(CRASH_EXIT_CODE)
    hang = os.environ.get("REPRO_SWEEP_TEST_HANG")
    if hang and hang in key:
        while True:  # pragma: no cover - killed by the timeout path
            time.sleep(0.2)


def _execute_point(point: dict, key: str, cache_dir: str) -> dict:
    from repro.core import PinAccessFramework
    from repro.core.framework import evaluate_failed_pins
    from repro.qa.metrics import bench_entry, quality_metrics

    design = build_point_design(point)
    config = point_config(point, cache_dir=cache_dir)
    framework = PinAccessFramework(design, config)
    result = framework.run()
    failed = evaluate_failed_pins(design, result.access_map())
    metrics = quality_metrics(result, failed)
    timings = dict(result.timings)
    total = timings.get("total", 0.0)
    connected = len(design.connected_pins())
    perf = {
        "analyze_s": round(total, 6),
        "qps_pins": round(connected / total, 3) if total else 0.0,
    }
    for step in ("step1", "step2", "step3"):
        if step in timings:
            perf[f"{step}_s"] = round(timings[step], 6)
    entry = bench_entry(
        design=design.name,
        scale=point["scale"],
        cells=design.stats()["num_std_cells"],
        perf=perf,
        context={"point": dict(point), "key": key},
        metrics=metrics,
    )
    entry["fingerprint"] = result.fingerprint().to_json()
    entry["stats"] = dict(result.stats)
    return entry


# -- the sweep scheduler ------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    run_dir: str,
    workers: int = None,
    point_timeout_s: float = None,
    out=None,
) -> dict:
    """Execute a sweep into ``run_dir``; return the invocation summary.

    Completed points whose key (config fingerprint + perf mode) is
    already on disk are skipped; everything else runs under at most
    ``workers`` concurrent processes with a per-point timeout.  The
    summary is also persisted as ``<run_dir>/last_run.json`` so CI can
    assert cache behavior (e.g. "a re-run executes zero points").
    """
    out = out or (lambda *_: None)
    workers = _resolve(workers, spec.options.get("workers"), DEFAULT_WORKERS)
    point_timeout_s = _resolve(
        point_timeout_s,
        spec.options.get("point_timeout_s"),
        DEFAULT_POINT_TIMEOUT_S,
    )
    os.makedirs(os.path.join(run_dir, "points"), exist_ok=True)
    cache_dir = spec.options.get("cache_dir", "apcache")
    if not os.path.isabs(cache_dir):
        cache_dir = os.path.join(run_dir, cache_dir)

    planned = plan_points(spec)
    _write_json(
        os.path.join(run_dir, "spec.json"),
        {
            "name": spec.name,
            "points": list(spec.points),
            "options": spec.options,
            "digest": spec.digest,
        },
    )
    _write_json(
        os.path.join(run_dir, "sweep.json"),
        {
            "schema": RUN_SCHEMA,
            "name": spec.name,
            "spec_digest": spec.digest,
            "points": [pp.key for pp in planned],
        },
    )

    started = time.perf_counter()
    skipped, to_run = [], []
    for pp in planned:
        if _is_cached(run_dir, pp):
            skipped.append(pp.key)
            out(f"[cached] {pp.key}")
        else:
            _scrub_point(run_dir, pp)
            to_run.append(pp)

    states = _schedule(
        run_dir, to_run, workers, point_timeout_s, cache_dir, out
    )
    summary = {
        "schema": LAST_RUN_SCHEMA,
        "name": spec.name,
        "spec_digest": spec.digest,
        "workers": workers,
        "point_timeout_s": point_timeout_s,
        "skipped": sorted(skipped),
        "executed": sorted(states),
        "done": sorted(k for k, s in states.items() if s == "done"),
        "failed": sorted(k for k, s in states.items() if s == "failed"),
        "timeout": sorted(k for k, s in states.items() if s == "timeout"),
        "wall_s": round(time.perf_counter() - started, 6),
    }
    _write_json(os.path.join(run_dir, "last_run.json"), summary)
    return summary


def _resolve(*candidates):
    for candidate in candidates:
        if candidate is not None:
            return candidate
    return None


def _is_cached(run_dir: str, pp: PlannedPoint) -> bool:
    directory = point_dir(run_dir, pp.key)
    status = _read_json(os.path.join(directory, "status.json"))
    if not status or status.get("state") != "done":
        return False
    if not os.path.exists(os.path.join(directory, "envelope.json")):
        return False
    meta = _read_json(os.path.join(directory, "point.json"))
    return bool(meta) and meta.get("fingerprint") == pp.fingerprint


def _scrub_point(run_dir: str, pp: PlannedPoint) -> None:
    directory = point_dir(run_dir, pp.key)
    if os.path.isdir(directory):
        shutil.rmtree(directory)
    os.makedirs(directory)
    _write_json(
        os.path.join(directory, "point.json"),
        {
            "key": pp.key,
            "point": pp.point,
            "fingerprint": pp.fingerprint,
            "perf_key": pp.perf_key,
        },
    )


def _schedule(
    run_dir, to_run, workers, point_timeout_s, cache_dir, out
) -> dict:
    """Run the pending points under a bounded process pool."""
    states = {}
    pending = deque(to_run)
    live = {}
    context = multiprocessing.get_context()
    while pending or live:
        while pending and len(live) < max(1, workers):
            pp = pending.popleft()
            try:
                process = context.Process(
                    target=_point_entry,
                    args=(run_dir, pp.key, pp.point, cache_dir),
                    name=f"sweep-{pp.key}",
                )
                process.start()
            except OSError:
                # Platforms without process support degrade to
                # in-process execution (no timeout enforcement), the
                # same posture as repro.perf.parallel.
                code = _point_main(run_dir, pp.key, pp.point, cache_dir)
                states[pp.key] = _finalize(run_dir, pp.key, code, out)
                continue
            live[pp.key] = (process, time.monotonic() + point_timeout_s)
        if not live:
            continue
        time.sleep(0.02)
        for key, (process, deadline) in list(live.items()):
            if process.is_alive():
                if time.monotonic() < deadline:
                    continue
                process.terminate()
                process.join(5.0)
                if process.is_alive():  # pragma: no cover
                    process.kill()
                    process.join(5.0)
                _write_status(
                    point_dir(run_dir, key),
                    "timeout",
                    key,
                    error=f"point exceeded {point_timeout_s:g}s",
                    finished_unix=round(time.time(), 3),
                )
                states[key] = "timeout"
                out(f"[timeout] {key}")
                del live[key]
                continue
            process.join()
            del live[key]
            states[key] = _finalize(run_dir, key, process.exitcode, out)
    return states


def _point_entry(run_dir, key, point, cache_dir):  # pragma: no cover
    sys.exit(_point_main(run_dir, key, point, cache_dir))


def _finalize(run_dir: str, key: str, exitcode: int, out) -> str:
    """Reconcile a finished worker's on-disk state with its exit code."""
    directory = point_dir(run_dir, key)
    status = _read_json(os.path.join(directory, "status.json")) or {}
    state = status.get("state")
    if state == "done" and exitcode == 0:
        out(f"[done] {key} ({status.get('wall_s', 0):.2f}s)")
        return "done"
    if state != "failed":
        # The worker died without reaching its own failure handler
        # (hard crash, signal): record what the parent knows.
        _write_status(
            directory,
            "failed",
            key,
            error=f"worker exited with code {exitcode}",
            returncode=exitcode,
            finished_unix=round(time.time(), 3),
        )
    out(f"[failed] {key} (exit {exitcode})")
    return "failed"


# -- status -------------------------------------------------------------------


def sweep_status(run_dir: str) -> dict:
    """Summarize a run directory point by point.

    Points are read from the ``sweep.json`` manifest when present
    (so stale directories from an edited spec are ignored), falling
    back to a scan of ``points/``.
    """
    manifest = _read_json(os.path.join(run_dir, "sweep.json"))
    points_root = os.path.join(run_dir, "points")
    if manifest and manifest.get("points"):
        keys = list(manifest["points"])
    elif os.path.isdir(points_root):
        keys = sorted(os.listdir(points_root))
    else:
        keys = []
    points = []
    counts = {}
    for key in keys:
        directory = os.path.join(points_root, key)
        status = _read_json(os.path.join(directory, "status.json")) or {}
        meta = _read_json(os.path.join(directory, "point.json")) or {}
        state = status.get("state", "pending")
        counts[state] = counts.get(state, 0) + 1
        points.append(
            {
                "key": key,
                "state": state,
                "wall_s": status.get("wall_s"),
                "error": status.get("error"),
                "point": meta.get("point", {}),
                "has_envelope": os.path.exists(
                    os.path.join(directory, "envelope.json")
                ),
            }
        )
    return {
        "schema": STATUS_SCHEMA,
        "run_dir": run_dir,
        "name": (manifest or {}).get("name"),
        "counts": counts,
        "points": points,
    }
