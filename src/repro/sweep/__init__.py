"""Manifest-driven DSE sweeps (``repro sweep``).

The paper's Tables I-III are sensitivity sweeps -- designs x tech
nodes x configurations -- and this package makes them a first-class,
machine-checked workload instead of hand-run benchmark scripts:

* :mod:`repro.sweep.spec` -- declarative YAML/JSON sweep manifests
  expanded into a matrix of run points;
* :mod:`repro.sweep.runner` -- resumable, process-isolated execution
  into per-point directories keyed by the AP-cache config fingerprint
  (completed points skip, interrupted points re-run cleanly), each
  point emitting one ``repro.qa.bench/v1`` envelope;
* :mod:`repro.sweep.report` -- trend aggregation (markdown + JSON)
  gated against committed goldens and ``BENCH_*.json`` baselines with
  configurable regression tolerances.

See ``docs/SWEEP.md`` for the spec schema, the run-directory layout
and the regression-gate semantics.
"""

from repro.sweep.report import (
    REPORT_SCHEMA,
    baseline_checks,
    build_report,
    load_rows,
    render_markdown,
)
from repro.sweep.runner import (
    LAST_RUN_SCHEMA,
    RUN_SCHEMA,
    STATUS_SCHEMA,
    PlannedPoint,
    plan_points,
    point_dir,
    run_sweep,
    sweep_status,
)
from repro.sweep.spec import (
    SPEC_SCHEMA,
    SpecError,
    SweepSpec,
    expand_spec,
    load_spec,
    parse_simple_yaml,
)

__all__ = [
    "REPORT_SCHEMA",
    "baseline_checks",
    "build_report",
    "load_rows",
    "render_markdown",
    "LAST_RUN_SCHEMA",
    "RUN_SCHEMA",
    "STATUS_SCHEMA",
    "PlannedPoint",
    "plan_points",
    "point_dir",
    "run_sweep",
    "sweep_status",
    "SPEC_SCHEMA",
    "SpecError",
    "SweepSpec",
    "expand_spec",
    "load_spec",
    "parse_simple_yaml",
]
