"""Sweep trend reports and the regression gate.

The reporter aggregates the ``repro.qa.bench/v1`` envelopes a sweep
run produced into one trend report (markdown + JSON) and gates it
three ways:

* **point health** -- failed or timed-out points are regressions;
* **baselines** (``--against BENCH_*.json``) -- each baseline entry
  is translated into checks against matching sweep points (wall
  time, QPS, any shared perf key) with configurable tolerances; the
  translator understands the repo's historic baseline vocabularies
  (``array_test1_s`` per-case cold analyze times, ``serial_s`` /
  ``parallel2_s`` job-count variants) as well as any key a sweep
  itself emits;
* **goldens** (``--goldens DIR``) -- points run at the default
  quality configuration are checked for bit-identical qa
  fingerprints and non-regressing quality metrics against the
  committed golden records.

``repro sweep report --fail-on-regress`` exits non-zero when any
check regresses, which is exactly what the CI ``sweep-smoke`` job
runs on every push.
"""

from __future__ import annotations

import json
import os
import re

from repro.qa.metrics import (
    BENCH_SCHEMA,
    compare_metrics,
    gate_value,
    migrate_bench_entry,
    perf_direction,
    perf_tolerance,
)

REPORT_SCHEMA = "repro.sweep.report/v1"

#: Point fields that change results (anything beyond these being
#: non-default disqualifies a point from golden comparison).
_PERF_ONLY_POINT_FIELDS = frozenset(
    {"design", "scale", "jobs", "paircheck_mode", "apcheck_mode"}
)

_CASE_PERF_RE = re.compile(r"(array|engine)_(test\d+)_s\Z")
_PARALLEL_PERF_RE = re.compile(r"parallel(\d+)_s\Z")


def load_rows(run_dir: str) -> list:
    """Load the envelopes under a run directory.

    Understands two layouts: a sweep run directory
    (``points/<key>/envelope.json`` plus statuses, manifest-filtered)
    and a flat directory of ``repro.qa.bench/v1`` JSON files (what
    :func:`benchmarks.conftest.publish_envelope` emits), so the same
    reporter serves sweeps and the hand-run benchmark harness.
    """
    points_root = os.path.join(run_dir, "points")
    if os.path.isdir(points_root):
        from repro.sweep.runner import sweep_status

        rows = []
        for status in sweep_status(run_dir)["points"]:
            envelope = _read_json(
                os.path.join(points_root, status["key"], "envelope.json")
            )
            rows.append(
                {
                    "key": status["key"],
                    "state": status["state"],
                    "error": status.get("error"),
                    "point": status.get("point", {}),
                    "envelope": envelope,
                }
            )
        return rows
    rows = []
    if not os.path.isdir(run_dir):
        return rows
    for name in sorted(os.listdir(run_dir)):
        if not name.endswith(".json"):
            continue
        payload = _read_json(os.path.join(run_dir, name))
        entries = payload if isinstance(payload, list) else [payload]
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                continue
            entry = migrate_bench_entry(entry)
            if entry.get("schema") != BENCH_SCHEMA:
                continue
            key = name[: -len(".json")]
            if len(entries) > 1:
                key = f"{key}[{index}]"
            point = entry.get("context", {}).get("point", {})
            rows.append(
                {
                    "key": key,
                    "state": "done",
                    "error": None,
                    "point": point,
                    "envelope": entry,
                }
            )
    return rows


def _read_json(path: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# -- baseline translation -----------------------------------------------------


def baseline_checks(entry: dict) -> list:
    """Translate one baseline envelope into point-selector checks.

    Returns ``(selector, perf_key, want, direction, source_key)``
    tuples, where ``source_key`` is the baseline's own key (tolerance
    files may address either name; the source key wins).  The
    selector constrains design/scale and, when the baseline key
    encodes one, the perf mode of the points it may gate:

    * ``array_test5_s`` / ``engine_test5_s`` (BENCH_analyze.json's
      per-case corpus times) gate ``analyze_s`` of ``ispd18_test5``
      points running that ``apcheck_mode``;
    * ``serial_s`` / ``parallelN_s`` (BENCH_parallel.json) gate
      ``analyze_s`` of ``jobs=1`` / ``jobs=N`` points;
    * any other key with an inferable direction gates the same key on
      design+scale alone.
    """
    entry = migrate_bench_entry(entry)
    design = entry.get("design")
    scale = entry.get("scale")
    checks = []
    for key, want in sorted(entry.get("perf", {}).items()):
        if not isinstance(want, (int, float)) or isinstance(want, bool):
            continue
        case = _CASE_PERF_RE.fullmatch(key)
        parallel = _PARALLEL_PERF_RE.fullmatch(key)
        if case:
            selector = {
                "design": f"ispd18_{case.group(2)}",
                "scale": scale,
                "apcheck_mode": case.group(1),
            }
            checks.append((selector, "analyze_s", want, "lower", key))
        elif key == "serial_s":
            selector = {"design": design, "scale": scale, "jobs": 1}
            checks.append((selector, "analyze_s", want, "lower", key))
        elif parallel:
            selector = {
                "design": design,
                "scale": scale,
                "jobs": int(parallel.group(1)),
            }
            checks.append((selector, "analyze_s", want, "lower", key))
        else:
            direction = perf_direction(key)
            if direction is not None:
                selector = {"design": design, "scale": scale}
                checks.append((selector, key, want, direction, key))
    return checks


_POINT_MODE_DEFAULTS = {
    "jobs": 1,
    "paircheck_mode": "kernel",
    "apcheck_mode": "array",
}


def _matches(row: dict, selector: dict) -> bool:
    envelope = row.get("envelope") or {}
    if envelope.get("design") != selector.get("design"):
        return False
    want_scale = selector.get("scale")
    have_scale = envelope.get("scale")
    if want_scale is not None:
        if have_scale is None:
            return False
        if abs(have_scale - want_scale) > 1e-9:
            return False
    point = row.get("point") or {}
    for field, default in _POINT_MODE_DEFAULTS.items():
        if field in selector:
            if point.get(field, default) != selector[field]:
                return False
    return True


def _is_default_quality_point(point: dict) -> bool:
    """True when a point changes nothing the golden records capture.

    Perf-only knobs never affect results.  A config knob written out
    explicitly at its :class:`PaafConfig` default (a sweep axis that
    includes the default value) does not disqualify the point either.
    """
    from repro.core.config import PaafConfig
    from repro.sweep.spec import POINT_FIELDS

    defaults = PaafConfig()
    for field, value in point.items():
        if field in _PERF_ONLY_POINT_FIELDS:
            continue
        _, kind = POINT_FIELDS[field]
        if kind != "config":
            return False
        if value != getattr(defaults, field):
            return False
    return True


# -- report building ----------------------------------------------------------


def build_report(
    rows: list,
    baselines: list = None,
    goldens_dir: str = None,
    tolerances: dict = None,
) -> dict:
    """Aggregate rows and run every configured comparison.

    ``baselines`` is a list of ``(label, entries)`` pairs; the latest
    entry of each history gates the sweep.  ``tolerances`` maps perf
    keys / metric names to ``{"abs": x, "rel": y}`` with
    ``_perf_default`` as the perf fallback.
    """
    tolerances = tolerances or {}
    report = {
        "schema": REPORT_SCHEMA,
        "points": [],
        "baselines": [],
        "goldens": [],
        "regressions": [],
    }
    for row in rows:
        envelope = row.get("envelope") or {}
        summary = {
            "key": row["key"],
            "state": row.get("state", "done"),
            "design": envelope.get("design"),
            "scale": envelope.get("scale"),
            "point": row.get("point", {}),
            "perf": dict(envelope.get("perf", {})),
            "metrics": dict(envelope.get("metrics", {})),
            "digest": (envelope.get("fingerprint") or {}).get("digest"),
        }
        report["points"].append(summary)
        if summary["state"] != "done":
            report["regressions"].append(
                {
                    "kind": "point",
                    "point": row["key"],
                    "detail": f"state {summary['state']}: "
                    f"{row.get('error') or 'no envelope'}",
                }
            )
    done = [r for r in rows if r.get("state") == "done" and r.get("envelope")]

    for label, entries in baselines or []:
        latest = migrate_bench_entry(entries[-1])
        block = {"baseline": label, "checks": [], "unmatched": []}
        for selector, perf_key, want, direction, source in baseline_checks(
            latest
        ):
            matched = [r for r in done if _matches(r, selector)]
            if not matched:
                block["unmatched"].append(
                    {"selector": selector, "perf_key": source}
                )
                continue
            for row in matched:
                have = row["envelope"].get("perf", {}).get(perf_key)
                if have is None:
                    continue
                if source in tolerances:
                    tolerance = tolerances[source]
                else:
                    tolerance = perf_tolerance(perf_key, tolerances)
                status = gate_value(want, have, direction, tolerance)
                check = {
                    "point": row["key"],
                    "perf_key": perf_key,
                    "source_key": source,
                    "want": want,
                    "have": have,
                    "status": status,
                }
                block["checks"].append(check)
                if status == "regressed":
                    report["regressions"].append(
                        {
                            "kind": "baseline",
                            "baseline": label,
                            "point": row["key"],
                            "detail": f"{source}: {want} -> {have}",
                        }
                    )
        metrics = latest.get("metrics")
        if metrics:
            for row in done:
                selector = {
                    "design": latest.get("design"),
                    "scale": latest.get("scale"),
                }
                if not _matches(row, selector):
                    continue
                for name, want, have, status in compare_metrics(
                    metrics, row["envelope"].get("metrics", {}), tolerances
                ):
                    check = {
                        "point": row["key"],
                        "perf_key": name,
                        "want": want,
                        "have": have,
                        "status": status,
                    }
                    block["checks"].append(check)
                    if status == "regressed":
                        report["regressions"].append(
                            {
                                "kind": "baseline",
                                "baseline": label,
                                "point": row["key"],
                                "detail": f"{name}: {want} -> {have}",
                            }
                        )
        report["baselines"].append(block)

    if goldens_dir:
        report["goldens"] = _golden_checks(
            done, goldens_dir, tolerances, report["regressions"]
        )
    return report


def _golden_checks(done, goldens_dir, tolerances, regressions) -> list:
    from repro.qa.golden import case_id

    checks = []
    for row in done:
        point = row.get("point") or {}
        if not _is_default_quality_point(point):
            continue
        envelope = row["envelope"]
        design = envelope.get("design")
        scale = envelope.get("scale")
        if design is None or scale is None:
            continue
        path = os.path.join(
            goldens_dir, case_id(design, scale) + ".json"
        )
        record = _read_json(path)
        if not record or "fingerprint" not in record:
            continue
        golden_digest = record["fingerprint"].get("digest")
        have_digest = (envelope.get("fingerprint") or {}).get("digest")
        check = {
            "point": row["key"],
            "golden": os.path.basename(path),
            "digest_match": bool(
                golden_digest and golden_digest == have_digest
            ),
            "metric_rows": [],
        }
        if not check["digest_match"]:
            regressions.append(
                {
                    "kind": "golden",
                    "point": row["key"],
                    "detail": "result fingerprint drifted from "
                    f"{check['golden']}",
                }
            )
        rows = compare_metrics(
            record.get("metrics", {}),
            envelope.get("metrics", {}),
            tolerances,
        )
        check["metric_rows"] = [list(r) for r in rows]
        for name, want, have, status in rows:
            if status == "regressed":
                regressions.append(
                    {
                        "kind": "golden",
                        "point": row["key"],
                        "detail": f"{name}: {want} -> {have}",
                    }
                )
        checks.append(check)
    return checks


# -- rendering ----------------------------------------------------------------

_TREND_COLUMNS = ("analyze_s", "qps_pins")
_TREND_METRICS = ("access_points", "failed_pins")


def render_markdown(report: dict, title: str = "Sweep trend report") -> str:
    """Render the report as the markdown CI uploads as an artifact."""
    lines = [f"# {title}", ""]
    counts = {}
    for point in report["points"]:
        counts[point["state"]] = counts.get(point["state"], 0) + 1
    summary = ", ".join(
        f"{count} {state}" for state, count in sorted(counts.items())
    )
    lines.append(
        f"{len(report['points'])} point(s): {summary or 'none'}; "
        f"{len(report['regressions'])} regression(s)"
    )
    lines.append("")
    header = (
        ["point", "state", "jobs"]
        + list(_TREND_COLUMNS)
        + list(_TREND_METRICS)
    )
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for point in report["points"]:
        cells = [
            point["key"],
            point["state"],
            str(point.get("point", {}).get("jobs", 1)),
        ]
        for column in _TREND_COLUMNS:
            cells.append(_fmt(point["perf"].get(column)))
        for metric in _TREND_METRICS:
            cells.append(_fmt(point["metrics"].get(metric)))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")

    for block in report["baselines"]:
        lines.append(f"## Baseline: {block['baseline']}")
        lines.append("")
        if block["checks"]:
            lines.append("| point | key | baseline | current | status |")
            lines.append("|---|---|---|---|---|")
            for check in block["checks"]:
                lines.append(
                    f"| {check['point']} | {check['perf_key']} | "
                    f"{_fmt(check['want'])} | {_fmt(check['have'])} | "
                    f"{check['status']} |"
                )
        else:
            lines.append("no matching points")
        for miss in block["unmatched"]:
            lines.append(
                f"- unmatched: {miss['perf_key']} "
                f"(selector {json.dumps(miss['selector'], sort_keys=True)})"
            )
        lines.append("")

    if report["goldens"]:
        lines.append("## Goldens")
        lines.append("")
        for check in report["goldens"]:
            verdict = "identical" if check["digest_match"] else "DRIFTED"
            lines.append(
                f"- {check['point']} vs {check['golden']}: "
                f"fingerprint {verdict}"
            )
            for name, want, have, status in check["metric_rows"]:
                if status != "ok":
                    lines.append(
                        f"  - {name}: {_fmt(want)} -> {_fmt(have)} "
                        f"({status})"
                    )
        lines.append("")

    if report["regressions"]:
        lines.append("## Regressions")
        lines.append("")
        for regression in report["regressions"]:
            prefix = regression.get("baseline") or regression["kind"]
            lines.append(
                f"- [{prefix}] {regression['point']}: "
                f"{regression['detail']}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
