"""Sweep specifications: the declarative side of ``repro sweep``.

A sweep spec is a small YAML or JSON document that declares a design
space exploration over the paper's own sensitivity axes (Tables
I-III): designs x scale x tech node x quality knobs (``k``, ``alpha``,
pattern budget, BCA) x perf knobs (``jobs``, ``paircheck_mode``,
``apcheck_mode``).  :func:`load_spec` reads the file,
:func:`expand_spec` validates it and expands the ``axes`` cartesian
product (plus any explicit ``points``) into a normalized, duplicate-
free list of run points, each a plain dict of point fields.

The YAML support is a deliberately small stdlib-only subset -- block
mappings, block lists (of scalars or mappings), flow lists, ``#``
comments and JSON-ish scalars -- because the container ships no YAML
parser and a sweep manifest needs nothing more.  Anything outside the
subset raises :class:`SpecError` with the offending line, and a
``.json`` spec bypasses the subset entirely.

Example::

    name: smoke
    defaults:
      scale: 0.004
    axes:
      design: [ispd18_test1, ispd18_test5]
      jobs: [1, 2]
    options:
      workers: 2
      point_timeout_s: 600
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

SPEC_SCHEMA = "repro.sweep.spec/v1"

#: Point fields, their types, and whether they feed design generation
#: (``geometry``) or the :class:`~repro.core.config.PaafConfig`.
POINT_FIELDS = {
    "design": (str, "geometry"),
    "scale": (float, "geometry"),
    "node": (str, "geometry"),
    "utilization": (float, "geometry"),
    "multi_height_fraction": (float, "geometry"),
    "k": (int, "config"),
    "alpha": (float, "config"),
    "patterns_per_unique_instance": (int, "config"),
    "boundary_conflict_aware": (bool, "config"),
    "require_cut_on_pin": (bool, "config"),
    "paircheck_mode": (str, "config"),
    "apcheck_mode": (str, "config"),
    "jobs": (int, "config"),
}

#: Point fields that never change results, only how fast they arrive.
PERF_POINT_FIELDS = frozenset({"jobs", "paircheck_mode", "apcheck_mode"})

POINT_DEFAULTS = {"scale": 0.004, "jobs": 1}

OPTION_FIELDS = {
    "workers": int,
    "point_timeout_s": float,
    "cache_dir": str,
    "tolerances": dict,
}

VALID_NODES = ("N45", "N32", "N14")


class SpecError(ValueError):
    """A malformed sweep spec: report the reason, not a traceback."""


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep: its name, expanded points and run options."""

    name: str
    points: tuple
    options: dict
    digest: str

    @property
    def tolerances(self) -> dict:
        """Regression tolerances declared by the spec (may be empty)."""
        return self.options.get("tolerances", {})


def load_spec(path: str) -> SweepSpec:
    """Read and expand a sweep spec file (``.json`` or YAML subset)."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".json"):
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raw = parse_simple_yaml(text)
    if not isinstance(raw, dict):
        raise SpecError(f"{path}: spec must be a mapping, got {type(raw)}")
    return expand_spec(raw, source=path)


def expand_spec(raw: dict, source: str = "<spec>") -> SweepSpec:
    """Validate a raw spec mapping and expand it into run points."""
    allowed = {"schema", "name", "defaults", "axes", "points", "options"}
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise SpecError(
            f"{source}: unknown top-level key(s): {', '.join(unknown)}"
        )
    schema = raw.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise SpecError(
            f"{source}: schema {schema!r} is not {SPEC_SCHEMA!r}"
        )
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError(f"{source}: a non-empty 'name' is required")

    defaults = _check_fields(raw.get("defaults", {}), f"{source}: defaults")
    axes = raw.get("axes", {})
    if not isinstance(axes, dict):
        raise SpecError(f"{source}: 'axes' must be a mapping of lists")
    for axis, values in axes.items():
        if axis not in POINT_FIELDS:
            raise SpecError(
                f"{source}: unknown axis {axis!r} "
                f"(known: {', '.join(sorted(POINT_FIELDS))})"
            )
        if not isinstance(values, list) or not values:
            raise SpecError(
                f"{source}: axis {axis!r} must be a non-empty list"
            )

    points = []
    if axes:
        names = sorted(axes)
        for combo in itertools.product(*(axes[n] for n in names)):
            points.append(dict(zip(names, combo)))
    for extra in raw.get("points", []) or []:
        if not isinstance(extra, dict):
            raise SpecError(
                f"{source}: each entry under 'points' must be a mapping"
            )
        points.append(dict(extra))
    if not points:
        raise SpecError(f"{source}: no points (empty 'axes' and 'points')")

    normalized = []
    seen = set()
    for point in points:
        merged = {**POINT_DEFAULTS, **defaults, **point}
        merged = _check_fields(merged, f"{source}: point")
        if "design" not in merged:
            raise SpecError(
                f"{source}: point {point!r} has no 'design' "
                "(set it as an axis, a default or per point)"
            )
        _check_point_values(merged, source)
        frozen = tuple(sorted(merged.items()))
        if frozen in seen:
            raise SpecError(f"{source}: duplicate point {merged!r}")
        seen.add(frozen)
        normalized.append(merged)

    options = raw.get("options", {})
    if not isinstance(options, dict):
        raise SpecError(f"{source}: 'options' must be a mapping")
    for key, value in options.items():
        want = OPTION_FIELDS.get(key)
        if want is None:
            raise SpecError(
                f"{source}: unknown option {key!r} "
                f"(known: {', '.join(sorted(OPTION_FIELDS))})"
            )
        coerced = _coerce(value, want)
        if coerced is None:
            raise SpecError(
                f"{source}: option {key!r} must be {want.__name__}, "
                f"got {value!r}"
            )
        options[key] = coerced

    digest = hashlib.sha256(
        json.dumps(
            {"name": name, "points": normalized, "options": options},
            sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()
    return SweepSpec(
        name=name,
        points=tuple(normalized),
        options=dict(options),
        digest=digest,
    )


def _check_fields(mapping: dict, label: str) -> dict:
    if not isinstance(mapping, dict):
        raise SpecError(f"{label} must be a mapping, got {mapping!r}")
    out = {}
    for key, value in mapping.items():
        spec = POINT_FIELDS.get(key)
        if spec is None:
            raise SpecError(
                f"{label}: unknown field {key!r} "
                f"(known: {', '.join(sorted(POINT_FIELDS))})"
            )
        coerced = _coerce(value, spec[0])
        if coerced is None:
            raise SpecError(
                f"{label}: field {key!r} must be {spec[0].__name__}, "
                f"got {value!r}"
            )
        out[key] = coerced
    return out


def _coerce(value, want):
    """Coerce a parsed scalar to the declared type; None on mismatch."""
    if want is float and isinstance(value, int):
        return float(value)
    if want is int and isinstance(value, bool):
        return None
    if isinstance(value, want):
        return value
    return None


def _check_point_values(point: dict, source: str) -> None:
    from repro.bench.ispd18 import testcase_spec

    try:
        testcase_spec(point["design"])
    except KeyError as exc:
        raise SpecError(f"{source}: {exc.args[0]}") from exc
    node = point.get("node")
    if node is not None and node not in VALID_NODES:
        raise SpecError(
            f"{source}: unknown node {node!r} "
            f"(choose from {', '.join(VALID_NODES)})"
        )
    if point.get("scale", 1) <= 0:
        raise SpecError(f"{source}: scale must be positive")
    for mode, choices in (
        ("paircheck_mode", ("kernel", "engine", "verify")),
        ("apcheck_mode", ("array", "engine", "verify")),
    ):
        value = point.get(mode)
        if value is not None and value not in choices:
            raise SpecError(
                f"{source}: {mode} must be one of {', '.join(choices)}, "
                f"got {value!r}"
            )
    if point.get("jobs", 0) < 0:
        raise SpecError(f"{source}: jobs must be >= 0 (0 = all cores)")


# -- YAML subset parser -------------------------------------------------------


def parse_simple_yaml(text: str):
    """Parse the YAML subset sweep specs use (stdlib only).

    Supported: block mappings, block lists of scalars or mappings
    (``- key: value`` items), flow lists (``[a, b]``), ``#`` comments
    and JSON-ish scalars (int, float, bool, null, quoted strings).
    """
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        if "\t" in stripped[: len(stripped) - len(stripped.lstrip())]:
            raise SpecError(f"line {number}: tabs are not allowed in indent")
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append([indent, stripped.strip(), number])
    if not lines:
        return {}
    value, pos = _parse_block(lines, 0, lines[0][0])
    if pos != len(lines):
        raise SpecError(
            f"line {lines[pos][2]}: unexpected indentation"
        )
    return value


def _strip_comment(line: str) -> str:
    quote = None
    for i, char in enumerate(line):
        if quote:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#":
            return line[:i]
    return line


def _parse_block(lines, pos, indent):
    if lines[pos][1].startswith("- ") or lines[pos][1] == "-":
        return _parse_list(lines, pos, indent)
    return _parse_map(lines, pos, indent)


def _parse_map(lines, pos, indent):
    out = {}
    while pos < len(lines):
        line_indent, text, number = lines[pos]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise SpecError(f"line {number}: unexpected indentation")
        if text.startswith("- ") or text == "-":
            break
        key, sep, rest = text.partition(":")
        if not sep or (rest and not rest.startswith(" ")):
            raise SpecError(f"line {number}: expected 'key: value'")
        key = _scalar(key.strip())
        rest = rest.strip()
        pos += 1
        if rest:
            out[key] = _scalar_or_flow(rest, number)
        elif pos < len(lines) and lines[pos][0] > indent:
            out[key], pos = _parse_block(lines, pos, lines[pos][0])
        else:
            out[key] = None
    return out, pos


def _parse_list(lines, pos, indent):
    out = []
    while pos < len(lines):
        line_indent, text, number = lines[pos]
        if line_indent != indent or not (
            text.startswith("- ") or text == "-"
        ):
            if line_indent > indent:
                raise SpecError(f"line {number}: unexpected indentation")
            break
        rest = text[1:].strip()
        if not rest:
            pos += 1
            if pos < len(lines) and lines[pos][0] > indent:
                item, pos = _parse_block(lines, pos, lines[pos][0])
            else:
                item = None
            out.append(item)
        elif _looks_like_mapping(rest):
            # An inline mapping item: re-home the first key at the
            # item's inner indent and let the mapping parser pick up
            # any following keys at the same depth.
            inner = indent + (len(text) - len(rest))
            lines[pos] = [inner, rest, number]
            item, pos = _parse_map(lines, pos, inner)
            out.append(item)
        else:
            out.append(_scalar_or_flow(rest, number))
            pos += 1
    return out, pos


def _looks_like_mapping(text: str) -> bool:
    if text.startswith(("[", "'", '"')):
        return False
    key, sep, rest = text.partition(":")
    return bool(sep) and (not rest or rest.startswith(" "))


def _scalar_or_flow(text: str, number: int):
    if text.startswith("["):
        if not text.endswith("]"):
            raise SpecError(f"line {number}: unterminated flow list")
        body = text[1:-1].strip()
        if not body:
            return []
        return [_scalar(part.strip()) for part in _split_flow(body, number)]
    if text.startswith("{"):
        raise SpecError(
            f"line {number}: flow mappings are outside the YAML subset; "
            "use block style or a .json spec"
        )
    return _scalar(text)


def _split_flow(body: str, number: int) -> list:
    parts = []
    current = []
    quote = None
    for char in body:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            current.append(char)
            quote = char
        elif char == ",":
            parts.append("".join(current))
            current = []
        elif char in "[]":
            raise SpecError(f"line {number}: nested flow lists unsupported")
        else:
            current.append(char)
    if quote:
        raise SpecError(f"line {number}: unterminated quote")
    parts.append("".join(current))
    return parts


def _scalar(text: str):
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "none", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
