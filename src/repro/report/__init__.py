"""Reporting: the paper's table layouts as plain-text renderers."""

from repro.report.tables import (
    format_table,
    table1_row,
    table2_row,
    table3_row,
    render_table1,
    render_table2,
    render_table3,
    render_qa_check,
    render_qa_metrics,
)

__all__ = [
    "format_table",
    "table1_row",
    "table2_row",
    "table3_row",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_qa_check",
    "render_qa_metrics",
]
