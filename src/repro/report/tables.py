"""Plain-text renderers for the paper's tables.

Each ``tableN_row`` helper turns measured results into the same columns
the paper reports; ``format_table`` aligns them.  The benchmark harness
prints these so a run's output reads like the paper's evaluation
section.
"""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render an aligned plain-text table."""
    table = [list(map(str, headers))] + [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in table) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(sep)
    for row in table[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# -- Table I: testcase information ------------------------------------------

TABLE1_HEADERS = [
    "Benchmark",
    "#Std cell",
    "#Macro",
    "#Net",
    "#IO pin",
    "#Layer",
    "Die size (mm^2)",
    "Node",
]


def table1_row(design) -> list:
    """Build one Table I row from a design's stats."""
    stats = design.stats()
    die_w, die_h = stats["die_mm"]
    return [
        stats["name"],
        stats["num_std_cells"],
        stats["num_macros"],
        stats["num_nets"],
        stats["num_io_pins"],
        stats["num_layers"],
        f"{die_w:.3f}x{die_h:.3f}",
        stats["node"],
    ]


def render_table1(designs: list) -> str:
    """Render Table I for a list of designs."""
    return format_table(
        TABLE1_HEADERS,
        [table1_row(d) for d in designs],
        title="Table I: testcase information (scaled reproduction)",
    )


# -- Table II: Experiment 1 ---------------------------------------------------

TABLE2_HEADERS = [
    "Benchmark",
    "#Unique Inst",
    "TrRte #APs",
    "PAAF #APs",
    "TrRte #Dirty",
    "PAAF #Dirty",
    "TrRte t(s)",
    "PAAF t(s)",
]


def table2_row(
    name,
    num_unique,
    baseline_aps,
    paaf_aps,
    baseline_dirty,
    paaf_dirty,
    baseline_time,
    paaf_time,
) -> list:
    """Build one Table II row (Experiment 1)."""
    return [
        name,
        num_unique,
        baseline_aps,
        paaf_aps,
        baseline_dirty,
        paaf_dirty,
        f"{baseline_time:.2f}",
        f"{paaf_time:.2f}",
    ]


def render_table2(rows: list) -> str:
    """Render Table II from prepared rows."""
    return format_table(
        TABLE2_HEADERS,
        rows,
        title=(
            "Table II / Experiment 1: unique-instance access point quality"
        ),
    )


# -- Table III: Experiment 2 --------------------------------------------------

TABLE3_HEADERS = [
    "Benchmark",
    "Total #Pins",
    "TrRte #Failed",
    "PAAF w/o BCA",
    "PAAF w/ BCA",
    "TrRte t(s)",
    "w/o BCA t(s)",
    "w/ BCA t(s)",
]


def table3_row(
    name,
    total_pins,
    baseline_failed,
    nobca_failed,
    bca_failed,
    baseline_time,
    nobca_time,
    bca_time,
) -> list:
    """Build one Table III row (Experiment 2)."""
    return [
        name,
        total_pins,
        baseline_failed,
        nobca_failed,
        bca_failed,
        f"{baseline_time:.2f}",
        f"{nobca_time:.2f}",
        f"{bca_time:.2f}",
    ]


def render_table3(rows: list) -> str:
    """Render Table III from prepared rows."""
    return format_table(
        TABLE3_HEADERS,
        rows,
        title=(
            "Table III / Experiment 2: instance pin access quality "
            "(intra- + inter-cell)"
        ),
    )


# -- repro.qa: quality metrics and golden-check reports ----------------------


def render_qa_metrics(metrics: dict) -> str:
    """Render one quality-metric record (``repro.qa.metrics`` schema)."""
    rows = [
        [name, metrics[name]]
        for name in sorted(metrics)
        if name not in ("schema", "design")
    ]
    title = (
        f"Quality metrics: {metrics.get('design', '?')} "
        f"({metrics.get('schema', 'unversioned')})"
    )
    return format_table(["metric", "value"], rows, title=title)


def render_qa_check(report: dict) -> str:
    """Render a ``qa check`` report as the per-case verdict table."""
    rows = []
    for entry in report.get("cases", []):
        rows.append(
            [
                entry.get("case", "?"),
                entry.get("status", "?"),
                ",".join(entry.get("drifted_steps", [])) or "-",
                len(entry.get("regressions", [])),
                entry.get("digest", "")[:12],
            ]
        )
    title = (
        f"qa check (jobs={report.get('jobs')}, "
        f"paircheck_mode={report.get('paircheck_mode')}, "
        f"apcheck_mode={report.get('apcheck_mode')})"
    )
    return format_table(
        ["case", "status", "drifted steps", "regressions", "digest"],
        rows,
        title=title,
    )
