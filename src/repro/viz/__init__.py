"""Layout visualization (dependency-free SVG).

The paper's Figures 8 and 9 are layout screenshots: pin shapes, via
enclosures at the selected access points, routed metal and dashed red
DRC markers.  :class:`LayoutPainter` renders the same view of any
design region from this library's data structures, so a reproduction
run can emit figure-like artifacts next to its tables.
"""

from repro.viz.svg import LayoutPainter, render_pin_access, render_routing

__all__ = ["LayoutPainter", "render_pin_access", "render_routing"]
