"""SVG rendering of layouts, pin accesses and DRC markers."""

from __future__ import annotations

from repro.db.design import Design
from repro.geom.rect import Rect

# Layer palette, bottom-up; cut layers render dark.
_LAYER_COLORS = {
    "M1": "#4878cf",
    "M2": "#d65f5f",
    "M3": "#6acc65",
    "M4": "#b47cc7",
    "M5": "#c4ad66",
    "M6": "#77bedb",
    "M7": "#f2a65a",
    "M8": "#8c8c8c",
    "M9": "#e377c2",
}
_CUT_COLOR = "#333333"
_OUTLINE_COLOR = "#999999"
_DRC_COLOR = "#d62728"
_AP_COLOR = "#111111"


class LayoutPainter:
    """Accumulates drawable shapes and emits an SVG document.

    All inputs are design-space DBU; the painter flips y (SVG grows
    downward) and scales to the requested pixel width.
    """

    def __init__(self, window: Rect, pixel_width: int = 800):
        if window.width <= 0 or window.height <= 0:
            raise ValueError("window must have positive area")
        self.window = window
        self.scale = pixel_width / window.width
        self.pixel_width = pixel_width
        self.pixel_height = max(1, round(window.height * self.scale))
        self._elements = []

    # -- coordinate mapping --------------------------------------------------

    def _x(self, x: int) -> float:
        return (x - self.window.xlo) * self.scale

    def _y(self, y: int) -> float:
        return (self.window.yhi - y) * self.scale

    def _rect_attrs(self, rect: Rect) -> str:
        return (
            f'x="{self._x(rect.xlo):.2f}" y="{self._y(rect.yhi):.2f}" '
            f'width="{rect.width * self.scale:.2f}" '
            f'height="{rect.height * self.scale:.2f}"'
        )

    # -- drawing primitives ---------------------------------------------------

    def add_rect(
        self,
        rect: Rect,
        fill: str,
        opacity: float = 0.55,
        stroke: str = "none",
        dashed: bool = False,
        title: str = "",
    ) -> None:
        """Draw a filled (or outlined) rectangle clipped to the window."""
        if not rect.intersects(self.window):
            return
        rect = rect.intersection(self.window)
        if rect.width == 0 or rect.height == 0:
            return
        dash = ' stroke-dasharray="6,3"' if dashed else ""
        stroke_attr = (
            f' stroke="{stroke}" stroke-width="1.5" fill-opacity="{opacity}"'
            if stroke != "none"
            else f' fill-opacity="{opacity}"'
        )
        label = f"<title>{_escape(title)}</title>" if title else ""
        self._elements.append(
            f'<rect {self._rect_attrs(rect)} fill="{fill}"'
            f"{stroke_attr}{dash}>{label}</rect>"
            if title
            else f'<rect {self._rect_attrs(rect)} fill="{fill}"'
            f"{stroke_attr}{dash}/>"
        )

    def add_marker(self, rect: Rect, title: str = "") -> None:
        """Draw a dashed red DRC marker box (paper Figure 8 style)."""
        marker = rect if rect.area > 0 else rect.bloated(10)
        self.add_rect(
            marker,
            fill="none",
            stroke=_DRC_COLOR,
            dashed=True,
            title=title,
            opacity=1.0,
        )

    def add_point(self, x: int, y: int, title: str = "") -> None:
        """Draw an access point cross."""
        if not (
            self.window.xlo <= x <= self.window.xhi
            and self.window.ylo <= y <= self.window.yhi
        ):
            return
        px, py = self._x(x), self._y(y)
        size = 4.0
        label = f"<title>{_escape(title)}</title>" if title else ""
        self._elements.append(
            f'<g stroke="{_AP_COLOR}" stroke-width="1.5">{label}'
            f'<line x1="{px - size:.2f}" y1="{py:.2f}" '
            f'x2="{px + size:.2f}" y2="{py:.2f}"/>'
            f'<line x1="{px:.2f}" y1="{py - size:.2f}" '
            f'x2="{px:.2f}" y2="{py + size:.2f}"/></g>'
        )

    def add_text(self, x: int, y: int, text: str, size: int = 11) -> None:
        """Draw a text label at a design-space point."""
        self._elements.append(
            f'<text x="{self._x(x):.2f}" y="{self._y(y):.2f}" '
            f'font-size="{size}" font-family="sans-serif">'
            f"{_escape(text)}</text>"
        )

    # -- composite draws ------------------------------------------------------

    def draw_design(self, design: Design, layers: tuple = None) -> None:
        """Draw instance outlines and pin/obstruction shapes."""
        for inst in design.instances.values():
            if not inst.bbox.intersects(self.window):
                continue
            self.add_rect(
                inst.bbox,
                fill="none",
                stroke=_OUTLINE_COLOR,
                opacity=1.0,
                title=f"{inst.name} ({inst.master.name})",
            )
            for pin, layer, rect in inst.all_pin_shapes():
                if layers and layer not in layers:
                    continue
                self.add_rect(
                    rect,
                    fill=layer_color(layer),
                    title=f"{inst.name}/{pin.name} {layer}",
                )
            for layer, rect in inst.obstruction_rects():
                if layers and layer not in layers:
                    continue
                self.add_rect(
                    rect, fill="#555555", opacity=0.35,
                    title=f"{inst.name} OBS {layer}",
                )
        for io_pin in design.io_pins.values():
            self.add_rect(
                io_pin.rect,
                fill=layer_color(io_pin.layer_name),
                title=f"IO {io_pin.name}",
            )

    def draw_access(self, design: Design, access_map: dict) -> None:
        """Draw selected access points with their via enclosures."""
        for (inst_name, pin_name), ap in access_map.items():
            if not ap.has_via_access:
                continue
            via = design.tech.via(ap.primary_via)
            bottom = via.bottom_at(ap.x, ap.y)
            top = via.top_at(ap.x, ap.y)
            cut = via.cut_at(ap.x, ap.y)
            if not bottom.intersects(self.window):
                continue
            self.add_rect(
                bottom, fill=layer_color(via.bottom_layer), opacity=0.45
            )
            self.add_rect(top, fill=layer_color(via.top_layer), opacity=0.45)
            self.add_rect(cut, fill=_CUT_COLOR, opacity=0.9)
            self.add_point(
                ap.x, ap.y, title=f"{inst_name}/{pin_name} via {via.name}"
            )

    def draw_routing(self, design: Design, routing_result) -> None:
        """Draw routed wires and vias."""
        for net_name, layer_name, rect in routing_result.wires:
            self.add_rect(
                rect,
                fill=layer_color(layer_name),
                opacity=0.45,
                title=f"{net_name} {layer_name}",
            )
        for net_name, via_name, x, y in routing_result.vias:
            via = design.tech.via(via_name)
            self.add_rect(via.cut_at(x, y), fill=_CUT_COLOR, opacity=0.9)

    def draw_violations(self, violations: list) -> None:
        """Draw every violation as a dashed marker."""
        for v in violations:
            self.add_marker(v.marker, title=str(v))

    # -- output ---------------------------------------------------------------

    def to_svg(self) -> str:
        """Return the SVG document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.pixel_width}" height="{self.pixel_height}" '
            f'viewBox="0 0 {self.pixel_width} {self.pixel_height}">'
        )
        background = (
            f'<rect x="0" y="0" width="{self.pixel_width}" '
            f'height="{self.pixel_height}" fill="#ffffff"/>'
        )
        return "\n".join(
            [header, background, *self._elements, "</svg>"]
        )


def layer_color(layer_name: str) -> str:
    """Return the palette color of a layer (cut layers are dark)."""
    if layer_name.startswith("V"):
        return _CUT_COLOR
    return _LAYER_COLORS.get(layer_name, "#aaaaaa")


def render_pin_access(
    design: Design, access_map: dict, window: Rect = None,
    pixel_width: int = 800,
) -> str:
    """Render a Figure 9-style view: cells, pins and selected accesses."""
    painter = LayoutPainter(window or design.die_area, pixel_width)
    painter.draw_design(design, layers=("M1", "M2", "M3"))
    painter.draw_access(design, access_map)
    return painter.to_svg()


def render_routing(
    design: Design, routing_result, violations: list = (),
    window: Rect = None, pixel_width: int = 800,
) -> str:
    """Render a Figure 8-style view: routed design with DRC markers."""
    painter = LayoutPainter(window or design.die_area, pixel_width)
    painter.draw_design(design, layers=("M1",))
    painter.draw_routing(design, routing_result)
    painter.draw_violations(list(violations))
    return painter.to_svg()


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
