"""Cut-layer spacing checks."""

from __future__ import annotations

from repro.drc.violations import Violation
from repro.geom.rect import Rect
from repro.tech.layer import Layer


def check_cut_spacing(
    layer: Layer, cut: Rect, net_key, context, label: str = "cut"
) -> list:
    """Check a via cut against foreign cuts on the same cut layer.

    Cut spacing applies between any two distinct cuts, same net or not
    (two stacked vias of one net still need distinct-cut spacing), so
    only an *identical* rect with the same net key is skipped -- that is
    the cut itself appearing in the context.
    """
    rule = layer.cut_spacing
    if rule is None:
        return []
    window = cut.bloated(rule.spacing)
    violations = []
    for other, other_key in context.query(layer.name, window):
        if other == cut and other_key == net_key:
            continue
        if cut.overlaps(other):
            violations.append(
                Violation(
                    rule="cut-short",
                    layer_name=layer.name,
                    marker=cut.intersection(other),
                    objects=(label, str(other_key)),
                )
            )
            continue
        if cut.distance(other) < rule.spacing:
            violations.append(
                Violation(
                    rule="cut-spacing",
                    layer_name=layer.name,
                    marker=cut.hull(other),
                    objects=(label, str(other_key)),
                )
            )
    return violations
