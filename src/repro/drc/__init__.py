"""Design rule check engine.

A region-query-backed checker modeled on the one TritonRoute uses for
pin access (paper Sec. III-A: "We use an accurate DRC engine similar to
the one used in [20]").  It interprets, per routing layer: PRL spacing
tables, end-of-line spacing, min-step on merged metal, min-area; and
per cut layer: cut spacing.  Via placements are checked as the stacked
triple (bottom enclosure, cut, top enclosure).

Electrical equivalence is tracked by *net keys*: shapes sharing a net
key merge rather than violate.
"""

from repro.drc.violations import Violation
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.drc.pairkernel import (
    PAIRCHECK_MODES,
    PairCheckMismatch,
    PairKernel,
    PairTable,
    build_pair_table,
)

__all__ = [
    "Violation",
    "ShapeContext",
    "DrcEngine",
    "PAIRCHECK_MODES",
    "PairCheckMismatch",
    "PairKernel",
    "PairTable",
    "build_pair_table",
]
