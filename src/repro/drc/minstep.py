"""Min-step checks on merged metal polygons.

This is the rule behind paper Figure 3: dropping a via whose enclosure
partially overhangs the pin shape creates short boundary edges on the
merged (pin + enclosure) polygon.  On-track and half-track positions
can violate while shape-center and enclosure-boundary positions are
clean -- which is exactly why the coordinate-type ladder exists.
"""

from __future__ import annotations

from repro.drc.violations import Violation
from repro.geom.polygon import boundary_edges
from repro.geom.rect import Rect
from repro.tech.layer import Layer


def check_min_step(layer: Layer, rects: list, label: str = "metal") -> list:
    """Check min-step on the union of ``rects``.

    A maximal run of more than ``max_edges`` consecutive boundary edges
    shorter than ``min_step_length`` is a violation.  The node presets
    use ``max_edges = 0`` (classic LEF semantics): any short edge
    violates.
    """
    rule = layer.min_step
    if rule is None or not rects:
        return []
    violations = []
    for loop in boundary_edges(rects):
        violations.extend(_check_loop(layer, loop, rule, label))
    return violations


def _check_loop(layer: Layer, loop: list, rule, label: str) -> list:
    n = len(loop)
    if n < 4:
        return []
    short = []
    for k in range(n):
        a = loop[k]
        b = loop[(k + 1) % n]
        length = abs(a.x - b.x) + abs(a.y - b.y)
        short.append(length < rule.min_step_length)
    if all(short):
        # Degenerate tiny polygon: one violation covering it all.
        return [
            Violation(
                rule="min-step",
                layer_name=layer.name,
                marker=_loop_bbox(loop),
                objects=(label,),
            )
        ]
    violations = []
    # Walk maximal runs of consecutive short edges.  Start scanning at a
    # long edge so runs are not split across the wrap-around point.
    start = short.index(False)
    run = 0
    run_start = None
    for offset in range(1, n + 1):
        k = (start + offset) % n
        if short[k]:
            if run == 0:
                run_start = k
            run += 1
        else:
            if run > rule.max_edges:
                violations.append(
                    _run_violation(layer, loop, run_start, run, label)
                )
            run = 0
    if run > rule.max_edges:
        violations.append(_run_violation(layer, loop, run_start, run, label))
    return violations


def _run_violation(
    layer: Layer, loop: list, run_start: int, run: int, label: str
):
    n = len(loop)
    pts = [loop[(run_start + i) % n] for i in range(run + 1)]
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Violation(
        rule="min-step",
        layer_name=layer.name,
        marker=Rect(min(xs), min(ys), max(xs), max(ys)),
        objects=(label,),
    )


def _loop_bbox(loop: list) -> Rect:
    xs = [p.x for p in loop]
    ys = [p.y for p in loop]
    return Rect(min(xs), min(ys), max(xs), max(ys))
