"""The DRC engine facade."""

from __future__ import annotations

import time

from repro.drc.cutspacing import check_cut_spacing
from repro.drc.eol import check_eol_spacing
from repro.drc.minarea import check_min_area
from repro.drc.minstep import check_min_step
from repro.drc.spacing import check_metal_spacing
from repro.geom.rect import Rect
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer, current_span_id
from repro.perf.profile import tick
from repro.tech.technology import Technology
from repro.tech.via import ViaDef


class DrcEngine:
    """Checks candidate geometry against a :class:`ShapeContext`.

    The engine is stateless; every method takes the context to check
    against, so callers can reuse one engine across instances, clusters
    and the router.
    """

    def __init__(self, tech: Technology):
        self.tech = tech

    # -- via placements ------------------------------------------------------

    def check_via_placement(
        self,
        via: ViaDef,
        x: int,
        y: int,
        net_key,
        context,
        with_min_step: bool = True,
        label: str = "via",
        min_step_rects: list = None,
    ) -> list:
        """Check dropping ``via`` at ``(x, y)`` for net ``net_key``.

        Performs, in TritonRoute's pin-access scope:

        * bottom/top enclosure metal spacing + EOL vs foreign shapes;
        * cut spacing vs other cuts;
        * min-step on the merged polygon of the bottom enclosure and
          the same-net metal it lands on (the Figure 3 check).  By
          default the merged metal is every touching same-net context
          shape; pass ``min_step_rects`` to scope the merge explicitly
          (e.g. to the accessed pin's own shapes, excluding same-net
          metal of other cells).

        Returns the violation list (empty means DRC-clean).
        """
        # Hot path: grab the observability sinks once (a context-var
        # load each) instead of per tick; both are None-guarded so the
        # disabled cost stays two loads and two tests.
        registry = active_registry()
        tracer = active_tracer()
        record = None
        if tracer is not None:
            record = tracer.begin(
                "drc.via_placement",
                {"via": via.name, "label": label},
                current_span_id(),
            )
        t_start = 0.0
        if registry is not None:
            registry.incr("drc.check.via_placement")
            registry.incr("drc.check.metal_spacing", 2)
            registry.incr("drc.check.eol_spacing", 2)
            registry.incr("drc.check.cut_spacing")
            t_start = time.perf_counter()
        bottom_layer = self.tech.layer(via.bottom_layer)
        cut_layer = self.tech.layer(via.cut_layer)
        top_layer = self.tech.layer(via.top_layer)
        bottom = via.bottom_at(x, y)
        cut = via.cut_at(x, y)
        top = via.top_at(x, y)

        violations = []
        violations.extend(
            check_metal_spacing(bottom_layer, bottom, net_key, context, label)
        )
        violations.extend(
            check_eol_spacing(bottom_layer, bottom, net_key, context, label)
        )
        violations.extend(
            check_metal_spacing(top_layer, top, net_key, context, label)
        )
        violations.extend(
            check_eol_spacing(top_layer, top, net_key, context, label)
        )
        violations.extend(
            check_cut_spacing(cut_layer, cut, net_key, context, label)
        )
        if with_min_step:
            if min_step_rects is not None:
                merged = [bottom] + [
                    r for r in min_step_rects if r.intersects(bottom)
                ]
            else:
                merged = [bottom] + self._touching_same_net(
                    bottom_layer.name, bottom, net_key, context
                )
            violations.extend(check_min_step(bottom_layer, merged, label))
        if registry is not None:
            registry.observe(
                "drc.check.via_placement.seconds",
                time.perf_counter() - t_start,
            )
        if record is not None:
            record["attrs"]["violations"] = len(violations)
            tracer.end(record)
        return violations

    def check_via_pair(
        self, via_a: ViaDef, pa, via_b: ViaDef, pb, same_net: bool = False
    ) -> list:
        """Check two via placements against each other only.

        This is the pairwise compatibility predicate the DP edge costs
        use (paper Algorithm 3 ``isDRCClean``): the vias of two access
        points must obey metal spacing on both enclosure layers, cut
        spacing, and min-step does not apply across nets.  ``pa`` /
        ``pb`` are ``(x, y)`` tuples.

        Net-key handling is deliberate: the probe via always checks as
        net ``"a"``; with ``same_net=True`` the context via is keyed
        ``"a"`` as well, so the same-net pair is *exempt* from metal
        spacing and EOL (same-net metal may abut or short) while cut
        spacing still applies -- ``check_cut_spacing`` only skips the
        identical cut rect, because two distinct same-net cuts (e.g.
        stacked or redundant vias) still need cut-to-cut spacing.
        ``tests/test_drc_engine.py`` pins this contract.
        """
        tick("drc.check.via_pair")
        ctx = _PairContext(via_b, pb, net_key="b" if not same_net else "a")
        return self.check_via_placement(
            via_a,
            pa[0],
            pa[1],
            "a",
            ctx,
            with_min_step=False,
            label="via-pair",
        )

    # -- plain metal ----------------------------------------------------------

    def check_metal_rect(
        self,
        layer_name: str,
        rect: Rect,
        net_key,
        context,
        label: str = "wire",
    ) -> list:
        """Check one metal rect (spacing + EOL) against the context."""
        layer = self.tech.layer(layer_name)
        violations = []
        violations.extend(
            check_metal_spacing(layer, rect, net_key, context, label)
        )
        violations.extend(
            check_eol_spacing(layer, rect, net_key, context, label)
        )
        return violations

    def check_polygon(
        self, layer_name: str, rects: list, label: str = "metal"
    ) -> list:
        """Check min-step and min-area on a merged metal polygon."""
        layer = self.tech.layer(layer_name)
        violations = []
        violations.extend(check_min_step(layer, rects, label))
        violations.extend(check_min_area(layer, rects, label))
        return violations

    # -- helpers --------------------------------------------------------------

    def _touching_same_net(
        self, layer_name: str, rect: Rect, net_key, context
    ) -> list:
        """Return same-net context rects that touch/overlap ``rect``."""
        if net_key is None:
            return []
        out = []
        for other, other_key in context.query(layer_name, rect):
            if other_key == net_key and other.intersects(rect):
                out.append(other)
        return out

    @staticmethod
    def dedupe(violations: list) -> list:
        """Collapse symmetric duplicates (A-vs-B and B-vs-A reports)."""
        seen = set()
        unique = []
        for v in violations:
            key = (v.rule, v.layer_name, v.marker)
            if key in seen:
                continue
            seen.add(key)
            unique.append(v)
        return unique


class _PairContext:
    """A minimal context exposing exactly one via's three shapes."""

    def __init__(self, via: ViaDef, at, net_key):
        x, y = at
        self._shapes = {
            via.bottom_layer: [(via.bottom_at(x, y), net_key)],
            via.cut_layer: [(via.cut_at(x, y), net_key)],
            via.top_layer: [(via.top_at(x, y), net_key)],
        }

    def query(self, layer_name: str, window: Rect) -> list:
        return [
            (rect, key)
            for rect, key in self._shapes.get(layer_name, ())
            if rect.intersects(window)
        ]
