"""Violation records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.rect import Rect


@dataclass(frozen=True, slots=True)
class Violation:
    """One design rule violation.

    ``rule`` is a short identifier (``metal-short``, ``metal-spacing``,
    ``eol-spacing``, ``min-step``, ``min-area``, ``cut-spacing``);
    ``layer_name`` the layer the violation is reported on; ``marker``
    a rectangle locating it (the DRC marker box); ``objects`` a tuple
    of human-readable descriptions of the offending shapes.
    """

    rule: str
    layer_name: str
    marker: Rect
    objects: tuple = ()

    def __str__(self) -> str:
        who = f" between {', '.join(self.objects)}" if self.objects else ""
        return f"{self.rule} on {self.layer_name} at {self.marker}{who}"
