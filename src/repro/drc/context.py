"""Shape context: the fixed geometry a candidate is checked against."""

from __future__ import annotations

from repro.geom.rect import Rect
from repro.geom.spatial import GridIndex


class ShapeContext:
    """Per-layer indexed shapes, each tagged with a *net key*.

    The net key is an arbitrary hashable identifying electrical
    equivalence; two shapes with equal, non-None net keys are the same
    net and do not violate spacing against each other.  ``None`` marks
    obstructions, which are foreign to everything.
    """

    def __init__(self, bucket: int = 10000):
        self._bucket = bucket
        self._layers = {}

    def add(self, layer_name: str, rect: Rect, net_key) -> None:
        """Index ``rect`` on ``layer_name`` under ``net_key``."""
        if layer_name not in self._layers:
            self._layers[layer_name] = GridIndex(bucket=self._bucket)
        self._layers[layer_name].insert(rect, (rect, net_key))

    def query(self, layer_name: str, window: Rect) -> list:
        """Return ``(rect, net_key)`` pairs intersecting ``window``."""
        index = self._layers.get(layer_name)
        if index is None:
            return []
        return index.query(window)

    def layers(self) -> list:
        """Return layer names with at least one shape."""
        return sorted(self._layers)

    @staticmethod
    def from_instance(inst, bucket: int = 2000) -> "ShapeContext":
        """Build the intra-cell context for one instance.

        Pin shapes get the ``(instance name, pin name)`` net key so
        that a via accessing pin A sees pin B as foreign; obstructions
        get ``None``.
        """
        ctx = ShapeContext(bucket=bucket)
        for pin, layer, rect in inst.all_pin_shapes():
            ctx.add(layer, rect, (inst.name, pin.name))
        for layer, rect in inst.obstruction_rects():
            ctx.add(layer, rect, None)
        return ctx

    @staticmethod
    def from_design(design, bucket: int = 10000) -> "ShapeContext":
        """Build the full-design fixed-shape context.

        Pin net keys are the owning net's name when the pin is
        connected (so router metal of the same net can touch it), or
        the ``(instance, pin)`` pair otherwise.
        """
        ctx = ShapeContext(bucket=bucket)
        for inst in design.instances.values():
            for pin, layer, rect in inst.all_pin_shapes():
                net = design.net_of(inst.name, pin.name)
                key = net.name if net is not None else (inst.name, pin.name)
                ctx.add(layer, rect, key)
            for layer, rect in inst.obstruction_rects():
                ctx.add(layer, rect, None)
        for io_pin in design.io_pins.values():
            net_key = None
            for net in design.nets.values():
                if io_pin.name in net.io_pins:
                    net_key = net.name
                    break
            ctx.add(io_pin.layer_name, io_pin.rect, net_key or io_pin.name)
        return ctx
