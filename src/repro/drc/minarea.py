"""Min-area checks."""

from __future__ import annotations

from repro.drc.violations import Violation
from repro.geom.polygon import RectilinearPolygon
from repro.tech.layer import Layer


def check_min_area(layer: Layer, rects: list, label: str = "metal") -> list:
    """Check the union of ``rects`` against the layer's AREA rule."""
    rule = layer.min_area
    if rule is None or not rects:
        return []
    poly = RectilinearPolygon(rects)
    if poly.area >= rule.min_area:
        return []
    return [
        Violation(
            rule="min-area",
            layer_name=layer.name,
            marker=poly.bbox,
            objects=(label,),
        )
    ]
