"""Metal spacing checks (shorts + PRL spacing table)."""

from __future__ import annotations

from repro.drc.violations import Violation
from repro.geom.rect import Rect
from repro.tech.layer import Layer


def check_metal_spacing(
    layer: Layer, rect: Rect, net_key, context, label: str = "metal"
) -> list:
    """Check ``rect`` on ``layer`` against foreign context shapes.

    Reports a ``metal-short`` when a foreign shape overlaps ``rect``
    (area intersection) and a ``metal-spacing`` when the gap to a
    foreign shape is below the PRL-table requirement.  Same-net shapes
    are skipped.
    """
    if layer.spacing_table is None:
        return []
    reach = layer.max_rule_distance
    window = rect.bloated(reach)
    violations = []
    for other, other_key in context.query(layer.name, window):
        if net_key is not None and other_key == net_key:
            continue
        if rect.overlaps(other):
            violations.append(
                Violation(
                    rule="metal-short",
                    layer_name=layer.name,
                    marker=rect.intersection(other),
                    objects=(label, _describe(other_key)),
                )
            )
            continue
        dist = rect.distance(other)
        prl = rect.prl(other)
        width = max(rect.min_dim, other.min_dim)
        required = layer.spacing_table.lookup(width, prl)
        if dist < required:
            violations.append(
                Violation(
                    rule="metal-spacing",
                    layer_name=layer.name,
                    marker=rect.hull(other),
                    objects=(label, _describe(other_key)),
                )
            )
    return violations


def _describe(net_key) -> str:
    if net_key is None:
        return "obstruction"
    if isinstance(net_key, tuple):
        return "/".join(str(part) for part in net_key)
    return str(net_key)
