"""End-of-line spacing checks.

LEF ``SPACING eolSpace ENDOFLINE eolWidth WITHIN eolWithin``: an edge
shorter than ``eolWidth`` is a line end; foreign metal inside the
trigger region ahead of the edge (eolSpace deep, widened sideways by
eolWithin) violates.
"""

from __future__ import annotations

from repro.drc.violations import Violation
from repro.geom.rect import Rect
from repro.tech.layer import Layer


def eol_trigger_regions(layer: Layer, rect: Rect) -> list:
    """Return the EOL trigger boxes of ``rect``'s line-end edges.

    For an axis-aligned rectangle the candidate line ends are the two
    edges perpendicular to its long axis; an edge qualifies when its
    length is below ``eol_width``.
    """
    rule = layer.eol
    if rule is None:
        return []
    regions = []
    if rect.height < rule.eol_width:
        # Left and right edges are line ends.
        regions.append(
            Rect(
                rect.xlo - rule.eol_space,
                rect.ylo - rule.eol_within,
                rect.xlo,
                rect.yhi + rule.eol_within,
            )
        )
        regions.append(
            Rect(
                rect.xhi,
                rect.ylo - rule.eol_within,
                rect.xhi + rule.eol_space,
                rect.yhi + rule.eol_within,
            )
        )
    if rect.width < rule.eol_width:
        # Bottom and top edges are line ends.
        regions.append(
            Rect(
                rect.xlo - rule.eol_within,
                rect.ylo - rule.eol_space,
                rect.xhi + rule.eol_within,
                rect.ylo,
            )
        )
        regions.append(
            Rect(
                rect.xlo - rule.eol_within,
                rect.yhi,
                rect.xhi + rule.eol_within,
                rect.yhi + rule.eol_space,
            )
        )
    return regions


def check_eol_spacing(
    layer: Layer, rect: Rect, net_key, context, label: str = "metal"
) -> list:
    """Check EOL spacing of ``rect`` against foreign context shapes.

    Symmetric: also flags foreign shapes whose own EOL trigger region
    overlaps ``rect`` (LEF applies the rule from either side).
    """
    if layer.eol is None:
        return []
    violations = []
    for region in eol_trigger_regions(layer, rect):
        for other, other_key in context.query(layer.name, region):
            if net_key is not None and other_key == net_key:
                continue
            if region.overlaps(other):
                violations.append(
                    Violation(
                        rule="eol-spacing",
                        layer_name=layer.name,
                        marker=region.intersection(other),
                        objects=(label, _describe(other_key)),
                    )
                )
    # Reverse direction: foreign line ends facing our rect.
    reach = layer.eol.eol_space + layer.eol.eol_within
    for other, other_key in context.query(layer.name, rect.bloated(reach)):
        if net_key is not None and other_key == net_key:
            continue
        for region in eol_trigger_regions(layer, other):
            if region.overlaps(rect):
                violations.append(
                    Violation(
                        rule="eol-spacing",
                        layer_name=layer.name,
                        marker=region.intersection(rect),
                        objects=(_describe(other_key), label),
                    )
                )
    return violations


def _describe(net_key) -> str:
    if net_key is None:
        return "obstruction"
    if isinstance(net_key, tuple):
        return "/".join(str(part) for part in net_key)
    return str(net_key)
