"""Translation-invariant via-pair compatibility kernel.

The hottest DRC workload in the flow is the pairwise via check behind
Algorithm 3's ``isDRCClean`` edge costs (Step 2) and the Step 3
boundary-conflict costs.  A via-pair verdict depends only on
``(via_a, via_b, dx, dy, same_net)`` -- never on absolute position --
so instead of re-running :meth:`DrcEngine.check_via_pair` for every
placement, this module compiles each ordered ``(via_a, via_b,
same_net)`` combination once into a **forbidden-displacement table**: a
handful of precomputed integer tests over the relative displacement
``(dx, dy) = (xb - xa, yb - ya)`` that decide cleanliness with zero
engine calls and zero context allocations.

The tests mirror the engine's math exactly, term by term:

* **metal** -- for each (enclosure of A, shape of B) pair on a routing
  layer with a spacing table: the open-overlap short test plus the
  PRL-table spacing test.  The DRC width ``max(min_dim_a, min_dim_b)``
  is displacement-independent, so the width row is resolved at build
  time and only the PRL column lookup remains per query.  Corner
  (diagonal) cases compare squared gaps against the squared
  requirement, which is exactly ``floor(sqrt(gx^2 + gy^2)) < s``.
* **box** -- every EOL interaction reduces to an *open rectangle* in
  displacement space: the trigger regions of A's enclosures are fixed
  rects, the trigger regions of B's shapes translate rigidly with
  ``d``, and ``Rect.overlaps`` is symmetric, so both directions of
  :func:`check_eol_spacing` (and nothing else) become pure
  point-in-open-rect tests.
* **cut** -- the cut-spacing test with the engine's identical-rect
  exemption: with ``same_net=True`` the one displacement that lands
  B's cut exactly on A's cut is skipped, matching how
  ``check_cut_spacing`` skips the probe's own rect.

Same-net pairs compile to cut tests only, because the engine keys both
vias as net ``"a"`` and metal/EOL checks skip same-net shapes (the
contract pinned by ``tests/test_drc_engine.py``).

Every table also carries a closed quick-reject **window**: the hull of
all test interaction ranges.  A displacement outside the window is
clean without touching a single test.

The kernel runs in one of three modes:

* ``kernel`` -- tables only (the fast path, default);
* ``engine`` -- always defer to :meth:`DrcEngine.check_via_pair` (the
  reference path; the kernel is inert);
* ``verify`` -- compute both and raise :class:`PairCheckMismatch` on
  any divergence.  The engine remains the oracle; this mode proves the
  kernel equivalent on live workloads.

Tables are plain picklable values keyed by via *names*, so one kernel
is shared across unique instances, shipped to worker processes
(:mod:`repro.perf.workers`) and persisted next to the AP cache under
the tech+config fingerprint (:mod:`repro.perf.apcache`).
"""

from __future__ import annotations

from repro.drc.engine import DrcEngine
from repro.drc.eol import eol_trigger_regions
from repro.obs.trace import span
from repro.perf.profile import tick
from repro.tech.technology import Technology
from repro.tech.via import ViaDef

PAIRCHECK_MODES = ("kernel", "engine", "verify")

_METAL = 0
_BOX = 1
_CUT = 2


class PairCheckMismatch(RuntimeError):
    """A kernel verdict diverged from the DRC engine oracle."""


class PairTable:
    """Compiled forbidden-displacement tests for one via combination.

    ``window`` is the closed ``(xlo, xhi, ylo, yhi)`` quick-reject
    hull (None when the combination can never violate); ``tests`` is a
    tuple of tagged test records evaluated until the first violation.
    """

    __slots__ = ("window", "tests")

    def __init__(self, window, tests):
        self.window = window
        self.tests = tests

    def __getstate__(self):
        return (self.window, self.tests)

    def __setstate__(self, state):
        self.window, self.tests = state

    def __eq__(self, other):
        return (
            isinstance(other, PairTable)
            and self.window == other.window
            and self.tests == other.tests
        )

    def clean(self, dx: int, dy: int) -> bool:
        """Return True when displacement ``(dx, dy)`` is DRC-clean."""
        window = self.window
        if window is None:
            return True
        if (
            dx < window[0]
            or dx > window[1]
            or dy < window[2]
            or dy > window[3]
        ):
            return True
        for test in self.tests:
            kind = test[0]
            if kind == _BOX:
                _, xlo, xhi, ylo, yhi = test
                if xlo < dx < xhi and ylo < dy < yhi:
                    return False
                continue
            if kind == _METAL:
                (_, axlo, aylo, axhi, ayhi,
                 bxlo, bylo, bxhi, byhi, steps) = test
                ox = min(axhi, bxhi + dx) - max(axlo, bxlo + dx)
                oy = min(ayhi, byhi + dy) - max(aylo, bylo + dy)
                if ox > 0 and oy > 0:
                    return False  # metal-short
                prl = ox if ox > oy else oy
                required = steps[0][1]
                for bound, spacing in steps:
                    if prl >= bound:
                        required = spacing
                gapx = -ox if ox < 0 else 0
                gapy = -oy if oy < 0 else 0
                if gapx > 0 and gapy > 0:
                    if gapx * gapx + gapy * gapy < required * required:
                        return False  # diagonal metal-spacing
                elif (gapx if gapx > gapy else gapy) < required:
                    return False  # metal-spacing (touching included)
                continue
            # _CUT
            (_, axlo, aylo, axhi, ayhi,
             bxlo, bylo, bxhi, byhi, spacing, skip) = test
            if skip is not None and dx == skip[0] and dy == skip[1]:
                continue  # the identical same-net cut is exempt
            ox = min(axhi, bxhi + dx) - max(axlo, bxlo + dx)
            oy = min(ayhi, byhi + dy) - max(aylo, bylo + dy)
            if ox > 0 and oy > 0:
                return False  # cut-short
            gapx = -ox if ox < 0 else 0
            gapy = -oy if oy < 0 else 0
            if gapx > 0 and gapy > 0:
                if gapx * gapx + gapy * gapy < spacing * spacing:
                    return False
            elif (gapx if gapx > gapy else gapy) < spacing:
                return False
        return True


def build_pair_table(
    tech: Technology, via_a: ViaDef, via_b: ViaDef, same_net: bool
) -> PairTable:
    """Compile the forbidden-displacement table for one combination.

    Works in displacement space: A is placed at the origin, B's shapes
    translate rigidly by ``(dx, dy)``, so only the via definitions and
    the layer rules enter the table.
    """
    shapes_b = (
        (via_b.bottom_layer, via_b.bottom_enc),
        (via_b.cut_layer, via_b.cut),
        (via_b.top_layer, via_b.top_enc),
    )
    tests = []
    windows = []
    if not same_net:
        for layer_name, rect_a in (
            (via_a.bottom_layer, via_a.bottom_enc),
            (via_a.top_layer, via_a.top_enc),
        ):
            layer = tech.layer(layer_name)
            others = [r for lname, r in shapes_b if lname == layer_name]
            if layer.spacing_table is not None:
                for rect_b in others:
                    tests.append(
                        _metal_test(layer.spacing_table, rect_a, rect_b)
                    )
                    windows.append(_reach_window(
                        rect_a, rect_b, max(s for _, s in tests[-1][9])
                    ))
            if layer.eol is not None:
                for rect_b in others:
                    for region in eol_trigger_regions(layer, rect_a):
                        tests.append(_overlap_box(region, rect_b))
                        windows.append(tests[-1][1:])
                    for region in eol_trigger_regions(layer, rect_b):
                        # Rect.overlaps is symmetric, so the reverse
                        # direction is the same open-box form.
                        tests.append(_overlap_box(rect_a, region))
                        windows.append(tests[-1][1:])
    cut_layer = tech.layer(via_a.cut_layer)
    rule = cut_layer.cut_spacing
    if rule is not None:
        for lname, rect_b in shapes_b:
            if lname != via_a.cut_layer:
                continue
            cut_a = via_a.cut
            skip = None
            if (
                same_net
                and cut_a.width == rect_b.width
                and cut_a.height == rect_b.height
            ):
                skip = (cut_a.xlo - rect_b.xlo, cut_a.ylo - rect_b.ylo)
            tests.append((
                _CUT,
                cut_a.xlo, cut_a.ylo, cut_a.xhi, cut_a.yhi,
                rect_b.xlo, rect_b.ylo, rect_b.xhi, rect_b.yhi,
                rule.spacing, skip,
            ))
            windows.append(_reach_window(cut_a, rect_b, rule.spacing))
    if not tests:
        return PairTable(None, ())
    window = (
        min(w[0] for w in windows),
        max(w[1] for w in windows),
        min(w[2] for w in windows),
        max(w[3] for w in windows),
    )
    return PairTable(window, tuple(tests))


def _metal_test(table, rect_a, rect_b):
    """Compile one metal short+spacing test record."""
    width = max(rect_a.min_dim, rect_b.min_dim)
    row = table.width_rows[0][1]
    for min_width, spacings in table.width_rows:
        if width >= min_width:
            row = spacings
    steps = tuple(zip(table.prl_values, row))
    return (
        _METAL,
        rect_a.xlo, rect_a.ylo, rect_a.xhi, rect_a.yhi,
        rect_b.xlo, rect_b.ylo, rect_b.xhi, rect_b.yhi,
        steps,
    )


def _overlap_box(fixed, moving):
    """Open box of displacements where ``fixed`` overlaps ``moving + d``."""
    return (
        _BOX,
        fixed.xlo - moving.xhi,
        fixed.xhi - moving.xlo,
        fixed.ylo - moving.yhi,
        fixed.yhi - moving.ylo,
    )


def _reach_window(rect_a, rect_b, reach):
    """Closed displacement window within which the pair can interact."""
    return (
        rect_a.xlo - rect_b.xhi - reach,
        rect_a.xhi - rect_b.xlo + reach,
        rect_a.ylo - rect_b.yhi - reach,
        rect_a.yhi - rect_b.ylo + reach,
    )


class PairKernel:
    """Value-keyed via-pair verdict service shared across Steps 2/3.

    Tables build lazily per ``(via_a, via_b, same_net)`` name key; a
    prebuilt table dict can be injected (worker shipping, persisted
    cache) via ``tables`` or :meth:`preload`.  ``built`` counts tables
    compiled by *this* kernel, which is what decides whether the
    persisted copy needs rewriting.
    """

    def __init__(
        self,
        tech: Technology,
        mode: str = "kernel",
        engine: DrcEngine = None,
        tables: dict = None,
    ):
        if mode not in PAIRCHECK_MODES:
            raise ValueError(
                f"paircheck mode must be one of {PAIRCHECK_MODES}, "
                f"got {mode!r}"
            )
        self.tech = tech
        self.mode = mode
        self.engine = engine if engine is not None else DrcEngine(tech)
        self.tables = {}
        self.preloaded = False
        self.built = 0
        if tables:
            self.preload(tables)

    def preload(self, tables: dict) -> None:
        """Adopt prebuilt tables (persisted cache or parent process)."""
        self.tables.update(tables)
        self.preloaded = True

    def table(
        self, via_a: str, via_b: str, same_net: bool = False
    ) -> PairTable:
        """Return (building if needed) the table for one combination."""
        key = (via_a, via_b, same_net)
        table = self.tables.get(key)
        if table is None:
            tick("pairkernel.table.build")
            with span(
                "pairkernel.build",
                via_a=via_a,
                via_b=via_b,
                same_net=same_net,
            ):
                table = build_pair_table(
                    self.tech,
                    self.tech.via(via_a),
                    self.tech.via(via_b),
                    same_net,
                )
            self.tables[key] = table
            self.built += 1
        else:
            tick("pairkernel.table.hit")
        return table

    def build_all(self) -> "PairKernel":
        """Eagerly compile every combination of the technology's vias.

        Called before process fan-out so workers receive the complete
        table set and the persisted copy is whole; the table space is
        tiny (|vias|^2 x 2) and each build is microseconds.
        """
        names = [via.name for via in self.tech.vias]
        for name_a in names:
            for name_b in names:
                self.table(name_a, name_b, False)
                self.table(name_a, name_b, True)
        return self

    # -- verdicts -----------------------------------------------------------

    def pair_clean(
        self,
        via_a: str,
        ax: int,
        ay: int,
        via_b: str,
        bx: int,
        by: int,
        same_net: bool = False,
    ) -> bool:
        """Return True when the two via placements are mutually clean.

        The displacement-space equivalent of ``not
        engine.check_via_pair(va, (ax, ay), vb, (bx, by), same_net)``.
        """
        if self.mode == "engine":
            return self._engine_clean(via_a, ax, ay, via_b, bx, by, same_net)
        tick("pairkernel.query")
        verdict = self.table(via_a, via_b, same_net).clean(bx - ax, by - ay)
        if self.mode == "verify":
            oracle = self._engine_clean(
                via_a, ax, ay, via_b, bx, by, same_net
            )
            if oracle != verdict:
                raise PairCheckMismatch(
                    f"pair kernel diverged from DrcEngine for "
                    f"({via_a}, {via_b}, same_net={same_net}) at "
                    f"displacement ({bx - ax}, {by - ay}): "
                    f"kernel={'clean' if verdict else 'dirty'}, "
                    f"engine={'clean' if oracle else 'dirty'}"
                )
        return verdict

    def _engine_clean(self, via_a, ax, ay, via_b, bx, by, same_net) -> bool:
        return not self.engine.check_via_pair(
            self.tech.via(via_a), (ax, ay),
            self.tech.via(via_b), (bx, by),
            same_net=same_net,
        )

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Return table counters for ``PinAccessResult.stats``.

        Keys follow the ``domain.sub.name`` contract of
        :mod:`repro.obs.metrics` so the framework can merge them into
        the flat stats namespace directly.
        """
        return {
            "pairkernel.mode": self.mode,
            "pairkernel.tables": len(self.tables),
            "pairkernel.built": self.built,
            "pairkernel.preloaded": self.preloaded,
        }
