"""Opt-in decision-event stream (the "explain log").

Where :mod:`repro.obs.metrics` records *how much* and
:mod:`repro.obs.trace` records *how long*, this module records *why*:
a flat, ordered stream of structured decision events --

- ``ap.reject`` / ``ap.accept`` -- Step 1 candidate outcomes, with
  the DRC rule, the via, and the (t0, t1) coordinate types;
- ``dp.edge.penalized`` -- Step 2 DP edges costed as boundary-used,
  DRC-incompatible, or history-incompatible instead of by AP cost;
- ``pattern.generated`` -- each surviving access pattern;
- ``cluster.conflict`` / ``cluster.repair`` / ``cluster.selected`` --
  Step 3 boundary conflicts, repair overrides, and final picks.

Events are plain JSON-scalar dicts appended to a context-local
:class:`EventLog` (same activation pattern as the registry/tracer:
one context-variable load when disabled).  Worker processes ship
their log back through the task result channel; the parent extends
its own log in deterministic task order, so the merged stream is
identical for any ``jobs=N``.

The stream persists as JSONL under schema ``repro.obs.events/v1``:
a header object ``{"schema": ..., "events": N}`` followed by one
event per line.  ``repro explain INST/PIN`` replays a stream into a
narrative (see :mod:`repro.obs.explain`).

This module imports nothing from the rest of the package.
"""

from __future__ import annotations

import json
from contextvars import ContextVar

EVENTS_SCHEMA = "repro.obs.events/v1"


class EventLog:
    """Ordered buffer of decision events."""

    __slots__ = ("events",)

    def __init__(self):
        self.events = []

    def emit(self, kind: str, **fields) -> None:
        """Append one event; ``fields`` must be JSON-serializable."""
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def extend(self, events: list) -> None:
        """Append a batch (e.g. a worker's :meth:`snapshot`)."""
        self.events.extend(events)

    def snapshot(self) -> list:
        """Plain-list copy of the buffer, safe to pickle."""
        return [dict(event) for event in self.events]

    def __len__(self):
        return len(self.events)


# -- context-local activation -------------------------------------------------

_LOG: ContextVar = ContextVar("repro_obs_events", default=None)


def activate(log: EventLog = None) -> EventLog:
    """Install ``log`` (or a fresh one) as the active event log."""
    log = log if log is not None else EventLog()
    _LOG.set(log)
    return log


def deactivate() -> EventLog:
    """Remove and return the active event log (None if none)."""
    log = _LOG.get()
    _LOG.set(None)
    return log


def active_log() -> EventLog:
    """Return the active event log, or None."""
    return _LOG.get()


def swap(log: EventLog):
    """Install ``log``, returning a token for :func:`restore`."""
    return _LOG.set(log)


def restore(token) -> None:
    """Restore the log that was active before :func:`swap`."""
    _LOG.reset(token)


def emit(kind: str, **fields) -> None:
    """Emit an event to the active log; no-op when none is active."""
    log = _LOG.get()
    if log is not None:
        log.emit(kind, **fields)


# -- JSONL persistence --------------------------------------------------------
#
# Every JSONL stream the project writes shares one convention: the
# first line is a header object carrying a ``schema`` stamp, every
# following line is one record.  The helpers below own that
# convention so other streams -- the serve access log of
# :mod:`repro.obs.accesslog` -- validate identically.


def jsonl_header(schema: str, **fields) -> dict:
    """Build the first-line header object of a JSONL stream."""
    header = {"schema": schema}
    header.update(fields)
    return header


def check_jsonl_header(line: str, expected_schema: str, origin: str) -> dict:
    """Parse a stream's first line, asserting its schema stamp.

    ``origin`` names the stream in error messages (usually the file
    path).  Returns the decoded header dict.
    """
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise ValueError(f"{origin}: header is not JSON: {exc}") from exc
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema != expected_schema:
        raise ValueError(
            f"{origin}: unsupported schema {schema!r} "
            f"(expected {expected_schema})"
        )
    return header


def write_jsonl(path: str, events: list) -> None:
    """Write an event stream as ``repro.obs.events/v1`` JSONL."""
    with open(path, "w") as handle:
        header = jsonl_header(EVENTS_SCHEMA, events=len(events))
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


def read_jsonl(path: str) -> list:
    """Read and validate a ``repro.obs.events/v1`` JSONL stream."""
    with open(path) as handle:
        lines = [line for line in handle.read().splitlines() if line]
    if not lines:
        raise ValueError(f"{path}: empty event stream")
    header = check_jsonl_header(lines[0], EVENTS_SCHEMA, path)
    events = [json.loads(line) for line in lines[1:]]
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise ValueError(
            f"{path}: header declares {declared} events, found {len(events)}"
        )
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "kind" not in event:
            raise ValueError(f"{path}: event {index} has no 'kind'")
    return events
