"""Structured access log for the serving daemon.

One line of JSONL per logged request under schema
``repro.serve.access/v1``: the operation, session design, trace id,
bytes in/out, the latency split (queue / handle / total,
milliseconds) and the outcome (``ok`` or the wire error code).  The
stream reuses the project-wide JSONL convention owned by
:mod:`repro.obs.events` -- a schema-stamped header line followed by
one record per line -- so ``read_access_log`` validates the same
way ``read_jsonl`` does.

Volume control is *head sampling*: with ``sample_every=N`` only
every Nth ok-and-fast request is written.  Two classes of request
bypass sampling entirely, because they are exactly the ones an
operator greps for:

* **errors** -- any non-``ok`` outcome is always logged;
* **slow requests** -- any request whose total latency is at or
  over ``slow_ms`` is always logged, and when a ``spool_dir`` is
  configured its full stitched trace (client + server spans, Chrome
  trace JSON) is dumped there with the spool path recorded in the
  log line.

Each record carries ``why`` (``sample`` / ``error`` / ``slow``) so
readers can tell a sampled stream from a filtered one.  Appends are
lock-guarded and flushed line-at-a-time; the log is safe to tail.

This module imports only :mod:`repro.obs.events`.
"""

from __future__ import annotations

import json
import os
import threading

from repro.obs.events import check_jsonl_header, jsonl_header

ACCESS_SCHEMA = "repro.serve.access/v1"

#: Fields every access-log record must carry.
RECORD_FIELDS = (
    "op",
    "outcome",
    "why",
    "bytes_in",
    "bytes_out",
    "queue_ms",
    "handle_ms",
    "total_ms",
)


class AccessLog:
    """Append-only ``repro.serve.access/v1`` JSONL writer.

    ``sample_every=1`` logs everything; ``sample_every=100`` logs
    every 100th fast-ok request (plus all errors and slow
    requests).  ``slow_ms`` is the always-log latency threshold;
    ``spool_dir`` enables slow-request trace spooling.
    """

    __slots__ = (
        "path",
        "sample_every",
        "slow_ms",
        "spool_dir",
        "written",
        "sampled_out",
        "spooled",
        "_handle",
        "_lock",
        "_seen",
        "_spool_seq",
    )

    def __init__(
        self,
        path: str,
        sample_every: int = 1,
        slow_ms: float = 100.0,
        spool_dir: str = None,
    ):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.path = str(path)
        self.sample_every = sample_every
        self.slow_ms = slow_ms
        self.spool_dir = str(spool_dir) if spool_dir is not None else None
        self.written = 0
        self.sampled_out = 0
        self.spooled = 0
        self._lock = threading.Lock()
        self._seen = 0
        self._spool_seq = 0
        fresh = not os.path.exists(self.path) or (
            os.path.getsize(self.path) == 0
        )
        self._handle = open(self.path, "a")
        if fresh:
            header = jsonl_header(
                ACCESS_SCHEMA,
                sample_every=sample_every,
                slow_ms=slow_ms,
            )
            self._handle.write(json.dumps(header) + "\n")
            self._handle.flush()
        if self.spool_dir is not None:
            os.makedirs(self.spool_dir, exist_ok=True)

    def record(self, entry: dict, trace_doc=None) -> bool:
        """Log one request; returns True if a line was written.

        ``entry`` must carry :data:`RECORD_FIELDS` (extra fields --
        ``trace``, ``design``, ``id`` -- pass through verbatim).
        ``trace_doc`` is a zero-argument callable returning the
        request's Chrome-trace document; it is invoked only when the
        request is slow and spooling is configured, so building the
        document costs nothing on the fast path.
        """
        slow = entry.get("total_ms", 0.0) >= self.slow_ms
        error = entry.get("outcome") != "ok"
        with self._lock:
            self._seen += 1
            if error:
                why = "error"
            elif slow:
                why = "slow"
            elif (self._seen - 1) % self.sample_every == 0:
                why = "sample"
            else:
                self.sampled_out += 1
                return False
            record = dict(entry)
            record["why"] = why
            if slow and self.spool_dir is not None and trace_doc is not None:
                record["spool"] = self._spool(record, trace_doc)
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            self.written += 1
        return True

    def _spool(self, record: dict, trace_doc) -> str:
        """Dump a slow request's stitched trace; returns the path."""
        self._spool_seq += 1
        stem = record.get("trace") or f"req-{self._spool_seq:06d}"
        path = os.path.join(
            self.spool_dir, f"slow-{self._spool_seq:06d}-{stem}.json"
        )
        doc = trace_doc()
        with open(path, "w") as handle:
            json.dump(doc, handle)
            handle.write("\n")
        self.spooled += 1
        return path

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def read_access_log(path: str) -> list:
    """Read and validate a ``repro.serve.access/v1`` stream.

    Raises ``ValueError`` on a missing/illegal header or on any
    record missing a required field; returns the record dicts.
    """
    with open(path) as handle:
        lines = [line for line in handle.read().splitlines() if line]
    if not lines:
        raise ValueError(f"{path}: empty access log")
    check_jsonl_header(lines[0], ACCESS_SCHEMA, path)
    records = []
    for index, line in enumerate(lines[1:]):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"{path}: record {index} is not JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}: record {index} is not an object")
        missing = [f for f in RECORD_FIELDS if f not in record]
        if missing:
            raise ValueError(
                f"{path}: record {index} missing fields {missing}"
            )
        records.append(record)
    return records
