"""Windowed RED telemetry and declarative SLO evaluation.

The serving layer needs to answer two operational questions
continuously: *how is each operation doing right now* (RED --
request rate, error rate, duration quantiles) and *is that good
enough* (SLOs -- service level objectives such as ``query p99 <
1 ms``).  This module provides both, with no dependency on the wire
layer so the same machinery can watch any request-shaped workload.

:class:`RedWindow` tracks one operation: lifetime request/error
totals, per-second rate buckets over a sliding wall-clock window
(default 60 s), and duration quantiles over a sliding sample window
(:class:`~repro.obs.metrics.SlidingQuantiles`).  Because both
windows slide, a burst of slow or failing requests ages out --
which is what lets an SLO *recover*.

:class:`SloTable` holds :class:`Objective` rows -- each names an
op (or ``*`` for all ops), a signal (``p50_ms`` / ``p95_ms`` /
``p99_ms`` / ``error_rate``) and a threshold -- and evaluates them
against a ``{op: RedWindow.snapshot()}`` map into a
``repro.obs.slo/v1`` report: per-objective state plus the overall
worst state, with every breaching objective named.  States:

* ``ok``       -- below ``degraded_ratio * threshold`` (or no traffic);
* ``degraded`` -- within ``degraded_ratio`` of the threshold, the
  early-warning band;
* ``breached`` -- at or over the threshold.

Clocks are injectable (``clock=`` / ``now=``) so tests can walk
time deterministically.  This module imports only
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.metrics import SlidingQuantiles

SLO_SCHEMA = "repro.obs.slo/v1"

STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_BREACHED = "breached"

_STATE_RANK = {STATE_OK: 0, STATE_DEGRADED: 1, STATE_BREACHED: 2}

#: Signals an :class:`Objective` may watch.
SIGNALS = ("p50_ms", "p95_ms", "p99_ms", "error_rate")


class RedWindow:
    """Rate / errors / duration for one operation, windowed.

    ``observe`` is the per-request hot path: one bucket update and
    one ring-buffer write.  ``snapshot`` (scrape/health path only)
    computes windowed rate, windowed error rate and duration
    quantiles in milliseconds.
    """

    __slots__ = (
        "count",
        "errors",
        "window_seconds",
        "_durations",
        "_buckets",
        "_clock",
        "_t0",
    )

    def __init__(
        self,
        window_samples: int = 1024,
        window_seconds: int = 60,
        clock=time.monotonic,
    ):
        if window_seconds < 1:
            raise ValueError(
                f"window_seconds must be >= 1, got {window_seconds}"
            )
        self.count = 0
        self.errors = 0
        self.window_seconds = window_seconds
        self._durations = SlidingQuantiles(window=window_samples)
        # Per-second ring: [second, requests, errors] rows, stamped so
        # stale rows (lapped by a quiet period) are recognized.
        self._buckets = [[-1, 0, 0] for _ in range(window_seconds)]
        self._clock = clock
        self._t0 = None

    def observe(
        self, seconds: float, error: bool = False, now: float = None
    ) -> None:
        """Record one request outcome (duration in seconds)."""
        now = self._clock() if now is None else now
        if self._t0 is None:
            self._t0 = now
        self.count += 1
        sec = int(now)
        bucket = self._buckets[sec % self.window_seconds]
        if bucket[0] != sec:
            bucket[0] = sec
            bucket[1] = 0
            bucket[2] = 0
        bucket[1] += 1
        if error:
            self.errors += 1
            bucket[2] += 1
        self._durations.observe(seconds * 1e3)

    def snapshot(self, now: float = None) -> dict:
        """Summarize the window: totals, rates, latency quantiles."""
        now = self._clock() if now is None else now
        requests = 0
        errors = 0
        floor = int(now) - self.window_seconds
        for sec, req, err in self._buckets:
            if sec > floor:
                requests += req
                errors += err
        # A window younger than window_seconds would under-divide; a
        # denominator under one second would over-multiply a burst.
        elapsed = self.window_seconds
        if self._t0 is not None:
            elapsed = min(elapsed, max(1.0, now - self._t0))
        out = {
            "count": self.count,
            "errors": self.errors,
            "window_requests": requests,
            "window_errors": errors,
            "qps": round(requests / elapsed, 3),
            "error_rate": round(errors / requests, 6) if requests else 0.0,
        }
        quantiles = self._durations.quantiles()
        for key, value in quantiles.items():
            out[f"{key}_ms"] = round(value, 4) if value is not None else None
        return out


@dataclass(frozen=True)
class Objective:
    """One service level objective: ``<signal> of <op> < threshold``.

    ``op`` is a wire operation name or ``"*"`` to aggregate across
    all ops (error rates sum their windows; quantile signals take
    the worst op).  ``threshold`` is in the signal's unit
    (milliseconds for ``p*_ms``, a 0..1 fraction for
    ``error_rate``).  At or above ``degraded_ratio * threshold``
    the objective is ``degraded`` -- the early-warning band.
    """

    name: str
    op: str
    signal: str
    threshold: float
    degraded_ratio: float = 0.8

    def __post_init__(self):
        if self.signal not in SIGNALS:
            raise ValueError(
                f"objective {self.name!r}: unknown signal "
                f"{self.signal!r} (one of {SIGNALS})"
            )
        if self.threshold <= 0:
            raise ValueError(
                f"objective {self.name!r}: threshold must be > 0"
            )
        if not 0.0 < self.degraded_ratio <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: degraded_ratio must be in "
                "(0, 1]"
            )

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "op": self.op,
            "signal": self.signal,
            "threshold": self.threshold,
            "degraded_ratio": self.degraded_ratio,
        }


#: The serving daemon's default objectives (ISSUE/ROADMAP targets):
#: interactive queries answer in a millisecond, incremental moves in
#: tens of milliseconds, and errors stay below 0.1% of traffic.
DEFAULT_OBJECTIVES = (
    Objective("query_p99_ms", "query", "p99_ms", 1.0),
    Objective("query_batch_p99_ms", "query_batch", "p99_ms", 50.0),
    Objective("move_p99_ms", "move_instance", "p99_ms", 20.0),
    Objective("error_rate", "*", "error_rate", 0.001),
)


def objectives_from_json(rows: list) -> tuple:
    """Build objectives from a JSON list (the ``--slo FILE`` format).

    Each row is ``{"name", "op", "signal", "threshold"[,
    "degraded_ratio"]}``; validation errors raise ``ValueError``
    with the offending row named.
    """
    objectives = []
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"objective {index}: not an object")
        try:
            objectives.append(
                Objective(
                    name=str(row["name"]),
                    op=str(row["op"]),
                    signal=str(row["signal"]),
                    threshold=float(row["threshold"]),
                    degraded_ratio=float(row.get("degraded_ratio", 0.8)),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"objective {index}: missing field {exc.args[0]!r}"
            ) from exc
    return tuple(objectives)


def _objective_value(objective: Objective, red_by_op: dict):
    """Extract the objective's current signal value, or None."""
    if objective.op != "*":
        snap = red_by_op.get(objective.op)
        if snap is None:
            return None
        return snap.get(objective.signal)
    if objective.signal == "error_rate":
        requests = sum(s.get("window_requests", 0) for s in red_by_op.values())
        errors = sum(s.get("window_errors", 0) for s in red_by_op.values())
        return round(errors / requests, 6) if requests else None
    values = [
        s.get(objective.signal)
        for s in red_by_op.values()
        if s.get(objective.signal) is not None
    ]
    return max(values) if values else None


def _objective_state(objective: Objective, value) -> str:
    if value is None:
        return STATE_OK
    if value >= objective.threshold:
        return STATE_BREACHED
    if value >= objective.degraded_ratio * objective.threshold:
        return STATE_DEGRADED
    return STATE_OK


class SloTable:
    """A declarative set of objectives evaluated against RED data."""

    __slots__ = ("objectives",)

    def __init__(self, objectives=DEFAULT_OBJECTIVES):
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.objectives = tuple(objectives)

    def evaluate(self, red_by_op: dict) -> dict:
        """Evaluate every objective against ``{op: red snapshot}``.

        Returns the ``repro.obs.slo/v1`` report: overall ``state``
        (the worst objective), the ``breached`` objective names, and
        one row per objective with its current value.
        """
        rows = []
        worst = STATE_OK
        breached = []
        for objective in self.objectives:
            value = _objective_value(objective, red_by_op)
            state = _objective_state(objective, value)
            if _STATE_RANK[state] > _STATE_RANK[worst]:
                worst = state
            if state == STATE_BREACHED:
                breached.append(objective.name)
            row = objective.to_wire()
            row["value"] = value
            row["state"] = state
            rows.append(row)
        return {
            "schema": SLO_SCHEMA,
            "state": worst,
            "breached": breached,
            "objectives": rows,
        }
