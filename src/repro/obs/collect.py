"""Bundling of the three observability sinks behind one lifecycle.

A :class:`Collector` owns whichever sinks a
:class:`~repro.core.config.PaafConfig` asks for -- metrics registry
(``profile`` / ``metrics_out``), tracer (``trace`` / ``trace_out``),
event log (``explain``) -- and activates them together as a context
manager.  The framework enters one collector around the whole run;
each worker *task* enters its own and ships ``snapshot()`` back
through the result channel, where :meth:`merge_task` folds it into
the parent's sinks (metrics merge commutatively, spans re-parent
under the step span, events append in deterministic task order).

Because activation is context-local, the ``jobs=1`` in-process path
shadows the parent's sinks for the duration of each task and restores
them after -- the parent sees exactly the same merged stream a
``jobs=N`` run produces, which is what the cross-process identity
tests pin down.
"""

from __future__ import annotations

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class Collector:
    """Owns and activates the sinks one run (or one task) collects into."""

    __slots__ = ("registry", "tracer", "log", "_tokens")

    def __init__(
        self, metrics: bool = False, trace: bool = False, events: bool = False
    ):
        self.registry = _metrics.MetricsRegistry() if metrics else None
        self.tracer = _trace.Tracer() if trace else None
        self.log = _events.EventLog() if events else None
        self._tokens = None

    @classmethod
    def from_config(cls, config, profile: bool = None) -> "Collector":
        """Build a collector for the config's observability flags.

        ``profile`` overrides ``config.profile`` (the worker state
        carries it separately so a framework-level override survives
        the trip through the pool initializer).
        """
        profile = config.profile if profile is None else profile
        return cls(
            metrics=bool(profile or config.metrics_out),
            trace=bool(config.trace or config.trace_out),
            events=bool(config.explain),
        )

    @property
    def enabled(self) -> bool:
        """True when at least one sink collects."""
        return (
            self.registry is not None
            or self.tracer is not None
            or self.log is not None
        )

    def __enter__(self) -> "Collector":
        tokens = []
        if self.registry is not None:
            tokens.append((_metrics, _metrics.swap(self.registry)))
        if self.tracer is not None:
            tokens.append((_trace, _trace.swap(self.tracer)))
        if self.log is not None:
            tokens.append((_events, _events.swap(self.log)))
        self._tokens = tokens
        return self

    def __exit__(self, exc_type, exc, tb):
        for module, token in reversed(self._tokens or ()):
            module.restore(token)
        self._tokens = None
        return False

    # -- cross-process transport ---------------------------------------------

    def snapshot(self) -> dict:
        """Picklable dump of every sink, or None when nothing collects."""
        if not self.enabled:
            return None
        snap = {}
        if self.registry is not None:
            snap["metrics"] = self.registry.snapshot()
        if self.tracer is not None:
            snap["trace"] = self.tracer.snapshot()
        if self.log is not None:
            snap["events"] = self.log.snapshot()
        return snap

    def merge_task(self, snapshot: dict, parent_span=None) -> None:
        """Fold a task's :meth:`snapshot` into this collector's sinks.

        ``parent_span`` is the id of the step span (in this
        collector's tracer) the task's root spans re-parent under.
        Callers must merge in deterministic task order so the combined
        event stream is identical for any ``jobs=N``.
        """
        if not snapshot:
            return
        if self.registry is not None and "metrics" in snapshot:
            self.registry.merge(snapshot["metrics"])
        if self.tracer is not None and "trace" in snapshot:
            self.tracer.adopt(snapshot["trace"], parent=parent_span)
        if self.log is not None and "events" in snapshot:
            self.log.extend(snapshot["events"])

    # -- run finalization ------------------------------------------------------

    def finish(self, result, config) -> None:
        """Attach sinks to ``result`` and write the configured outputs.

        Populates ``result.metrics`` / ``result.trace`` /
        ``result.events`` plus the ``metrics.*`` / ``obs.*`` stats
        entries, and writes ``metrics_out`` (Prometheus text),
        ``trace_out`` (Chrome trace JSON) and ``explain`` (when it is
        a path, ``repro.obs.events/v1`` JSONL).
        """
        if self.registry is not None:
            snap = self.registry.snapshot()
            result.stats["metrics.counters"] = snap["counters"]
            result.stats["metrics.timers"] = snap["timers"]
            if snap["gauges"]:
                result.stats["metrics.gauges"] = snap["gauges"]
            if self.registry.histograms:
                result.stats["metrics.histograms"] = {
                    name: hist.summary()
                    for name, hist in self.registry.histograms.items()
                }
            result.metrics = self.registry
            if config.metrics_out:
                _metrics.write_prometheus(config.metrics_out, self.registry)
        if self.tracer is not None:
            result.trace = self.tracer
            result.stats["obs.trace"] = _trace.summarize(self.tracer)
            if config.trace_out:
                _trace.write_chrome_trace(config.trace_out, self.tracer)
        if self.log is not None:
            result.events = self.log
            result.stats["obs.events"] = {"count": len(self.log)}
            if isinstance(config.explain, str):
                _events.write_jsonl(config.explain, self.log.events)
