"""Structured observability: tracing, metrics and decision telemetry.

The package has four layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` -- typed registry of counters, gauges,
  timers and log-scale histograms; enforces the ``domain.sub.name``
  naming contract; exports Prometheus text and the
  ``repro.qa.bench/v1`` envelope.  Subsumes the old
  ``repro.perf.profile.Profiler`` (now a shim over it).
* :mod:`repro.obs.trace` -- nested spans with per-process buffers,
  cross-process re-stitching and Chrome ``chrome://tracing`` export.
* :mod:`repro.obs.events` -- opt-in decision-event stream (schema
  ``repro.obs.events/v1``) behind ``PaafConfig.explain``.
* :mod:`repro.obs.collect` / :mod:`repro.obs.explain` -- the
  lifecycle bundle the framework and workers enter, and the
  ``repro explain INST/PIN`` narrative renderer.

All hooks are near-free when disabled: one context-variable load and
a ``None`` test.
"""

from repro.obs.collect import Collector
from repro.obs.events import EVENTS_SCHEMA, EventLog, active_log, emit
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    observe,
    parse_prometheus,
    render_prometheus,
    stats_name_violations,
    tick,
    timed,
    validate_name,
)
from repro.obs.trace import Tracer, active_tracer, span

__all__ = [
    "Collector",
    "EVENTS_SCHEMA",
    "EventLog",
    "active_log",
    "emit",
    "MetricsRegistry",
    "active_registry",
    "observe",
    "parse_prometheus",
    "render_prometheus",
    "stats_name_violations",
    "tick",
    "timed",
    "validate_name",
    "Tracer",
    "active_tracer",
    "span",
]
