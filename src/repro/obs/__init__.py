"""Structured observability: tracing, metrics and decision telemetry.

The package has four layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` -- typed registry of counters, gauges,
  timers and log-scale histograms; enforces the ``domain.sub.name``
  naming contract; exports Prometheus text and the
  ``repro.qa.bench/v1`` envelope.  Subsumes the old
  ``repro.perf.profile.Profiler`` (now a shim over it).
* :mod:`repro.obs.trace` -- nested spans with per-process buffers,
  cross-process re-stitching and Chrome ``chrome://tracing`` export.
* :mod:`repro.obs.events` -- opt-in decision-event stream (schema
  ``repro.obs.events/v1``) behind ``PaafConfig.explain``.
* :mod:`repro.obs.collect` / :mod:`repro.obs.explain` -- the
  lifecycle bundle the framework and workers enter, and the
  ``repro explain INST/PIN`` narrative renderer.
* :mod:`repro.obs.slo` / :mod:`repro.obs.accesslog` -- windowed RED
  telemetry with declarative SLO evaluation, and the structured
  ``repro.serve.access/v1`` request log; both feed the serving
  daemon's health surface (see ``docs/SERVING.md``).

All hooks are near-free when disabled: one context-variable load and
a ``None`` test.
"""

from repro.obs.accesslog import ACCESS_SCHEMA, AccessLog, read_access_log
from repro.obs.collect import Collector
from repro.obs.events import EVENTS_SCHEMA, EventLog, active_log, emit
from repro.obs.metrics import (
    MetricsRegistry,
    SlidingQuantiles,
    active_registry,
    observe,
    parse_prometheus,
    render_prometheus,
    stats_name_violations,
    tick,
    timed,
    validate_name,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLO_SCHEMA,
    Objective,
    RedWindow,
    SloTable,
)
from repro.obs.trace import Tracer, active_tracer, span

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLog",
    "read_access_log",
    "Collector",
    "EVENTS_SCHEMA",
    "EventLog",
    "active_log",
    "emit",
    "MetricsRegistry",
    "SlidingQuantiles",
    "active_registry",
    "observe",
    "parse_prometheus",
    "render_prometheus",
    "stats_name_violations",
    "tick",
    "timed",
    "validate_name",
    "DEFAULT_OBJECTIVES",
    "SLO_SCHEMA",
    "Objective",
    "RedWindow",
    "SloTable",
    "Tracer",
    "active_tracer",
    "span",
]
