"""Replay a decision-event stream into a per-pin narrative.

``repro explain INST/PIN`` answers the operational question the
Synopsys pin-access-checker line of work made the interface: *why did
this pin only get 2 access points?*  Given the ``repro.obs.events/v1``
stream of a run (live, or replayed from JSONL), :func:`explain_pin`
selects the events that concern one instance pin and renders them as
a readable story through the three steps.

Steps 1 and 2 run once per *unique instance*, in the representative's
coordinates -- so the narrative first resolves the concrete instance
to its unique-instance representative and reads Step 1/2 events under
the representative's name.  Step 3 events are per concrete instance.
"""

from __future__ import annotations

from repro.core.signature import unique_instances


def explain_pin(design, events: list, inst_name: str, pin_name: str) -> str:
    """Render the narrative for one instance pin; raises ValueError
    when the instance or pin does not exist in ``design``."""
    ui = _unique_instance_of(design, inst_name)
    rep = ui.representative
    pins = [pin.name for pin in rep.master.signal_pins()]
    if pin_name not in pins:
        raise ValueError(
            f"master {rep.master.name!r} has no signal pin {pin_name!r} "
            f"(pins: {', '.join(sorted(pins))})"
        )
    dx, dy = ui.translation_to(design.instance(inst_name))
    lines = [
        f"pin access explanation: {inst_name}/{pin_name} "
        f"(design {design.name})",
        f"  unique instance: master {rep.master.name}, "
        f"{len(ui.members)} member(s), representative {rep.name}"
        + (
            ""
            if (dx, dy) == (0, 0)
            else f", {inst_name} offset ({dx}, {dy})"
        ),
        "",
    ]
    lines.extend(_step1_section(events, rep.name, pin_name))
    lines.extend(_step2_section(events, rep.name, pin_name))
    lines.extend(_step3_section(events, inst_name, pin_name))
    return "\n".join(lines)


def _unique_instance_of(design, inst_name: str):
    try:
        design.instance(inst_name)
    except KeyError:
        raise ValueError(f"design has no instance {inst_name!r}") from None
    for ui in unique_instances(design):
        for member in ui.members:
            if member.name == inst_name:
                return ui
    raise ValueError(f"instance {inst_name!r} not in any unique instance")


def _coord_types(event: dict) -> str:
    return f"pref={event.get('t0', '?')}, nonpref={event.get('t1', '?')}"


def _step1_section(events, rep_name, pin_name) -> list:
    mine = [
        e
        for e in events
        if e["kind"] in ("ap.accept", "ap.reject")
        and e.get("inst") == rep_name
        and e.get("pin") == pin_name
    ]
    lines = ["Step 1 -- access point generation "
             "(representative coordinates):"]
    if not mine:
        lines.append(
            "  no candidate events recorded (cached Steps 1-2 skip "
            "generation; re-run without a warm cache)"
        )
        lines.append("")
        return lines
    accepted = 0
    rejected_by_rule = {}
    for event in mine:
        where = f"({event['x']}, {event['y']})"
        if event["kind"] == "ap.accept":
            accepted += 1
            vias = ", ".join(event.get("vias") or ()) or "none"
            planar = ", ".join(event.get("planar") or ()) or "none"
            lines.append(
                f"  accepted {where} [{_coord_types(event)}] "
                f"on {event.get('layer')}: vias {vias}; planar {planar}"
            )
        else:
            rule = event.get("rule", "?")
            rejected_by_rule[rule] = rejected_by_rule.get(rule, 0) + 1
            layer = event.get("rule_layer") or event.get("layer")
            lines.append(
                f"  rejected {where} [{_coord_types(event)}]: "
                f"via {event.get('via')} violates {rule} on {layer}"
            )
    tally = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(rejected_by_rule.items())
    )
    lines.append(
        f"  => {accepted} access point(s) accepted, "
        f"{sum(rejected_by_rule.values())} via rejection(s)"
        + (f" ({tally})" if tally else "")
    )
    lines.append("")
    return lines


def _step2_section(events, rep_name, pin_name) -> list:
    lines = ["Step 2 -- access pattern generation (unique instance):"]
    patterns = [
        e
        for e in events
        if e["kind"] == "pattern.generated" and e.get("inst") == rep_name
    ]
    edges = [
        e
        for e in events
        if e["kind"] == "dp.edge.penalized"
        and e.get("inst") == rep_name
        and pin_name in (e.get("pin_a"), e.get("pin_b"))
    ]
    if not patterns and not edges:
        lines.append("  no pattern events recorded")
        lines.append("")
        return lines
    for event in edges:
        lines.append(
            f"  DP edge {event.get('pin_a')}@({event.get('ax')}, "
            f"{event.get('ay')}) -> {event.get('pin_b')}@"
            f"({event.get('bx')}, {event.get('by')}) costed "
            f"{event.get('cost')} ({event.get('reason')})"
        )
    covering = 0
    for event in patterns:
        pins = event.get("pins") or {}
        covered = pin_name in pins
        covering += covered
        spot = (
            f", {pin_name} at ({pins[pin_name][0]}, {pins[pin_name][1]})"
            if covered
            else f", {pin_name} not covered"
        )
        clean = "clean" if event.get("clean") else "dirty"
        lines.append(
            f"  pattern #{event.get('index')}: cost {event.get('cost')}, "
            f"{clean}{spot}"
        )
    if patterns:
        lines.append(
            f"  => {pin_name} covered by {covering} of "
            f"{len(patterns)} pattern(s)"
        )
    lines.append("")
    return lines


def _step3_section(events, inst_name, pin_name) -> list:
    lines = [f"Step 3 -- cluster selection (instance {inst_name}):"]
    selected = [
        e
        for e in events
        if e["kind"] == "cluster.selected" and e.get("inst") == inst_name
    ]
    conflicts = [
        e
        for e in events
        if e["kind"] == "cluster.conflict"
        and (
            (e.get("inst_a") == inst_name and e.get("pin_a") == pin_name)
            or (e.get("inst_b") == inst_name and e.get("pin_b") == pin_name)
        )
    ]
    repairs = [
        e
        for e in events
        if e["kind"] == "cluster.repair"
        and e.get("inst") == inst_name
        and e.get("pin") == pin_name
    ]
    if not selected and not conflicts and not repairs:
        lines.append("  no selection events recorded")
        return lines
    for event in selected:
        if event.get("cost") is None:
            lines.append("  no selectable pattern for this instance")
        else:
            lines.append(
                f"  selected pattern cost {event.get('cost')} "
                f"covering {event.get('pins')} pin(s)"
            )
    for event in repairs:
        lines.append(
            f"  repair: {pin_name} moved from "
            f"({event.get('from_x')}, {event.get('from_y')}) to "
            f"({event.get('to_x')}, {event.get('to_y')})"
        )
    if conflicts:
        for event in conflicts:
            other = (
                f"{event.get('inst_b')}/{event.get('pin_b')}"
                if event.get("inst_a") == inst_name
                else f"{event.get('inst_a')}/{event.get('pin_a')}"
            )
            lines.append(
                f"  residual boundary conflict with {other}"
            )
    else:
        lines.append(f"  residual conflicts involving {pin_name}: none")
    return lines
