"""Lightweight structured tracing: nested spans, Chrome-trace export.

A :class:`Tracer` owns a flat per-process buffer of span records
(plain dicts so worker processes can pickle their buffer back through
the existing ``repro.perf.workers`` result channel).  :class:`span`
is the only instrumentation primitive: a context manager that, when a
tracer is active in the current context, records a monotonic-clock
interval with parent/child nesting::

    with span("step1.pin", pin=pin.name):
        ...

When no tracer is active the ``with`` costs a single context-variable
load and a ``None`` test -- the same no-op-guard pattern
``repro.obs.metrics.tick`` uses -- so instrumented hot paths do not
regress ``-j1`` timings.

Worker buffers are re-stitched into the parent's tree with
:meth:`Tracer.adopt`, which re-bases span ids and re-parents each
worker's root spans under the step span that spawned the task.  The
combined tree exports as Chrome ``chrome://tracing`` / Perfetto JSON
(:func:`write_chrome_trace`) and as a top-N summary for
``result.stats`` (:func:`summarize`).  Worker clocks are monotonic
but not offset-aligned with the parent's, so each adopted buffer is
laid out on its own Chrome track (``tid``) instead of being
clock-shifted.

This module imports nothing from the rest of the package.
"""

from __future__ import annotations

import json
import time
from contextvars import ContextVar

#: Soft cap on buffered spans; beyond it spans are counted as dropped
#: rather than recorded (a full trace of the largest golden case is
#: far below this).
DEFAULT_SPAN_LIMIT = 1_000_000


class Tracer:
    """Per-process span buffer with parent/child nesting."""

    __slots__ = ("spans", "limit", "dropped", "_next_id", "_tracks")

    def __init__(self, limit: int = DEFAULT_SPAN_LIMIT):
        self.spans = []
        self.limit = limit
        self.dropped = 0
        self._next_id = 0
        self._tracks = 0

    def begin(self, name: str, attrs: dict, parent) -> dict:
        """Open a span record; returns None if the buffer is full."""
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return None
        span_id = self._next_id
        self._next_id = span_id + 1
        record = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "t0": time.perf_counter(),
            "dur": 0.0,
            "attrs": attrs,
        }
        self.spans.append(record)
        return record

    def end(self, record: dict) -> None:
        """Close a span record opened by :meth:`begin`."""
        record["dur"] = time.perf_counter() - record["t0"]

    def snapshot(self) -> list:
        """Plain-list copy of the buffer, safe to pickle."""
        return [dict(record) for record in self.spans]

    def adopt(
        self, records: list, parent=None, shift: float = 0.0, track=None
    ) -> int:
        """Stitch a worker's :meth:`snapshot` into this tracer's tree.

        Span ids are re-based to stay unique, the worker's root spans
        (``parent is None``) are re-parented under ``parent`` (a span
        id in *this* tracer, typically the step span that spawned the
        task), and the whole buffer is tagged with a fresh Chrome
        track id.  Returns the number of spans adopted.

        ``shift`` is added to every adopted ``t0``: callers that *can*
        align the foreign clock -- the serve client knows its request
        span brackets the server's handling, so it can center the
        server spans inside its own wait interval -- pass the
        offset here.  ``track`` overrides the fresh Chrome track id;
        the serve client passes its own track so one request's client
        and server spans render as a single stitched timeline.
        """
        if not records:
            return 0
        offset = self._next_id
        if track is None:
            self._tracks += 1
            track = self._tracks
        top = 0
        adopted = 0
        for record in records:
            if len(self.spans) >= self.limit:
                self.dropped += len(records) - adopted
                break
            record = dict(record)
            top = max(top, record["id"])
            record["id"] += offset
            record["t0"] += shift
            if record["parent"] is None:
                record["parent"] = parent
            else:
                record["parent"] += offset
            record["tid"] = track
            self.spans.append(record)
            adopted += 1
        self._next_id = offset + top + 1
        return adopted


# -- context-local activation -------------------------------------------------

_TRACER: ContextVar = ContextVar("repro_obs_tracer", default=None)
_CURRENT: ContextVar = ContextVar("repro_obs_span", default=None)


def activate(tracer: Tracer = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    tracer = tracer if tracer is not None else Tracer()
    _TRACER.set(tracer)
    return tracer


def deactivate() -> Tracer:
    """Remove and return the active tracer (None if none)."""
    tracer = _TRACER.get()
    _TRACER.set(None)
    return tracer


def active_tracer() -> Tracer:
    """Return the active tracer, or None."""
    return _TRACER.get()


def swap(tracer: Tracer):
    """Install ``tracer``, returning a token for :func:`restore`.

    Also clears the current-span variable: the swapped-in tracer is a
    fresh buffer (a task collector's), so spans opened under it must
    be roots -- any inherited span id would reference the *previous*
    tracer (the parent's, e.g. across a ``fork`` or on the ``jobs=1``
    in-process path) and corrupt re-parenting on adopt.
    """
    return (_TRACER.set(tracer), _CURRENT.set(None))


def restore(token) -> None:
    """Restore the tracer that was active before :func:`swap`."""
    tracer_token, current_token = token
    _CURRENT.reset(current_token)
    _TRACER.reset(tracer_token)


class span:
    """Record a named interval on the active tracer (no-op otherwise).

    ``with span("step2.patterns", inst=name) as rec:`` yields the raw
    span record (or None when tracing is off / the buffer is full);
    callers may add attributes to ``rec["attrs"]`` before the block
    exits.  Nesting is tracked through a context variable, so spans
    opened in different threads or tasks cannot interleave parents.
    """

    __slots__ = ("_name", "_attrs", "_tracer", "_record", "_token")

    def __init__(self, _name: str, **attrs):
        self._name = _name
        self._attrs = attrs

    def __enter__(self):
        tracer = _TRACER.get()
        if tracer is None:
            self._record = None
            return None
        record = tracer.begin(self._name, self._attrs, _CURRENT.get())
        self._tracer = tracer
        self._record = record
        if record is not None:
            self._token = _CURRENT.set(record["id"])
        return record

    def __exit__(self, exc_type, exc, tb):
        record = self._record
        if record is not None:
            _CURRENT.reset(self._token)
            self._tracer.end(record)
        return False


def current_span_id():
    """Return the id of the innermost open span, or None."""
    return _CURRENT.get()


# -- exports ------------------------------------------------------------------


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer as a Chrome ``chrome://tracing`` document.

    Complete events (``ph: "X"``) with microsecond timestamps; each
    adopted worker buffer sits on its own track (``tid``).  Load the
    file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = []
    for record in tracer.spans:
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": record["t0"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": 0,
                "tid": record.get("tid", 0),
                "args": record["attrs"],
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    """Write :func:`chrome_trace` JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle)
        handle.write("\n")


def summarize(tracer: Tracer, top: int = 10) -> dict:
    """Aggregate spans by name into a top-N summary for result.stats."""
    totals = {}
    for record in tracer.spans:
        entry = totals.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += record["dur"]
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    return {
        "spans": len(tracer.spans),
        "dropped": tracer.dropped,
        "top": [
            {"name": name, "count": count, "seconds": round(seconds, 6)}
            for name, (count, seconds) in ranked[:top]
        ],
    }
