"""Typed metrics registry: counters, gauges, timers and histograms.

The registry is the single sink for every hot-path measurement in the
flow.  It subsumes the original ``repro.perf.profile.Profiler`` (that
module is now a thin shim re-exporting this one): counters and timers
keep their historical names and semantics, and two new families are
added -- **gauges** (last-write-wins values such as fan-out widths)
and **histograms** (fixed log-scale buckets, e.g. DRC-check latency,
APs per pin, DP edge costs).

Activation is *context-local* (:mod:`contextvars`), not module-global:
nested or concurrent activations -- worker tasks running in-process,
threads, the span stack of :mod:`repro.obs.trace` -- cannot
cross-contaminate.  When no registry is active, :func:`tick` and
:func:`observe` are a single context-variable load and a falsy test.

Metric and stat names follow a mandatory ``domain.sub.name``
convention (:data:`NAME_RE`): lowercase dot-separated segments of
``[a-z][a-z0-9_]*`` with at least two segments.  The registry enforces
it on first use of each name; :func:`stats_name_violations` audits a
whole ``PinAccessResult.stats`` payload against the same contract.

Exports: :func:`render_prometheus` emits the Prometheus text format
(validated by :func:`parse_prometheus`, the same checker CI uses) and
:meth:`MetricsRegistry.to_bench_entry` wraps a snapshot into the
shared ``repro.qa.bench/v1`` envelope.

This module imports nothing from the rest of the package so the
lowest layers (``repro.geom``, ``repro.drc``) can depend on it
without cycles.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_right
from collections import Counter
from contextlib import contextmanager
from contextvars import ContextVar

#: The ``domain.sub.name`` contract: at least two dot-separated
#: lowercase segments, each ``[a-z][a-z0-9_]*``.
NAME_RE = re.compile(r"[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+\Z")

#: One segment of a name (nested stats keys extend their parent).
SEGMENT_RE = re.compile(r"[a-z][a-z0-9_]*\Z")

#: Default histogram bucket upper bounds: powers of two from 2^-20
#: (~1 microsecond) to 2^20 (~1e6), a fixed log scale every registry
#: shares so cross-process histogram merges are always well-formed.
LOG2_BUCKETS = tuple(2.0**e for e in range(-20, 21))


def validate_name(name: str) -> str:
    """Return ``name`` if it obeys the naming contract, else raise."""
    if not isinstance(name, str) or not NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the 'domain.sub.name' "
            "convention (>= 2 dot-separated [a-z][a-z0-9_]* segments)"
        )
    return name


def stats_name_violations(stats: dict, prefix: str = "") -> list:
    """Audit a stats payload against the naming contract.

    Every top-level key must be a full ``domain.sub.name``; keys of
    nested dicts must either be full names themselves (e.g. counter
    names under ``metrics.counters``) or single segments that extend
    their parent's dotted path.  Returns the offending paths (empty
    means the payload conforms).
    """
    bad = []
    for key, value in stats.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if not isinstance(key, str):
            bad.append(path)
            continue
        if NAME_RE.match(key):
            child_prefix = key
        elif prefix and SEGMENT_RE.match(key):
            child_prefix = path
        else:
            bad.append(path)
            continue
        if isinstance(value, dict):
            bad.extend(stats_name_violations(value, child_prefix))
    return bad


class Histogram:
    """Fixed-bucket log-scale histogram (cross-process mergeable)."""

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, bounds: tuple = LOG2_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: dict) -> None:
        """Fold a :meth:`snapshot` of a same-bounds histogram in."""
        if tuple(other["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other["counts"]):
            self.counts[i] += count
        self.total += other["total"]
        self.sum += other["sum"]
        for extreme, pick in (("min", min), ("max", max)):
            theirs = other.get(extreme)
            if theirs is None:
                continue
            ours = getattr(self, extreme)
            setattr(self, extreme, theirs if ours is None else pick(ours, theirs))

    def snapshot(self) -> dict:
        """Plain-dict copy, safe to pickle across processes."""
        return {
            "bounds": self.bounds,
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def summary(self) -> dict:
        """Compact JSON form for ``result.stats`` (no bucket vector)."""
        return {
            "count": self.total,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
        }


class SlidingQuantiles:
    """Quantile estimation over a sliding window of recent samples.

    Where :class:`Histogram` accumulates forever (its buckets answer
    "what happened since start"), this class answers "what is
    happening *now*": a fixed-size ring buffer keeps the last
    ``window`` samples and quantiles are computed on demand by
    sorting a copy.  Window sizes are small (hundreds to a few
    thousand), so the on-demand sort costs microseconds and only
    runs on scrape/health paths, never per-sample.

    This is the estimator behind the serve layer's per-op RED
    telemetry (p50/p95/p99 request latency) and the SLO evaluation
    in :mod:`repro.obs.slo`; because old samples fall out of the
    window, a breached objective can *recover* once traffic is
    healthy again.
    """

    __slots__ = ("window", "count", "_ring", "_next")

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.count = 0
        self._ring = []
        self._next = 0

    def observe(self, value: float) -> None:
        """Record one sample, evicting the oldest past ``window``."""
        if len(self._ring) < self.window:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
        self._next = (self._next + 1) % self.window
        self.count += 1

    def __len__(self):
        return len(self._ring)

    def quantile(self, fraction: float):
        """Return the ``fraction`` quantile of the window, or None.

        Same nearest-rank convention as the benchmark harness: the
        sample at ``int(fraction * n)`` of the sorted window.
        """
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def quantiles(self, fractions=(0.5, 0.95, 0.99)) -> dict:
        """Return ``{"p50": ..., "p95": ..., ...}`` in one sort."""
        if not self._ring:
            return {_quantile_key(f): None for f in fractions}
        ordered = sorted(self._ring)
        top = len(ordered) - 1
        return {
            _quantile_key(f): ordered[min(top, int(f * len(ordered)))]
            for f in fractions
        }

    def summary(self) -> dict:
        """Compact JSON form: lifetime count, window fill, quantiles."""
        out = {"count": self.count, "window": len(self._ring)}
        out.update(self.quantiles())
        return out


def _quantile_key(fraction: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99_9"``."""
    text = f"{fraction * 100:g}".replace(".", "_")
    return f"p{text}"


class MetricsRegistry:
    """A typed bag of counters, timers, gauges and histograms.

    This is also the historical ``Profiler`` (aliased in
    :mod:`repro.perf.profile`): ``incr`` / ``add_time`` / ``time`` /
    ``merge`` / ``snapshot`` keep their original semantics, and
    worker-process snapshots that carry only ``counters``/``timers``
    still merge cleanly.
    """

    __slots__ = ("counters", "timers", "gauges", "histograms", "_checked")

    def __init__(self):
        self.counters = Counter()
        self.timers = {}
        self.gauges = {}
        self.histograms = {}
        self._checked = set()

    def _name(self, name: str) -> str:
        """Validate ``name`` once; later uses are a set lookup."""
        if name not in self._checked:
            validate_name(name)
            self._checked.add(name)
        return name

    # -- counters / timers (the Profiler-compatible surface) ----------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[self._name(name)] += n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer bucket ``name``."""
        name = self._name(name)
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def time(self, name: str):
        """Context manager accumulating the block's wall time."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # -- gauges / histograms -------------------------------------------------

    def set_gauge(self, name: str, value) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[self._name(name)] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (log-scale buckets)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[self._name(name)] = Histogram()
        hist.observe(value)

    # -- cross-process merge -------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, count in snapshot.get("counters", {}).items():
            self.counters[self._name(name)] += count
        for name, seconds in snapshot.get("timers", {}).items():
            self.add_time(name, seconds)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[self._name(name)] = Histogram(
                    tuple(data["bounds"])
                )
            hist.merge(data)

    def snapshot(self) -> dict:
        """Return a plain-dict copy safe to pickle across processes."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in self.histograms.items()
            },
        }

    # -- exports --------------------------------------------------------------

    def to_bench_entry(
        self,
        design: str,
        scale: float,
        cells: int,
        context: dict = None,
    ) -> dict:
        """Wrap this registry into the ``repro.qa.bench/v1`` envelope.

        Counters land in ``perf`` under their metric names, timers as
        ``<name>.seconds``; histogram summaries ride in ``metrics``.
        """
        from repro.qa.metrics import bench_entry

        perf = {name: count for name, count in sorted(self.counters.items())}
        for name, seconds in sorted(self.timers.items()):
            perf[f"{name}.seconds"] = round(seconds, 6)
        summaries = {
            name: hist.summary()
            for name, hist in sorted(self.histograms.items())
        }
        return bench_entry(
            design=design,
            scale=scale,
            cells=cells,
            perf=perf,
            context=context,
            metrics=summaries or None,
        )


# -- context-local activation -------------------------------------------------

_ACTIVE: ContextVar = ContextVar("repro_obs_registry", default=None)


def activate(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    registry = registry if registry is not None else MetricsRegistry()
    _ACTIVE.set(registry)
    return registry


def deactivate() -> MetricsRegistry:
    """Remove and return the active registry (None if none)."""
    registry = _ACTIVE.get()
    _ACTIVE.set(None)
    return registry


def active_registry() -> MetricsRegistry:
    """Return the active registry, or None."""
    return _ACTIVE.get()


def swap(registry: MetricsRegistry):
    """Install ``registry``, returning a token for :func:`restore`."""
    return _ACTIVE.set(registry)


def restore(token) -> None:
    """Restore the registry that was active before :func:`swap`."""
    _ACTIVE.reset(token)


def tick(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry; no-op otherwise."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.incr(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry; else no-op."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.observe(name, value)


@contextmanager
def timed(name: str):
    """Time a block into the active registry; near-free when inactive."""
    registry = _ACTIVE.get()
    if registry is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        registry.add_time(name, time.perf_counter() - t0)


@contextmanager
def collecting(registry: MetricsRegistry = None):
    """Activate a registry for the block, restoring the previous one."""
    registry = registry if registry is not None else MetricsRegistry()
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


# -- Prometheus text format ---------------------------------------------------


def _prom_name(name: str) -> str:
    """Translate a dotted metric name into a Prometheus identifier."""
    return name.replace(".", "_").replace("-", "_")


def prom_name(name: str) -> str:
    """Public alias of the dotted-name translation (serve exporters)."""
    return _prom_name(name)


def prom_label_value(value) -> str:
    """Escape a value for use inside a Prometheus label string."""
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines = []
    for name, count in sorted(registry.counters.items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(count)}")
    for name, seconds in sorted(registry.timers.items()):
        prom = _prom_name(name) + "_seconds_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(float(seconds))}")
    for name, value in sorted(registry.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, hist in sorted(registry.histograms.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.total}')
        lines.append(f"{prom}_sum {_prom_value(float(hist.sum))}")
        lines.append(f"{prom}_count {hist.total}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_prometheus(registry))


_PROM_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+"
    r"(?P<value>[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf)|NaN)"
    r"\Z"
)

_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_prometheus(text: str) -> dict:
    """Parse (and validate) Prometheus text format.

    Returns ``{metric name: [(label string or None, value), ...]}``;
    raises :class:`ValueError` on any malformed line.  This is the
    validator the test suite and the CI observability smoke job run
    over ``--metrics-out`` output.
    """
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                    raise ValueError(f"line {lineno}: bad TYPE comment")
            continue
        match = _PROM_SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        value = float(match.group("value").replace("Inf", "inf"))
        samples.setdefault(match.group("name"), []).append(
            (match.group("labels"), value)
        )
    return samples
