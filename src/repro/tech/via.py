"""Via definitions.

A via definition (LEF ``VIA`` / DEF ``VIAS`` entry) is three stacked
shapes: the bottom-layer enclosure, the cut, and the top-layer
enclosure, all expressed relative to the via origin (the point the
router drops the via at).  Pin access validity (paper Algorithm 1,
``isValid``) is decided by DRC-checking these shapes at the candidate
access point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.rect import Rect


@dataclass(frozen=True)
class ViaDef:
    """A single-cut via definition.

    ``bottom_enc`` / ``cut`` / ``top_enc`` are rects relative to the
    via origin (0, 0).  ``bottom_layer`` / ``cut_layer`` / ``top_layer``
    are layer names resolved against the technology.
    """

    name: str
    bottom_layer: str
    cut_layer: str
    top_layer: str
    bottom_enc: Rect
    cut: Rect
    top_enc: Rect

    def __post_init__(self) -> None:
        if not self.bottom_enc.contains_rect(self.cut):
            raise ValueError(
                f"via {self.name}: bottom enclosure must contain the cut"
            )
        if not self.top_enc.contains_rect(self.cut):
            raise ValueError(
                f"via {self.name}: top enclosure must contain the cut"
            )

    def bottom_at(self, x: int, y: int) -> Rect:
        """Return the bottom enclosure placed at ``(x, y)``."""
        return self.bottom_enc.translated(x, y)

    def cut_at(self, x: int, y: int) -> Rect:
        """Return the cut placed at ``(x, y)``."""
        return self.cut.translated(x, y)

    def top_at(self, x: int, y: int) -> Rect:
        """Return the top enclosure placed at ``(x, y)``."""
        return self.top_enc.translated(x, y)

    @staticmethod
    def symmetric(
        name: str,
        bottom_layer: str,
        cut_layer: str,
        top_layer: str,
        cut_size: int,
        bottom_overhang_x: int,
        bottom_overhang_y: int,
        top_overhang_x: int,
        top_overhang_y: int,
    ) -> "ViaDef":
        """Build a via with a centered square cut and symmetric overhangs."""
        half = cut_size // 2
        cut = Rect(-half, -half, cut_size - half, cut_size - half)
        bottom = Rect(
            cut.xlo - bottom_overhang_x,
            cut.ylo - bottom_overhang_y,
            cut.xhi + bottom_overhang_x,
            cut.yhi + bottom_overhang_y,
        )
        top = Rect(
            cut.xlo - top_overhang_x,
            cut.ylo - top_overhang_y,
            cut.xhi + top_overhang_x,
            cut.yhi + top_overhang_y,
        )
        return ViaDef(
            name=name,
            bottom_layer=bottom_layer,
            cut_layer=cut_layer,
            top_layer=top_layer,
            bottom_enc=bottom,
            cut=cut,
            top_enc=top,
        )
