"""Layer records for the technology stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tech.rules import (
    CutSpacingRule,
    EolRule,
    MinAreaRule,
    MinStepRule,
    SpacingTable,
)


class LayerKind(enum.Enum):
    """LEF layer TYPE (the subset detailed routing cares about)."""

    ROUTING = "ROUTING"
    CUT = "CUT"


class RoutingDirection(enum.Enum):
    """Preferred routing direction of a routing layer."""

    HORIZONTAL = "HORIZONTAL"
    VERTICAL = "VERTICAL"

    @property
    def other(self) -> "RoutingDirection":
        """Return the perpendicular direction."""
        if self is RoutingDirection.HORIZONTAL:
            return RoutingDirection.VERTICAL
        return RoutingDirection.HORIZONTAL


@dataclass
class Layer:
    """One layer of the stack.

    Routing layers carry ``direction``, ``pitch``, ``width`` (default
    wire width) and the metal rules; cut layers carry the cut spacing
    rule.  ``index`` is the position in the technology's layer list and
    orders the stack bottom-up.
    """

    name: str
    kind: LayerKind
    index: int = -1
    # Routing-layer attributes.
    direction: RoutingDirection = RoutingDirection.HORIZONTAL
    pitch: int = 0
    width: int = 0
    offset: int = 0
    spacing_table: SpacingTable = None
    eol: EolRule = None
    min_step: MinStepRule = None
    min_area: MinAreaRule = None
    # Cut-layer attributes.
    cut_spacing: CutSpacingRule = None

    @property
    def is_routing(self) -> bool:
        """Return True for routing (metal) layers."""
        return self.kind is LayerKind.ROUTING

    @property
    def is_cut(self) -> bool:
        """Return True for cut (via) layers."""
        return self.kind is LayerKind.CUT

    @property
    def is_horizontal(self) -> bool:
        """Return True if the preferred direction is horizontal."""
        return self.direction is RoutingDirection.HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        """Return True if the preferred direction is vertical."""
        return self.direction is RoutingDirection.VERTICAL

    @property
    def min_spacing(self) -> int:
        """Return the default (width-0, PRL-0) spacing."""
        if self.spacing_table is None:
            return 0
        return self.spacing_table.lookup(0, 0)

    @property
    def max_rule_distance(self) -> int:
        """Return the largest interaction distance any rule implies.

        Used by the DRC engine to size region-query windows so that
        every shape that could interact with a target is found.
        """
        candidates = [0]
        if self.spacing_table is not None:
            candidates.append(self.spacing_table.max_spacing)
        if self.eol is not None:
            candidates.append(self.eol.eol_space + self.eol.eol_within)
        if self.cut_spacing is not None:
            candidates.append(self.cut_spacing.spacing)
        return max(candidates)

    def __str__(self) -> str:
        return f"Layer({self.name}, {self.kind.value})"
