"""Technology model: layers, design rules, vias and node presets.

This is the LEF-side substrate of the reproduction.  A
:class:`Technology` holds the layer stack (alternating routing and cut
layers), the per-layer design rules that the DRC engine interprets
(spacing tables, end-of-line, min-step, min-area, cut spacing) and the
via definitions used for up-via access.

Three node presets mirror the nodes of the paper's benchmarks:
45 nm and 32 nm (ISPD-2018 suite, Table I) and a 14 nm-class node
(Experiment 3's preliminary study, Figure 9).
"""

from repro.tech.layer import Layer, LayerKind, RoutingDirection
from repro.tech.rules import (
    EolRule,
    MinAreaRule,
    MinStepRule,
    CutSpacingRule,
    SpacingTable,
)
from repro.tech.via import ViaDef
from repro.tech.technology import Technology
from repro.tech.nodes import make_node, make_n45, make_n32, make_n14

__all__ = [
    "Layer",
    "LayerKind",
    "RoutingDirection",
    "SpacingTable",
    "EolRule",
    "MinStepRule",
    "MinAreaRule",
    "CutSpacingRule",
    "ViaDef",
    "Technology",
    "make_node",
    "make_n45",
    "make_n32",
    "make_n14",
]
