"""The technology container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.layer import Layer
from repro.tech.via import ViaDef


@dataclass
class Technology:
    """A full technology: name, DBU scale, layer stack and via defs.

    Layers must be appended bottom-up (routing and cut layers
    alternating).  Via definitions are registered per cut layer; the
    first via registered for a cut layer is its *primary* via (the one
    the paper prefers when multiple vias are valid at an access point).
    """

    name: str
    dbu_per_micron: int = 1000
    layers: list = field(default_factory=list)
    vias: list = field(default_factory=list)
    site_name: str = "unit"
    site_width: int = 0
    site_height: int = 0
    manufacturing_grid: int = 5

    def __post_init__(self) -> None:
        self._layers_by_name = {}
        self._vias_by_name = {}
        self._vias_by_bottom = {}
        for layer in self.layers:
            self._register_layer(layer)
        for via in self.vias:
            self._register_via(via)

    # -- construction ------------------------------------------------------

    def add_layer(self, layer: Layer) -> Layer:
        """Append a layer to the top of the stack."""
        self.layers.append(layer)
        self._register_layer(layer)
        return layer

    def add_via(self, via: ViaDef) -> ViaDef:
        """Register a via definition."""
        self.vias.append(via)
        self._register_via(via)
        return via

    def _register_layer(self, layer: Layer) -> None:
        if layer.name in self._layers_by_name:
            raise ValueError(f"duplicate layer {layer.name}")
        layer.index = len(self._layers_by_name)
        self._layers_by_name[layer.name] = layer

    def _register_via(self, via: ViaDef) -> None:
        if via.name in self._vias_by_name:
            raise ValueError(f"duplicate via {via.name}")
        for lname in (via.bottom_layer, via.cut_layer, via.top_layer):
            if lname not in self._layers_by_name:
                raise ValueError(
                    f"via {via.name} references unknown layer {lname}"
                )
        self._vias_by_name[via.name] = via
        self._vias_by_bottom.setdefault(via.bottom_layer, []).append(via)

    # -- lookups -----------------------------------------------------------

    def layer(self, name: str) -> Layer:
        """Return the layer named ``name``."""
        try:
            return self._layers_by_name[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r}") from None

    def has_layer(self, name: str) -> bool:
        """Return True if a layer of that name exists."""
        return name in self._layers_by_name

    def via(self, name: str) -> ViaDef:
        """Return the via definition named ``name``."""
        try:
            return self._vias_by_name[name]
        except KeyError:
            raise KeyError(f"no via named {name!r}") from None

    def routing_layers(self) -> list:
        """Return routing layers bottom-up."""
        return [lyr for lyr in self.layers if lyr.is_routing]

    def cut_layers(self) -> list:
        """Return cut layers bottom-up."""
        return [lyr for lyr in self.layers if lyr.is_cut]

    def layer_above(self, layer: Layer) -> Layer:
        """Return the next layer up the stack, or None at the top."""
        idx = layer.index + 1
        if idx >= len(self.layers):
            return None
        return self.layers[idx]

    def layer_below(self, layer: Layer) -> Layer:
        """Return the next layer down the stack, or None at the bottom."""
        idx = layer.index - 1
        if idx < 0:
            return None
        return self.layers[idx]

    def routing_layer_above(self, layer: Layer) -> Layer:
        """Return the routing layer immediately above ``layer``."""
        cur = self.layer_above(layer)
        while cur is not None and not cur.is_routing:
            cur = self.layer_above(cur)
        return cur

    def vias_from(self, bottom_layer_name: str) -> list:
        """Return via defs whose bottom layer is ``bottom_layer_name``.

        The first element is the primary via.
        """
        return list(self._vias_by_bottom.get(bottom_layer_name, ()))

    def primary_via_from(self, bottom_layer_name: str) -> ViaDef:
        """Return the primary up-via from the given routing layer."""
        vias = self.vias_from(bottom_layer_name)
        if not vias:
            raise KeyError(
                f"no via definition from layer {bottom_layer_name!r}"
            )
        return vias[0]

    def microns(self, dbu: int) -> float:
        """Convert DBU to microns."""
        return dbu / self.dbu_per_micron

    def dbu(self, microns: float) -> int:
        """Convert microns to DBU (rounded)."""
        return round(microns * self.dbu_per_micron)
