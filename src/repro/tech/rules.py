"""Design rule records interpreted by the DRC engine.

The rule set follows the LEF 5.8 syntax subset that the ISPD-2018
benchmarks use (and that TritonRoute's checker interprets): spacing
tables keyed by width and parallel run length, end-of-line spacing,
min-step, min-area and cut spacing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SpacingTable:
    """LEF ``SPACINGTABLE PARALLELRUNLENGTH`` for a routing layer.

    ``prl_values`` is the ascending list of parallel-run-length
    breakpoints; ``width_rows`` is a list of ``(width, spacings)``
    where ``spacings[i]`` applies when the wide-shape width is at least
    ``width`` and the PRL is at least ``prl_values[i]``.  The first row
    (width 0) is the default spacing.
    """

    prl_values: list
    width_rows: list  # list of (min_width, [spacing per prl column])

    def __post_init__(self) -> None:
        if not self.prl_values or not self.width_rows:
            raise ValueError("spacing table must have at least one row/column")
        for width, spacings in self.width_rows:
            if len(spacings) != len(self.prl_values):
                raise ValueError(
                    f"row for width {width} has {len(spacings)} entries, "
                    f"expected {len(self.prl_values)}"
                )

    def lookup(self, width: int, prl: int) -> int:
        """Return the required spacing for a shape pair.

        ``width`` is the larger of the two shapes' widths; ``prl`` is
        their parallel run length.  LEF semantics: pick the greatest
        table row whose width bound does not exceed ``width``, then the
        greatest column whose PRL bound does not exceed ``prl``.
        """
        row = self.width_rows[0][1]
        for min_width, spacings in self.width_rows:
            if width >= min_width:
                row = spacings
        value = row[0]
        for bound, spacing in zip(self.prl_values, row):
            if prl >= bound:
                value = spacing
        return value

    @property
    def max_spacing(self) -> int:
        """Return the largest spacing anywhere in the table.

        The DRC engine bloats query windows by this amount so no
        potentially-violating neighbor is missed.
        """
        return max(max(spacings) for _, spacings in self.width_rows)

    @staticmethod
    def simple(spacing: int) -> "SpacingTable":
        """Return a one-entry table encoding a constant min spacing."""
        return SpacingTable(prl_values=[0], width_rows=[(0, [spacing])])


@dataclass(frozen=True)
class EolRule:
    """LEF ``SPACING eolSpace ENDOFLINE eolWidth WITHIN eolWithin``.

    An edge shorter than ``eol_width`` is an end-of-line edge; any
    metal within ``eol_space`` ahead of it (and ``eol_within`` to the
    sides) violates.
    """

    eol_space: int
    eol_width: int
    eol_within: int


@dataclass(frozen=True)
class MinStepRule:
    """LEF ``MINSTEP`` -- no boundary edge shorter than ``min_step_length``.

    ``max_edges`` is the number of consecutive short edges tolerated
    (LEF MAXEDGES): a maximal run of more than ``max_edges`` boundary
    edges shorter than ``min_step_length`` is a violation.  The default
    of 0 is the classic reading -- any short edge violates -- and is
    what makes paper Figure 3(a)/(b) dirty while (c)/(d) are clean.
    """

    min_step_length: int
    max_edges: int = 0


@dataclass(frozen=True)
class MinAreaRule:
    """LEF ``AREA`` -- minimum metal polygon area."""

    min_area: int


@dataclass(frozen=True)
class CutSpacingRule:
    """LEF cut-layer ``SPACING`` -- minimum cut-to-cut spacing."""

    spacing: int
