"""Technology node presets.

The ISPD-2018 suite spans a 45 nm and a 32 nm node (paper Table I);
Experiment 3's preliminary study uses a commercial 14 nm library
(Figure 9).  These presets are synthetic but dimensionally faithful:
1 DBU = 1 nm, metal-1 pitch / width / via enclosures / min-step values
sit in the published ballpark for each node, and every layer carries
the full rule set the DRC engine interprets.

Each node has nine routing layers (M1..M9) with alternating preferred
directions and eight cut layers (V12..V89), matching the 9-layer
benchmarks of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.layer import Layer, LayerKind, RoutingDirection
from repro.tech.rules import (
    CutSpacingRule,
    EolRule,
    MinAreaRule,
    MinStepRule,
    SpacingTable,
)
from repro.tech.technology import Technology
from repro.tech.via import ViaDef


@dataclass(frozen=True)
class _NodeSpec:
    """Dimensional parameters of one technology node."""

    name: str
    m1_width: int
    m1_pitch: int
    upper_width: int      # widths for M7..M9
    upper_pitch: int
    cut_size: int
    cut_spacing: int
    overhang: int         # long-side via enclosure overhang
    min_step: int
    eol_space: int
    eol_width: int
    eol_within: int
    min_area_factor: int  # min area = factor * width * width
    site_tracks: int      # row height in M1 pitches


_N45 = _NodeSpec(
    name="N45",
    m1_width=70,
    m1_pitch=140,
    upper_width=140,
    upper_pitch=280,
    cut_size=70,
    cut_spacing=80,
    overhang=35,
    min_step=35,
    eol_space=90,
    eol_width=90,
    eol_within=25,
    min_area_factor=4,
    site_tracks=10,
)

_N32 = _NodeSpec(
    name="N32",
    m1_width=50,
    m1_pitch=100,
    upper_width=100,
    upper_pitch=200,
    cut_size=50,
    cut_spacing=60,
    overhang=25,
    min_step=25,
    eol_space=70,
    eol_width=70,
    eol_within=20,
    min_area_factor=4,
    site_tracks=12,
)

_N14 = _NodeSpec(
    name="N14",
    m1_width=32,
    m1_pitch=64,
    upper_width=64,
    upper_pitch=128,
    cut_size=32,
    cut_spacing=42,
    overhang=16,
    min_step=16,
    eol_space=50,
    eol_width=40,
    eol_within=10,
    min_area_factor=5,
    site_tracks=10,
)

_SPECS = {"N45": _N45, "N32": _N32, "N14": _N14}

NUM_ROUTING_LAYERS = 9


def make_node(name: str) -> Technology:
    """Build the preset technology for node ``name`` (N45, N32 or N14)."""
    try:
        spec = _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown node {name!r}; choose from {sorted(_SPECS)}"
        ) from None
    return _build(spec)


def make_n45() -> Technology:
    """Return the 45 nm preset (ispd18 test1-test3 class)."""
    return make_node("N45")


def make_n32() -> Technology:
    """Return the 32 nm preset (ispd18 test4-test10 class)."""
    return make_node("N32")


def make_n14() -> Technology:
    """Return the 14 nm-class preset (Experiment 3 preliminary study)."""
    return make_node("N14")


def _build(spec: _NodeSpec) -> Technology:
    tech = Technology(
        name=spec.name,
        dbu_per_micron=1000,
        site_name=f"{spec.name.lower()}site",
        site_width=spec.m1_pitch,
        site_height=spec.site_tracks * spec.m1_pitch,
        manufacturing_grid=1,
    )
    for i in range(1, NUM_ROUTING_LAYERS + 1):
        lower = i <= 6
        width = spec.m1_width if lower else spec.upper_width
        pitch = spec.m1_pitch if lower else spec.upper_pitch
        direction = (
            RoutingDirection.HORIZONTAL
            if i % 2 == 1
            else RoutingDirection.VERTICAL
        )
        tech.add_layer(
            Layer(
                name=f"M{i}",
                kind=LayerKind.ROUTING,
                direction=direction,
                pitch=pitch,
                width=width,
                offset=pitch // 2,
                spacing_table=_metal_spacing_table(width),
                eol=EolRule(
                    eol_space=_scaled(spec.eol_space, lower),
                    eol_width=_scaled(spec.eol_width, lower),
                    eol_within=_scaled(spec.eol_within, lower),
                ),
                min_step=MinStepRule(min_step_length=spec.min_step),
                min_area=MinAreaRule(
                    min_area=spec.min_area_factor * width * width
                ),
            )
        )
        if i < NUM_ROUTING_LAYERS:
            cut_size = spec.cut_size if lower else spec.cut_size * 2
            spacing = spec.cut_spacing if lower else spec.cut_spacing * 2
            tech.add_layer(
                Layer(
                    name=f"V{i}{i + 1}",
                    kind=LayerKind.CUT,
                    cut_spacing=CutSpacingRule(spacing=spacing),
                )
            )
    _add_vias(tech, spec)
    return tech


def _scaled(value: int, lower: bool) -> int:
    """Upper layers use doubled rule values (wider metal)."""
    return value if lower else value * 2


def _metal_spacing_table(width: int) -> SpacingTable:
    """Return a 3x3 PRL spacing table scaled to the layer width.

    Mirrors the ISPD-2018 LEF style: default spacing equals the wire
    width; wide shapes with long parallel runs need up to ~2.3x more.
    """
    s = width
    return SpacingTable(
        prl_values=[0, 4 * s, 8 * s],
        width_rows=[
            (0, [s, s, s]),
            (2 * s, [s, int(1.5 * s), int(1.5 * s)]),
            (4 * s, [s, int(1.5 * s), int(2.3 * s)]),
        ],
    )


def _add_vias(tech: Technology, spec: _NodeSpec) -> None:
    """Register two via variants per cut layer; the first is primary.

    The primary via elongates its bottom enclosure along the bottom
    layer's preferred direction and its top enclosure along the top
    layer's; the alternate via squares the bottom enclosure, which some
    narrow pins need.
    """
    for i in range(1, NUM_ROUTING_LAYERS):
        lower = i < 6
        cut = spec.cut_size if lower else spec.cut_size * 2
        over = spec.overhang if lower else spec.overhang * 2
        bottom = tech.layer(f"M{i}")
        top = tech.layer(f"M{i + 1}")
        b_ox, b_oy = (over, 0) if bottom.is_horizontal else (0, over)
        t_ox, t_oy = (over, 0) if top.is_horizontal else (0, over)
        tech.add_via(
            ViaDef.symmetric(
                name=f"V{i}{i + 1}_P",
                bottom_layer=bottom.name,
                cut_layer=f"V{i}{i + 1}",
                top_layer=top.name,
                cut_size=cut,
                bottom_overhang_x=b_ox,
                bottom_overhang_y=b_oy,
                top_overhang_x=t_ox,
                top_overhang_y=t_oy,
            )
        )
        # Alternate via: square bottom enclosure (half overhang on both
        # sides); useful when the pin is too short for the long
        # enclosure.  Registered second, so never primary.
        half = over // 2
        tech.add_via(
            ViaDef.symmetric(
                name=f"V{i}{i + 1}_S",
                bottom_layer=bottom.name,
                cut_layer=f"V{i}{i + 1}",
                top_layer=top.name,
                cut_size=cut,
                bottom_overhang_x=half,
                bottom_overhang_y=half,
                top_overhang_x=t_ox,
                top_overhang_y=t_oy,
            )
        )
