"""LEF/DEF readers and writers (5.8 subset).

The ISPD-2018 contest distributes designs as LEF (technology + cell
library) and DEF (placement + connectivity); the paper's framework is
driven entirely by them.  This package emits and parses the subset the
flow consumes:

* LEF: UNITS, MANUFACTURINGGRID, SITE, routing/cut LAYERs with
  spacing tables, end-of-line spacing, min-step and area rules, fixed
  VIAs, and MACROs with pins, ports and obstructions.
* DEF: UNITS, DIEAREA, ROWs, TRACKS, COMPONENTS, PINS and NETS.

Round-tripping a generated testcase through text and back exercises
the exact code path a real deployment would use (the repro band notes
parsers as a bottleneck -- ours handle the scaled suite in well under a
second per testcase).
"""

from repro.lefdef.lef_writer import write_lef
from repro.lefdef.lef_parser import parse_lef
from repro.lefdef.def_writer import write_def
from repro.lefdef.def_parser import parse_def
from repro.lefdef.def_routing import parse_routed_def, write_routed_def

__all__ = [
    "write_lef",
    "parse_lef",
    "write_def",
    "parse_def",
    "write_routed_def",
    "parse_routed_def",
]
