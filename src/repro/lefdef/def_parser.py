"""DEF 5.8 parser (the subset :mod:`repro.lefdef.def_writer` emits)."""

from __future__ import annotations

from repro.db.design import Design, Row
from repro.db.inst import Instance
from repro.db.net import IOPin, Net
from repro.db.tracks import TrackPattern
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.transform import Orientation
from repro.tech.layer import RoutingDirection
from repro.tech.technology import Technology


class DefParseError(ValueError):
    """Raised on malformed DEF input."""


def parse_def(text: str, tech: Technology, masters: list) -> Design:
    """Parse DEF text into a :class:`Design`.

    ``masters`` supplies the cell library (e.g. from
    :func:`repro.lefdef.parse_lef`).
    """
    parser = _DefParser(text, tech, masters)
    return parser.run()


class _DefParser:
    def __init__(self, text: str, tech: Technology, masters: list):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.tech = tech
        self.masters = {m.name: m for m in masters}
        self.design = None

    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise DefParseError("unexpected end of DEF")
        self.pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise DefParseError(f"expected {token!r}, got {got!r}")

    def _skip_statement(self) -> None:
        while self._next() != ";":
            pass

    def run(self) -> Design:
        design_name = "design"
        dbu = self.tech.dbu_per_micron
        pending = []
        while (token := self._peek()) is not None:
            if token == "DESIGN":
                self._next()
                design_name = self._next()
                self._expect(";")
            elif token == "UNITS":
                self._next()
                self._expect("DISTANCE")
                self._expect("MICRONS")
                dbu = int(self._next())
                self._expect(";")
            elif token == "DIEAREA":
                pending.append(("diearea", self._parse_diearea()))
            elif token == "ROW":
                pending.append(("row", self._parse_row()))
            elif token == "TRACKS":
                pending.append(("tracks", self._parse_tracks()))
            elif token == "COMPONENTS":
                pending.append(("components", self._parse_components()))
            elif token == "PINS":
                pending.append(("pins", self._parse_pins()))
            elif token == "NETS":
                pending.append(("nets", self._parse_nets()))
            elif token == "END":
                self._next()
                if self._peek() == "DESIGN":
                    self._next()
                    break
            else:
                self._next()
                if token in ("VERSION", "DIVIDERCHAR", "BUSBITCHARS"):
                    self._skip_statement()
        if dbu != self.tech.dbu_per_micron:
            raise DefParseError(
                f"DEF DBU {dbu} != technology DBU {self.tech.dbu_per_micron}"
            )
        return self._build(design_name, pending)

    def _build(self, design_name, pending) -> Design:
        design = Design(name=design_name, tech=self.tech)
        for master in self.masters.values():
            design.add_master(master)
        io_nets = {}
        for kind, payload in pending:
            if kind == "diearea":
                design.die_area = payload
            elif kind == "row":
                design.add_row(payload)
            elif kind == "tracks":
                design.add_track_pattern(payload)
            elif kind == "components":
                for name, master_name, x, y, orient in payload:
                    master = self.masters.get(master_name)
                    if master is None:
                        raise DefParseError(f"unknown master {master_name}")
                    design.add_instance(
                        Instance(
                            name=name,
                            master=master,
                            location=Point(x, y),
                            orient=orient,
                        )
                    )
            elif kind == "pins":
                for pin, net_name in payload:
                    design.add_io_pin(pin)
                    io_nets[pin.name] = net_name
            elif kind == "nets":
                for net in payload:
                    design.add_net(net)
        # Attach IO pins whose NET property references a parsed net but
        # which the NETS section did not list explicitly.
        for io_name, net_name in io_nets.items():
            net = design.nets.get(net_name)
            if net is not None and io_name not in net.io_pins:
                net.add_io_pin(io_name)
        return design

    # -- sections -------------------------------------------------------------

    def _parse_diearea(self) -> Rect:
        self._expect("DIEAREA")
        self._expect("(")
        xlo = int(self._next())
        ylo = int(self._next())
        self._expect(")")
        self._expect("(")
        xhi = int(self._next())
        yhi = int(self._next())
        self._expect(")")
        self._expect(";")
        return Rect(xlo, ylo, xhi, yhi)

    def _parse_row(self) -> Row:
        self._expect("ROW")
        name = self._next()
        self._next()  # site name
        x = int(self._next())
        y = int(self._next())
        orient = Orientation.from_def_name(self._next())
        self._expect("DO")
        count = int(self._next())
        self._expect("BY")
        self._next()  # rows-in-y, always 1 here
        self._expect("STEP")
        step_x = int(self._next())
        self._next()  # step y
        self._expect(";")
        return Row(
            name=name,
            origin=Point(x, y),
            orient=orient,
            count=count,
            site_width=step_x,
            site_height=self.tech.site_height,
        )

    def _parse_tracks(self) -> TrackPattern:
        self._expect("TRACKS")
        axis = self._next()
        start = int(self._next())
        self._expect("DO")
        count = int(self._next())
        self._expect("STEP")
        step = int(self._next())
        self._expect("LAYER")
        layer_name = self._next()
        self._expect(";")
        direction = (
            RoutingDirection.HORIZONTAL
            if axis == "Y"
            else RoutingDirection.VERTICAL
        )
        return TrackPattern(
            layer_name=layer_name,
            direction=direction,
            start=start,
            step=step,
            count=count,
        )

    def _parse_components(self) -> list:
        self._expect("COMPONENTS")
        self._next()  # count
        self._expect(";")
        out = []
        while self._peek() == "-":
            self._next()
            name = self._next()
            master_name = self._next()
            x = y = 0
            orient = Orientation.R0
            while self._peek() != ";":
                token = self._next()
                if token == "+":
                    continue
                if token == "PLACED" or token == "FIXED":
                    self._expect("(")
                    x = int(self._next())
                    y = int(self._next())
                    self._expect(")")
                    orient = Orientation.from_def_name(self._next())
            self._expect(";")
            out.append((name, master_name, x, y, orient))
        self._expect("END")
        self._expect("COMPONENTS")
        return out

    def _parse_pins(self) -> list:
        self._expect("PINS")
        self._next()  # count
        self._expect(";")
        out = []
        while self._peek() == "-":
            self._next()
            name = self._next()
            net_name = None
            layer_name = None
            rect = None
            while self._peek() != ";":
                token = self._next()
                if token == "+":
                    continue
                if token == "NET":
                    net_name = self._next()
                elif token == "LAYER":
                    layer_name = self._next()
                    self._expect("(")
                    xlo = int(self._next())
                    ylo = int(self._next())
                    self._expect(")")
                    self._expect("(")
                    xhi = int(self._next())
                    yhi = int(self._next())
                    self._expect(")")
                    rect = Rect(xlo, ylo, xhi, yhi)
                elif token == "PLACED":
                    self._expect("(")
                    self._next()
                    self._next()
                    self._expect(")")
                    self._next()  # orientation
                elif token == "DIRECTION":
                    self._next()
            self._expect(";")
            if layer_name is None or rect is None:
                raise DefParseError(f"IO pin {name} missing LAYER/RECT")
            out.append(
                (IOPin(name=name, layer_name=layer_name, rect=rect), net_name)
            )
        self._expect("END")
        self._expect("PINS")
        return out

    def _parse_nets(self) -> list:
        self._expect("NETS")
        self._next()  # count
        self._expect(";")
        out = []
        while self._peek() == "-":
            self._next()
            net = Net(name=self._next())
            while self._peek() != ";":
                self._expect("(")
                first = self._next()
                second = self._next()
                self._expect(")")
                if first == "PIN":
                    net.add_io_pin(second)
                else:
                    net.add_term(first, second)
            self._expect(";")
            out.append(net)
        self._expect("END")
        self._expect("NETS")
        return out


def _tokenize(text: str) -> list:
    tokens = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        line = (
            line.replace(";", " ; ")
            .replace("(", " ( ")
            .replace(")", " ) ")
        )
        tokens.extend(line.split())
    return tokens
