"""LEF 5.8 writer (the subset the flow consumes)."""

from __future__ import annotations

from repro.db.master import CellMaster, PinUse
from repro.tech.technology import Technology


def write_lef(tech: Technology, masters: list = None) -> str:
    """Serialize a technology (and optional cell masters) to LEF text."""
    out = []
    dbu = tech.dbu_per_micron

    def um(value: int) -> str:
        return _fmt(value / dbu)

    out.append("VERSION 5.8 ;")
    out.append("BUSBITCHARS \"[]\" ;")
    out.append("DIVIDERCHAR \"/\" ;")
    out.append("UNITS")
    out.append(f"  DATABASE MICRONS {dbu} ;")
    out.append("END UNITS")
    out.append(f"MANUFACTURINGGRID {um(tech.manufacturing_grid)} ;")
    out.append("")
    if tech.site_width and tech.site_height:
        out.append(f"SITE {tech.site_name}")
        out.append("  CLASS CORE ;")
        out.append(f"  SIZE {um(tech.site_width)} BY {um(tech.site_height)} ;")
        out.append(f"END {tech.site_name}")
        out.append("")
    for layer in tech.layers:
        out.extend(_layer_lines(layer, um, dbu))
        out.append("")
    for via in tech.vias:
        out.append(f"VIA {via.name} DEFAULT")
        for layer_name, rect in (
            (via.bottom_layer, via.bottom_enc),
            (via.cut_layer, via.cut),
            (via.top_layer, via.top_enc),
        ):
            out.append(f"  LAYER {layer_name} ;")
            out.append(
                f"    RECT {um(rect.xlo)} {um(rect.ylo)} "
                f"{um(rect.xhi)} {um(rect.yhi)} ;"
            )
        out.append(f"END {via.name}")
        out.append("")
    for master in masters or []:
        out.extend(_macro_lines(master, um))
        out.append("")
    out.append("END LIBRARY")
    return "\n".join(out) + "\n"


def _layer_lines(layer, um, dbu) -> list:
    out = [f"LAYER {layer.name}"]
    out.append(f"  TYPE {layer.kind.value} ;")
    if layer.is_routing:
        out.append(f"  DIRECTION {layer.direction.value} ;")
        out.append(f"  PITCH {um(layer.pitch)} ;")
        out.append(f"  OFFSET {um(layer.offset)} ;")
        out.append(f"  WIDTH {um(layer.width)} ;")
        if layer.spacing_table is not None:
            table = layer.spacing_table
            prl = " ".join(um(v) for v in table.prl_values)
            out.append("  SPACINGTABLE")
            out.append(f"    PARALLELRUNLENGTH {prl}")
            for k, (width, spacings) in enumerate(table.width_rows):
                row = " ".join(um(s) for s in spacings)
                tail = " ;" if k == len(table.width_rows) - 1 else ""
                out.append(f"    WIDTH {um(width)} {row}{tail}")
        if layer.eol is not None:
            out.append(
                f"  SPACING {um(layer.eol.eol_space)} ENDOFLINE "
                f"{um(layer.eol.eol_width)} WITHIN "
                f"{um(layer.eol.eol_within)} ;"
            )
        if layer.min_step is not None:
            out.append(
                f"  MINSTEP {um(layer.min_step.min_step_length)} "
                f"MAXEDGES {layer.min_step.max_edges} ;"
            )
        if layer.min_area is not None:
            # AREA is in square microns.
            area = _fmt(layer.min_area.min_area / (dbu * dbu))
            out.append(f"  AREA {area} ;")
    if layer.is_cut and layer.cut_spacing is not None:
        out.append(f"  SPACING {um(layer.cut_spacing.spacing)} ;")
    out.append(f"END {layer.name}")
    return out


def _macro_lines(master: CellMaster, um) -> list:
    out = [f"MACRO {master.name}"]
    out.append(f"  CLASS {'BLOCK' if master.is_macro else 'CORE'} ;")
    out.append("  ORIGIN 0 0 ;")
    out.append(f"  SIZE {um(master.width)} BY {um(master.height)} ;")
    if master.site_name:
        out.append(f"  SITE {master.site_name} ;")
    for pin in master.pins:
        is_output = pin.name.startswith(("Z", "Q", "P"))
        direction = "OUTPUT" if is_output else "INPUT"
        if pin.use in (PinUse.POWER, PinUse.GROUND):
            direction = "INOUT"
        out.append(f"  PIN {pin.name}")
        out.append(f"    DIRECTION {direction} ;")
        out.append(f"    USE {pin.use.value} ;")
        out.append("    PORT")
        for layer_name in sorted(pin.shapes):
            out.append(f"      LAYER {layer_name} ;")
            for rect in pin.shapes[layer_name]:
                out.append(
                    f"        RECT {um(rect.xlo)} {um(rect.ylo)} "
                    f"{um(rect.xhi)} {um(rect.yhi)} ;"
                )
        out.append("    END")
        out.append(f"  END {pin.name}")
    if master.obstructions:
        out.append("  OBS")
        for obs in master.obstructions:
            out.append(f"    LAYER {obs.layer_name} ;")
            out.append(
                f"      RECT {um(obs.rect.xlo)} {um(obs.rect.ylo)} "
                f"{um(obs.rect.xhi)} {um(obs.rect.yhi)} ;"
            )
        out.append("  END")
    out.append(f"END {master.name}")
    return out


def _fmt(value: float) -> str:
    """Format a micron value without trailing zero noise."""
    text = f"{value:.6f}".rstrip("0").rstrip(".")
    return text if text else "0"
