"""Routed-net DEF I/O (``+ ROUTED`` wiring statements).

A detailed router's output is DEF regular wiring: per net, a list of
layer-tagged paths and via placements::

    - net_1 ( inst_1 ZN ) ( inst_2 A )
      + ROUTED M2 ( 1470 2030 ) ( 1470 3430 )
        NEW M3 ( 1470 3430 ) ( 2870 3430 )
        NEW M2 ( 1470 2030 ) V12_P ;

This module serializes a :class:`~repro.route.RoutingResult` into that
form and parses it back, so routed designs round-trip through text the
way contest evaluation flows consume them.
"""

from __future__ import annotations

from repro.db.design import Design
from repro.geom.rect import Rect
from repro.route.router import RoutingResult


def write_routed_def(design: Design, result: RoutingResult) -> str:
    """Serialize design + routing to DEF with ROUTED statements."""
    from repro.lefdef.def_writer import write_def

    base = write_def(design)
    lines = base.splitlines()
    wires_by_net = {}
    for net_name, layer_name, rect in result.wires:
        wires_by_net.setdefault(net_name, []).append((layer_name, rect))
    vias_by_net = {}
    for net_name, via_name, x, y in result.vias:
        vias_by_net.setdefault(net_name, []).append((via_name, x, y))

    out = []
    for line in lines:
        if line.startswith("- net_") or (
            line.startswith("- ") and _is_net_line(line, design)
        ):
            net_name = line.split()[1]
            statement = line.rstrip()
            assert statement.endswith(";")
            statement = statement[:-1].rstrip()
            routing = _routing_clause(
                design,
                wires_by_net.get(net_name, ()),
                vias_by_net.get(net_name, ()),
            )
            if routing:
                statement += "\n" + routing
            out.append(statement + " ;")
        else:
            out.append(line)
    return "\n".join(out) + "\n"


def _is_net_line(line: str, design: Design) -> bool:
    parts = line.split()
    return len(parts) > 1 and parts[1] in design.nets


def _routing_clause(design: Design, wires, vias) -> str:
    """Build the ``+ ROUTED ...`` clause for one net."""
    segments = []
    for layer_name, rect in wires:
        layer = design.tech.layer(layer_name)
        half = layer.width // 2
        if rect.width >= rect.height:
            y = (rect.ylo + rect.yhi) // 2
            points = f"( {rect.xlo + half} {y} ) ( {rect.xhi - half} {y} )"
        else:
            x = (rect.xlo + rect.xhi) // 2
            points = f"( {x} {rect.ylo + half} ) ( {x} {rect.yhi - half} )"
        segments.append(f"{layer_name} {points}")
    for via_name, x, y in vias:
        via = design.tech.via(via_name)
        segments.append(f"{via.bottom_layer} ( {x} {y} ) {via_name}")
    if not segments:
        return ""
    first, *rest = segments
    lines = [f"  + ROUTED {first}"]
    lines.extend(f"    NEW {seg}" for seg in rest)
    return "\n".join(lines)


def parse_routed_def(text: str, tech, masters) -> tuple:
    """Parse a routed DEF; returns ``(design, RoutingResult)``.

    The plain connectivity is parsed by :func:`repro.lefdef.parse_def`
    (ROUTED clauses are transparent to it); this function additionally
    reconstructs the wires and vias.
    """
    from repro.lefdef.def_parser import parse_def

    design = parse_def(_strip_routing(text), tech, masters)
    result = RoutingResult()
    for net_name, clauses in _routing_clauses(text):
        for clause in clauses:
            _decode_clause(design, net_name, clause, result)
    routed_nets = {net for net, _, _ in result.wires}
    result.routed_nets = len(routed_nets)
    return design, result


def _strip_routing(text: str) -> str:
    out = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("+ ROUTED") or stripped.startswith("NEW "):
            # Preserve the statement terminator if it rides this line.
            if stripped.endswith(";"):
                out.append(";")
            continue
        out.append(line)
    return "\n".join(out)


def _routing_clauses(text: str):
    """Yield (net name, [clause tokens...]) for each routed net."""
    current_net = None
    clauses = []
    in_nets = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("NETS "):
            in_nets = True
            continue
        if stripped.startswith("END NETS"):
            if current_net and clauses:
                yield current_net, clauses
            in_nets = False
            continue
        if not in_nets:
            continue
        if stripped.startswith("- "):
            if current_net and clauses:
                yield current_net, clauses
            current_net = stripped.split()[1]
            clauses = []
        elif stripped.startswith("+ ROUTED") or stripped.startswith("NEW "):
            clause = stripped.replace("+ ROUTED", "", 1)
            clause = clause.replace("NEW ", "", 1).rstrip(" ;")
            clauses.append(clause.split())
    if current_net and clauses:
        yield current_net, clauses


def _decode_clause(design, net_name, tokens, result) -> None:
    """Decode one routed clause back into a wire rect or a via."""
    layer_name = tokens[0]
    rest = tokens[1:]
    points = []
    via_name = None
    k = 0
    while k < len(rest):
        if rest[k] == "(":
            points.append((int(rest[k + 1]), int(rest[k + 2])))
            k += 4
        else:
            via_name = rest[k]
            k += 1
    if via_name is not None:
        x, y = points[0]
        result.vias.append((net_name, via_name, x, y))
        return
    (x1, y1), (x2, y2) = points
    layer = design.tech.layer(layer_name)
    half = layer.width // 2
    rect = Rect(
        min(x1, x2) - half,
        min(y1, y2) - half,
        max(x1, x2) + half,
        max(y1, y2) + half,
    )
    result.wires.append((net_name, layer_name, rect))
