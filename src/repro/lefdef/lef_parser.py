"""LEF 5.8 parser (the subset :mod:`repro.lefdef.lef_writer` emits)."""

from __future__ import annotations

from repro.db.master import CellMaster, MasterPin, Obstruction, PinUse
from repro.geom.rect import Rect
from repro.tech.layer import Layer, LayerKind, RoutingDirection
from repro.tech.rules import (
    CutSpacingRule,
    EolRule,
    MinAreaRule,
    MinStepRule,
    SpacingTable,
)
from repro.tech.technology import Technology
from repro.tech.via import ViaDef


class LefParseError(ValueError):
    """Raised on malformed LEF input."""


def parse_lef(text: str, name: str = "parsed") -> tuple:
    """Parse LEF text into ``(Technology, [CellMaster])``."""
    parser = _LefParser(text, name)
    parser.run()
    return parser.tech, parser.masters


class _LefParser:
    def __init__(self, text: str, name: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.name = name
        self.dbu = 1000
        self.tech = None
        self.masters = []
        self._pending_layers = []
        self._pending_vias = []
        self._site = (None, 0, 0)
        self._grid = 1

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise LefParseError("unexpected end of LEF")
        self.pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise LefParseError(f"expected {token!r}, got {got!r}")

    def _skip_statement(self) -> None:
        """Consume tokens through the next ';'."""
        while self._next() != ";":
            pass

    def _dbu_of(self, text: str) -> int:
        return round(float(text) * self.dbu)

    # -- driver ---------------------------------------------------------------

    def run(self) -> None:
        while (token := self._peek()) is not None:
            if token == "UNITS":
                self._parse_units()
            elif token == "MANUFACTURINGGRID":
                self._next()
                self._grid = self._dbu_of(self._next())
                self._expect(";")
            elif token == "SITE":
                self._parse_site()
            elif token == "LAYER":
                self._parse_layer()
            elif token == "VIA":
                self._parse_via()
            elif token == "MACRO":
                self._parse_macro()
            elif token == "END":
                self._next()
                nxt = self._peek()
                if nxt == "LIBRARY":
                    self._next()
                    break
            else:
                self._next()
                if self._peek_is_statement_tail(token):
                    self._skip_statement()
        self._finalize()

    def _peek_is_statement_tail(self, token: str) -> bool:
        return token in ("VERSION", "BUSBITCHARS", "DIVIDERCHAR")

    def _finalize(self) -> None:
        site_name, site_w, site_h = self._site
        self.tech = Technology(
            name=self.name,
            dbu_per_micron=self.dbu,
            site_name=site_name or "site",
            site_width=site_w,
            site_height=site_h,
            manufacturing_grid=self._grid,
        )
        for layer in self._pending_layers:
            self.tech.add_layer(layer)
        for via in self._pending_vias:
            self.tech.add_via(via)
        for master in self.masters:
            master.site_name = master.site_name or site_name or ""

    # -- sections -------------------------------------------------------------

    def _parse_units(self) -> None:
        self._expect("UNITS")
        while self._peek() != "END":
            if self._next() == "DATABASE":
                self._expect("MICRONS")
                self.dbu = int(self._next())
                self._expect(";")
        self._expect("END")
        self._expect("UNITS")

    def _parse_site(self) -> None:
        self._expect("SITE")
        name = self._next()
        width = height = 0
        while self._peek() != "END":
            token = self._next()
            if token == "SIZE":
                width = self._dbu_of(self._next())
                self._expect("BY")
                height = self._dbu_of(self._next())
                self._expect(";")
            elif token == "CLASS":
                self._skip_statement()
        self._expect("END")
        self._expect(name)
        self._site = (name, width, height)

    def _parse_layer(self) -> None:
        self._expect("LAYER")
        name = self._next()
        layer = Layer(name=name, kind=LayerKind.ROUTING)
        while self._peek() != "END":
            token = self._next()
            if token == "TYPE":
                layer.kind = LayerKind(self._next())
                self._expect(";")
            elif token == "DIRECTION":
                layer.direction = RoutingDirection(self._next())
                self._expect(";")
            elif token == "PITCH":
                layer.pitch = self._dbu_of(self._next())
                self._expect(";")
            elif token == "OFFSET":
                layer.offset = self._dbu_of(self._next())
                self._expect(";")
            elif token == "WIDTH":
                layer.width = self._dbu_of(self._next())
                self._expect(";")
            elif token == "SPACINGTABLE":
                layer.spacing_table = self._parse_spacing_table()
            elif token == "SPACING":
                value = self._dbu_of(self._next())
                if self._peek() == "ENDOFLINE":
                    self._next()
                    eol_width = self._dbu_of(self._next())
                    self._expect("WITHIN")
                    eol_within = self._dbu_of(self._next())
                    self._expect(";")
                    layer.eol = EolRule(
                        eol_space=value,
                        eol_width=eol_width,
                        eol_within=eol_within,
                    )
                else:
                    self._expect(";")
                    layer.cut_spacing = CutSpacingRule(spacing=value)
            elif token == "MINSTEP":
                length = self._dbu_of(self._next())
                max_edges = 0
                if self._peek() == "MAXEDGES":
                    self._next()
                    max_edges = int(self._next())
                self._expect(";")
                layer.min_step = MinStepRule(
                    min_step_length=length, max_edges=max_edges
                )
            elif token == "AREA":
                area = round(float(self._next()) * self.dbu * self.dbu)
                self._expect(";")
                layer.min_area = MinAreaRule(min_area=area)
            else:
                self._skip_statement()
        self._expect("END")
        self._expect(name)
        self._pending_layers.append(layer)

    def _parse_spacing_table(self) -> SpacingTable:
        self._expect("PARALLELRUNLENGTH")
        prl_values = []
        while _is_number(self._peek()):
            prl_values.append(self._dbu_of(self._next()))
        width_rows = []
        done = False
        while self._peek() == "WIDTH" and not done:
            self._next()
            width = self._dbu_of(self._next())
            spacings = []
            while _is_number(self._peek()):
                spacings.append(self._dbu_of(self._next()))
            if self._peek() == ";":
                self._next()
                done = True
            width_rows.append((width, spacings))
        return SpacingTable(prl_values=prl_values, width_rows=width_rows)

    def _parse_via(self) -> None:
        self._expect("VIA")
        name = self._next()
        if self._peek() == "DEFAULT":
            self._next()
        shapes = []  # (layer_name, rect)
        current_layer = None
        while self._peek() != "END":
            token = self._next()
            if token == "LAYER":
                current_layer = self._next()
                self._expect(";")
            elif token == "RECT":
                rect = self._parse_rect_um()
                shapes.append((current_layer, rect))
            else:
                self._skip_statement()
        self._expect("END")
        self._expect(name)
        if len(shapes) != 3:
            raise LefParseError(f"via {name} must have exactly 3 shapes")
        self._pending_vias.append(
            ViaDef(
                name=name,
                bottom_layer=shapes[0][0],
                cut_layer=shapes[1][0],
                top_layer=shapes[2][0],
                bottom_enc=shapes[0][1],
                cut=shapes[1][1],
                top_enc=shapes[2][1],
            )
        )

    def _parse_rect_um(self) -> Rect:
        xlo = self._dbu_of(self._next())
        ylo = self._dbu_of(self._next())
        xhi = self._dbu_of(self._next())
        yhi = self._dbu_of(self._next())
        self._expect(";")
        return Rect(xlo, ylo, xhi, yhi)

    def _parse_macro(self) -> None:
        self._expect("MACRO")
        name = self._next()
        master = CellMaster(name=name, width=0, height=0)
        while self._peek() != "END" or self.tokens[self.pos + 1] != name:
            token = self._next()
            if token == "CLASS":
                master.is_macro = self._next() == "BLOCK"
                self._expect(";")
            elif token == "SIZE":
                master.width = self._dbu_of(self._next())
                self._expect("BY")
                master.height = self._dbu_of(self._next())
                self._expect(";")
            elif token == "SITE":
                master.site_name = self._next()
                self._expect(";")
            elif token == "ORIGIN":
                self._skip_statement()
            elif token == "PIN":
                master.add_pin(self._parse_pin())
            elif token == "OBS":
                self._parse_obs(master)
            else:
                self._skip_statement()
        self._expect("END")
        self._expect(name)
        self.masters.append(master)

    def _parse_pin(self) -> MasterPin:
        name = self._next()
        pin = MasterPin(name=name)
        while self._peek() != "END" or self.tokens[self.pos + 1] != name:
            token = self._next()
            if token == "USE":
                pin.use = PinUse(self._next())
                self._expect(";")
            elif token == "DIRECTION":
                self._skip_statement()
            elif token == "PORT":
                current_layer = None
                while self._peek() != "END":
                    inner = self._next()
                    if inner == "LAYER":
                        current_layer = self._next()
                        self._expect(";")
                    elif inner == "RECT":
                        pin.add_shape(current_layer, self._parse_rect_um())
                    else:
                        self._skip_statement()
                self._expect("END")
        self._expect("END")
        self._expect(name)
        return pin

    def _parse_obs(self, master: CellMaster) -> None:
        current_layer = None
        while self._peek() != "END":
            token = self._next()
            if token == "LAYER":
                current_layer = self._next()
                self._expect(";")
            elif token == "RECT":
                rect = self._parse_rect_um()
                master.add_obstruction(
                    Obstruction(layer_name=current_layer, rect=rect)
                )
            else:
                self._skip_statement()
        self._expect("END")


def _tokenize(text: str) -> list:
    tokens = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        for part in line.replace(";", " ; ").split():
            tokens.append(part)
    return tokens


def _is_number(token: str) -> bool:
    if token is None:
        return False
    try:
        float(token)
    except ValueError:
        return False
    return True
