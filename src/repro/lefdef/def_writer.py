"""DEF 5.8 writer (the subset the flow consumes)."""

from __future__ import annotations

from repro.db.design import Design
from repro.tech.layer import RoutingDirection


def write_def(design: Design) -> str:
    """Serialize a design's placement and connectivity to DEF text."""
    out = []
    die = design.die_area
    out.append("VERSION 5.8 ;")
    out.append("DIVIDERCHAR \"/\" ;")
    out.append("BUSBITCHARS \"[]\" ;")
    out.append(f"DESIGN {design.name} ;")
    out.append(f"UNITS DISTANCE MICRONS {design.tech.dbu_per_micron} ;")
    out.append(
        f"DIEAREA ( {die.xlo} {die.ylo} ) ( {die.xhi} {die.yhi} ) ;"
    )
    out.append("")
    for row in design.rows:
        out.append(
            f"ROW {row.name} {design.tech.site_name} "
            f"{row.origin.x} {row.origin.y} {row.orient.def_name} "
            f"DO {row.count} BY 1 STEP {row.site_width} 0 ;"
        )
    out.append("")
    for pattern in design.track_patterns:
        axis = (
            "Y"
            if pattern.direction is RoutingDirection.HORIZONTAL
            else "X"
        )
        out.append(
            f"TRACKS {axis} {pattern.start} DO {pattern.count} "
            f"STEP {pattern.step} LAYER {pattern.layer_name} ;"
        )
    out.append("")
    out.append(f"COMPONENTS {len(design.instances)} ;")
    for inst in design.instances.values():
        status = "FIXED" if inst.master.is_macro else "PLACED"
        out.append(
            f"- {inst.name} {inst.master.name} + {status} "
            f"( {inst.location.x} {inst.location.y} ) "
            f"{inst.orient.def_name} ;"
        )
    out.append("END COMPONENTS")
    out.append("")
    out.append(f"PINS {len(design.io_pins)} ;")
    net_of_io = {}
    for net in design.nets.values():
        for io_name in net.io_pins:
            net_of_io[io_name] = net.name
    for pin in design.io_pins.values():
        rect = pin.rect
        net_name = net_of_io.get(pin.name, pin.name)
        out.append(
            f"- {pin.name} + NET {net_name} + DIRECTION INPUT "
            f"+ LAYER {pin.layer_name} "
            f"( {rect.xlo} {rect.ylo} ) ( {rect.xhi} {rect.yhi} ) "
            f"+ PLACED ( 0 0 ) N ;"
        )
    out.append("END PINS")
    out.append("")
    out.append(f"NETS {len(design.nets)} ;")
    for net in design.nets.values():
        terms = []
        for inst_name, pin_name in net.terms:
            terms.append(f"( {inst_name} {pin_name} )")
        for io_name in net.io_pins:
            terms.append(f"( PIN {io_name} )")
        out.append(f"- {net.name} {' '.join(terms)} ;")
    out.append("END NETS")
    out.append("")
    out.append("END DESIGN")
    return "\n".join(out) + "\n"
