"""Synthetic benchmark suite generation.

The paper evaluates on the ISPD-2018 initial detailed routing contest
suite (proprietary-derived industrial designs) and, for Experiment 3's
preliminary study, a commercial 14 nm library with an OpenCores AES
netlist.  Neither is redistributable, so this package generates
*structurally equivalent* synthetic designs: same per-testcase cell /
macro / net / IO-pin counts (scaled), same technology nodes and layer
counts, standard-cell libraries whose pin shapes span the full
coordinate-type ladder (on-track through enclosure-boundary access),
and row/track structure that reproduces the unique-instance diversity
mechanism (site-to-track misalignment).

Everything is seeded and deterministic.
"""

from repro.bench.stdcells import StdCellLibrary, build_library
from repro.bench.netlist import NetlistBuilder
from repro.bench.ispd18 import ISPD18_TESTCASES, TestcaseSpec, build_testcase
from repro.bench.aes14 import AES14_SPEC, build_aes14
from repro.bench.pinzoo import PINZOO_CASES, build_pinzoo


def build_case(name: str, scale: float = 1.0):
    """Build any named benchmark case: ispd18, aes14 or pin zoo.

    One dispatch point so the qa goldens, the sweep runner and the
    comparator all accept the same case names.
    """
    if name in PINZOO_CASES:
        return build_pinzoo(name, scale=scale)
    if name == AES14_SPEC.name:
        return build_aes14(scale=scale)
    return build_testcase(name, scale=scale)


__all__ = [
    "StdCellLibrary",
    "build_library",
    "NetlistBuilder",
    "ISPD18_TESTCASES",
    "TestcaseSpec",
    "build_testcase",
    "build_aes14",
    "AES14_SPEC",
    "PINZOO_CASES",
    "build_pinzoo",
    "build_case",
]
