"""Synthetic standard-cell library generator.

Cells are single-height with M1 power rails top and bottom and M1
signal pins laid out on *slots* spaced 1.5 metal pitches apart, which
keeps intra-cell vias pairwise legal while leaving the boundary pins
close enough to the cell edges that abutting instances can conflict --
the inter-cell tension Steps 2 and 3 of the paper exist to resolve.

Pin shapes cycle through archetypes chosen to span the coordinate-type
ladder:

* ``vbar``   -- narrow vertical bar: x access often needs shape-center.
* ``hthin``  -- bar of exactly via-enclosure height: only the centered
  y position is min-step clean.
* ``hmid``   -- slightly taller bar: on/half-track y usually dirty,
  shape-center / enclosure-boundary clean (paper Figure 3).
* ``htall``  -- two-width-tall bar: some track position always works.
* ``lshape`` -- L of a vbar and an hthin foot.
* ``tshape`` -- T of an htall crossed by a vbar.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.master import CellMaster, MasterPin, Obstruction, PinUse
from repro.geom.rect import Rect
from repro.tech.technology import Technology

ARCHETYPES = ("vbar", "hthin", "hmid", "htall", "lshape", "tshape")

# (base name, number of input pins, height in rows); double-height
# cells are the paper's future-work item (i), supported here.
_MULTI_HEIGHT_MENU = [
    ("DFFH", 3),
    ("SDFFH", 5),
    ("BUFH", 1),
]

# (base name, number of input pins); every cell also gets one output.
_CELL_MENU = [
    ("INV", 1),
    ("BUF", 1),
    ("NAND2", 2),
    ("NOR2", 2),
    ("AND2", 2),
    ("OR2", 2),
    ("XOR2", 2),
    ("XNOR2", 2),
    ("NAND3", 3),
    ("NOR3", 3),
    ("AOI21", 3),
    ("OAI21", 3),
    ("MUX2", 3),
    ("AOI22", 4),
    ("OAI22", 4),
    ("DFF", 3),
    ("SDFF", 5),
]
_DRIVES = ("X1", "X2", "X4")


@dataclass
class StdCellLibrary:
    """A generated library bound to one technology."""

    tech: Technology
    masters: list = field(default_factory=list)
    macros: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {m.name: m for m in self.masters + self.macros}

    def master(self, name: str) -> CellMaster:
        """Return the master named ``name``."""
        return self._by_name[name]

    def all_masters(self) -> list:
        """Return standard cells then macros."""
        return self.masters + self.macros


def build_library(
    tech: Technology,
    seed: int = 1,
    num_masters: int = None,
    num_macros: int = 1,
    multi_height: bool = False,
) -> StdCellLibrary:
    """Generate a deterministic library for ``tech``.

    ``num_masters`` defaults to the full menu x drive strengths
    (51 cells); macros are added for the testcases that need them.
    With ``multi_height`` on, three double-height masters (``*_2H``)
    join the library -- the advanced-node cells the paper lists as
    future work.
    """
    masters = []
    for base, num_inputs in _CELL_MENU:
        for drive in _DRIVES:
            name = f"{base}_{drive}"
            masters.append(
                _build_std_master(tech, name, num_inputs, seed)
            )
    if num_masters is not None:
        masters = masters[:num_masters]
    if multi_height:
        for base, num_inputs in _MULTI_HEIGHT_MENU:
            masters.append(
                _build_std_master(
                    tech, f"{base}_2H", num_inputs, seed, heights=2
                )
            )
    macros = [
        _build_macro_master(tech, f"MACRO_{i + 1}", seed + i)
        for i in range(num_macros)
    ]
    return StdCellLibrary(tech=tech, masters=masters, macros=macros)


# -- standard cells ----------------------------------------------------------


def _build_std_master(
    tech: Technology, name: str, num_inputs: int, seed: int, heights: int = 1
) -> CellMaster:
    rng = random.Random(f"{tech.name}:{name}:{seed}")
    m1 = tech.layer("M1")
    p = m1.pitch
    w = m1.width
    site = tech.site_width
    height = heights * tech.site_height

    # Edge margin: abutting cells' pin *shapes* must be mutually clean
    # (gap 2*margin covers both spacing and EOL), while vias near the
    # boundary may still conflict with the neighbor's shapes or vias --
    # that residual tension is exactly what Steps 2/3 resolve.  Real
    # libraries satisfy the same shape-level property by construction.
    eol_space = m1.eol.eol_space if m1.eol else m1.min_spacing
    margin = _snap(eol_space // 2 + 5, 10)

    # Slot spacing keeps adjacent pin shapes (up to one pitch of
    # half-width each) spacing- and EOL-clean against each other, while
    # leaving adjacent *vias* able to conflict for the DP to resolve.
    slot = _snap(2 * p + eol_space + 10, 10)
    num_pins = num_inputs + 1
    span = 2 * (margin + p) + (num_pins - 1) * slot
    width = -(-span // site) * site       # ceil to whole sites
    # Spread: boundary pins hug the margins (their access points sit
    # near the cell edge), interior pins evenly between.
    if num_pins == 1:
        xs = [width // 2]
    else:
        first = margin + p
        last = width - margin - p
        xs = [
            first + _snap(i * (last - first) / (num_pins - 1), 10)
            for i in range(num_pins)
        ]

    master = CellMaster(
        name=name, width=width, height=height, site_name=tech.site_name
    )
    _add_rails(master, tech, width, height, heights)

    input_names = [
        f"A{i + 1}" if num_inputs > 1 else "A" for i in range(num_inputs)
    ]
    if name.startswith(("DFF", "SDFF")):
        input_names = ["D", "CK", "SI", "SE", "RN"][:num_inputs]
    pin_names = input_names + ["ZN"]
    y_levels = _y_levels(tech, rng, heights)
    wide_archetypes = ("hthin", "hmid", "htall", "tshape")
    for idx, (pin_name, xc) in enumerate(zip(pin_names, xs)):
        if idx in (0, num_pins - 1):
            # Boundary pins always get a wide (two-track) archetype so
            # their access points offer x alternatives -- the property
            # Step 3 needs to resolve abutment conflicts, and one real
            # libraries provide on cells meant to abut.
            archetype = wide_archetypes[rng.randrange(len(wide_archetypes))]
        else:
            archetype = ARCHETYPES[rng.randrange(len(ARCHETYPES))]
        yc = y_levels[idx % len(y_levels)]
        pin = MasterPin(name=pin_name, use=PinUse.SIGNAL)
        for rect in _pin_shape(
            tech, archetype, xc, yc, width, height, margin, heights
        ):
            pin.add_shape("M1", rect)
        master.add_pin(pin)
    return master


def _add_rails(
    master: CellMaster, tech: Technology, width: int, height: int,
    heights: int = 1,
) -> None:
    """Add alternating VSS/VDD M1 rails at every row boundary.

    Single-height: VSS at the bottom, VDD at the top.  A 2x-height
    cell placed on an R0 (VSS-down) row sees VSS-VDD-VSS, which is why
    double-height cells only legally start on even rows.
    """
    w = tech.layer("M1").width
    site_h = height // heights
    vss = MasterPin(name="VSS", use=PinUse.GROUND)
    vdd = MasterPin(name="VDD", use=PinUse.POWER)
    for level in range(heights + 1):
        y = level * site_h
        rail = vss if level % 2 == 0 else vdd
        if level == 0:
            rect = Rect(0, 0, width, 2 * w)
        elif level == heights:
            rect = Rect(0, height - 2 * w, width, height)
        else:
            rect = Rect(0, y - w, width, y + w)
        rail.add_shape("M1", rect)
    master.add_pin(vss)
    master.add_pin(vdd)


def _y_levels(tech: Technology, rng: random.Random, heights: int = 1) -> list:
    """Return shuffled candidate pin-center y levels inside the cell.

    Multi-height cells get levels in every row band, each band keeping
    clear of its bounding rails (including the mid-cell rail).
    """
    p = tech.layer("M1").pitch
    w = tech.layer("M1").width
    height = tech.site_height
    lo = 3 * w + p // 2
    hi = height - 3 * w - p // 2
    levels = []
    for band in range(heights):
        y = lo
        while y <= hi:
            levels.append(band * height + _snap(y, 10))
            y += p // 2 + 10
    rng.shuffle(levels)
    return levels or [heights * height // 2]


def _pin_shape(
    tech: Technology,
    archetype: str,
    xc: int,
    yc: int,
    width: int,
    height: int,
    margin: int,
    heights: int = 1,
) -> list:
    """Return the rect list for one pin archetype centered near (xc, yc).

    All rects are clamped into ``[margin, width - margin]`` in x so no
    via enclosure dropped on the pin can leak closer than half a
    spacing to the cell edge.
    """
    m1 = tech.layer("M1")
    p, w = m1.pitch, m1.width
    half_w = w // 2
    yc = _clamp_y(tech, yc, archetype, heights)
    if archetype == "vbar":
        rects = [
            Rect(xc - half_w, yc - 3 * p // 2, xc + half_w, yc + 3 * p // 2)
        ]
    elif archetype == "hthin":
        rects = [Rect(xc - p, yc - half_w, xc + p, yc + half_w)]
    elif archetype == "hmid":
        h = _snap(w + p // 5, 10)
        rects = [Rect(xc - p, yc - h // 2, xc + p, yc - h // 2 + h)]
    elif archetype == "htall":
        rects = [Rect(xc - p, yc - w, xc + p, yc + w)]
    elif archetype == "lshape":
        rects = [
            Rect(xc - half_w, yc - 3 * p // 2, xc + half_w, yc + 3 * p // 2),
            Rect(xc - p, yc - 3 * p // 2, xc + p, yc - 3 * p // 2 + w),
        ]
    elif archetype == "tshape":
        rects = [
            Rect(xc - p, yc - w, xc + p, yc + w),
            Rect(xc - half_w, yc - w, xc + half_w, yc + 3 * p // 2),
        ]
    else:
        raise ValueError(f"unknown archetype {archetype!r}")
    return [_clamp_x(r, margin, width - margin, w) for r in rects]


def _clamp_x(rect: Rect, lo: int, hi: int, min_width: int) -> Rect:
    """Clamp a rect's x span into [lo, hi], keeping at least min_width."""
    xlo = max(rect.xlo, lo)
    xhi = min(rect.xhi, hi)
    if xhi - xlo < min_width:
        center = max(
            lo + min_width // 2, min((xlo + xhi) // 2, hi - min_width // 2)
        )
        xlo = center - min_width // 2
        xhi = xlo + min_width
    return Rect(xlo, rect.ylo, xhi, rect.yhi)


def _clamp_y(
    tech: Technology, yc: int, archetype: str, heights: int = 1
) -> int:
    """Keep the pin extent inside the signal region of its row band.

    Multi-height cells clamp per band, so shapes never touch the
    mid-cell power rail either.
    """
    p = tech.layer("M1").pitch
    w = tech.layer("M1").width
    height = tech.site_height
    if archetype in ("vbar", "lshape", "tshape"):
        extent = 3 * p // 2 + w
    else:
        extent = 2 * w
    lo = 2 * w + w + extent          # rail + spacing + half shape
    hi = height - lo
    band = max(0, min(heights - 1, yc // height))
    rel = yc - band * height
    return band * height + max(lo, min(hi, rel))


# -- macros ------------------------------------------------------------------


def _build_macro_master(tech: Technology, name: str, seed: int) -> CellMaster:
    """Build a block macro: M3 boundary pins, M1/M2 obstruction core."""
    rng = random.Random(f"{tech.name}:{name}:{seed}")
    m3 = tech.layer("M3")
    p = m3.pitch
    w = m3.width
    width = 40 * tech.site_width
    height = 8 * tech.site_height
    master = CellMaster(
        name=name, width=width, height=height, is_macro=True
    )
    num_pins = 8 + rng.randrange(5)
    for i in range(num_pins):
        yc = _snap(height // (num_pins + 1) * (i + 1), 10)
        pin = MasterPin(name=f"P{i + 1}", use=PinUse.SIGNAL)
        pin.add_shape("M3", Rect(0, yc - w, 3 * p, yc + w))
        master.add_pin(pin)
    core_margin = 4 * p
    for layer_name in ("M1", "M2"):
        master.add_obstruction(
            Obstruction(
                layer_name=layer_name,
                rect=Rect(
                    core_margin,
                    core_margin,
                    width - core_margin,
                    height - core_margin,
                ),
            )
        )
    return master


def _snap(value, grid: int) -> int:
    """Snap to the manufacturing-friendly grid."""
    return int(round(value / grid)) * grid
