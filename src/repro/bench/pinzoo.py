"""The adversarial pin zoo: hostile inputs beyond friendly std cells.

The pin-access-checker literature (and the FakeRAM fork that exists
specifically to "fix pin access issue") shows that access oracles
break not on the average standard cell but on the zoo's edge cases.
Three deterministic case families, each a small self-contained design
the comparator (`repro compare`) routes through every access flow:

* ``pinzoo_sram``    -- SRAM/macro-style blocks: large multi-track
  pins on upper metal (M3 boundary pins spanning several horizontal
  tracks, M4 top pins spanning several vertical tracks), an M1/M2
  obstruction core, and a ring of standard cells wired to the macro.
* ``pinzoo_io``      -- off-grid and die-boundary IO pins: misaligned
  vertical tracks (1.2 x pitch) plus IO pins whose centers sit at
  odd offsets from every track, on all four die edges and both M2
  and M3.
* ``pinzoo_hostile`` -- deliberately hostile cells: a pin fully under
  an obstruction (no legal via anywhere -- the legacy screen still
  emits one), a single-AP sliver pin (only the shape-center ladder
  rung survives), and min-width L-shapes (min-step traps at the
  corner).

Everything is seeded and deterministic; ``scale`` multiplies the
population so the same families serve smoke tests and larger studies.
"""

from __future__ import annotations

import random

from repro.bench.netlist import NetlistBuilder
from repro.bench.stdcells import _add_rails, _snap
from repro.db.design import Design, Row
from repro.db.inst import Instance
from repro.db.master import CellMaster, MasterPin, Obstruction, PinUse
from repro.db.net import IOPin
from repro.db.tracks import TrackPattern
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.transform import Orientation
from repro.tech.nodes import make_node

#: The zoo's case families, in catalog order.
PINZOO_CASES = ("pinzoo_sram", "pinzoo_io", "pinzoo_hostile")


def build_pinzoo(name: str, scale: float = 1.0) -> Design:
    """Generate one pin-zoo design; ``scale`` multiplies the population."""
    repeat = max(1, round(scale))
    if name == "pinzoo_sram":
        return _build_sram(repeat)
    if name == "pinzoo_io":
        return _build_io(repeat)
    if name == "pinzoo_hostile":
        return _build_hostile(repeat)
    raise KeyError(f"no pin-zoo case named {name!r}")


# -- shared floorplan helpers -------------------------------------------------


def _floorplan(design: Design, rows: int, sites_per_row: int) -> None:
    """Lay out die area, core origin and placement rows."""
    tech = design.tech
    site_w, site_h = tech.site_width, tech.site_height
    core_inset = 4 * site_w
    design.die_area = Rect(
        0,
        0,
        sites_per_row * site_w + 2 * core_inset,
        rows * site_h + 2 * core_inset,
    )
    design.core_origin = Point(core_inset, core_inset)
    for r in range(rows):
        design.add_row(
            Row(
                name=f"row_{r}",
                origin=Point(core_inset, core_inset + r * site_h),
                orient=Orientation.R0 if r % 2 == 0 else Orientation.MX,
                count=sites_per_row,
                site_width=site_w,
                site_height=site_h,
            )
        )


def _add_tracks(design: Design, misaligned: bool = False) -> None:
    """One track pattern per routing layer (1.2x step when misaligned)."""
    tech = design.tech
    die = design.die_area
    for layer in tech.routing_layers():
        if layer.is_horizontal:
            step = layer.pitch
            start = die.ylo + layer.offset
            count = max(1, (die.yhi - start) // step + 1)
        else:
            step = layer.pitch
            if misaligned:
                step = layer.pitch + layer.pitch // 5
            start = die.xlo + layer.offset
            count = max(1, (die.xhi - start) // step + 1)
        design.add_track_pattern(
            TrackPattern(
                layer_name=layer.name,
                direction=layer.direction,
                start=start,
                step=step,
                count=count,
            )
        )


def _place_row_cells(
    design: Design, masters: list, rows: int, sites_per_row: int, gap: int = 2
) -> int:
    """Place ``masters`` round-robin across rows; return placed count."""
    tech = design.tech
    site_w, site_h = tech.site_width, tech.site_height
    core = design.core_origin
    placed = 0
    idx = 0
    for r in range(rows):
        orient = Orientation.R0 if r % 2 == 0 else Orientation.MX
        cursor = 0
        while idx < len(masters):
            master = masters[idx]
            width_sites = -(-master.width // site_w)
            if cursor + width_sites > sites_per_row:
                break
            design.add_instance(
                Instance(
                    name=f"inst_{placed + 1}",
                    master=master,
                    location=Point(
                        core.x + cursor * site_w, core.y + r * site_h
                    ),
                    orient=orient,
                )
            )
            placed += 1
            idx += 1
            cursor += width_sites + gap
        if idx >= len(masters):
            break
    return placed


# -- pinzoo_sram: macro-style multi-track pins on upper metal -----------------


def _sram_master(tech, name: str, seed: int) -> CellMaster:
    """An SRAM-like block: wide multi-track M3/M4 pins, blocked core."""
    rng = random.Random(f"{tech.name}:{name}:{seed}")
    m3 = tech.layer("M3")
    m4 = tech.layer("M4")
    p3, w3 = m3.pitch, m3.width
    p4, w4 = m4.pitch, m4.width
    width = 30 * tech.site_width
    height = 10 * tech.site_height
    master = CellMaster(name=name, width=width, height=height, is_macro=True)

    # Left-edge M3 pins: each spans three horizontal tracks in y (the
    # SRAM word/bit-line port shape FakeRAM emits) and reaches four
    # pitches into the core in x.
    num_side = 4 + rng.randrange(3)
    for i in range(num_side):
        yc = _snap(height * (i + 1) // (num_side + 1), 10)
        prefix = "P" if i % 2 == 0 else "D"
        pin = MasterPin(name=f"{prefix}{i + 1}", use=PinUse.SIGNAL)
        pin.add_shape(
            "M3", Rect(0, yc - 3 * p3 // 2, 4 * p3, yc + 3 * p3 // 2)
        )
        master.add_pin(pin)
    # Top-edge M4 pins: wide in x, spanning three vertical tracks.
    num_top = 3
    for i in range(num_top):
        xc = _snap(width * (i + 1) // (num_top + 1), 10)
        prefix = "Q" if i % 2 == 0 else "A"
        pin = MasterPin(name=f"{prefix}T{i + 1}", use=PinUse.SIGNAL)
        pin.add_shape(
            "M4",
            Rect(
                xc - 3 * p4 // 2,
                height - 4 * p4,
                xc + 3 * p4 // 2,
                height - 4 * p4 + 2 * w4,
            ),
        )
        master.add_pin(pin)
    # The core is opaque on the lower layers, as in a real hard macro.
    margin = 4 * p3
    for layer_name in ("M1", "M2"):
        master.add_obstruction(
            Obstruction(
                layer_name=layer_name,
                rect=Rect(
                    margin, margin, width - margin, height - margin
                ),
            )
        )
    # A partial M3 blockage strip hugs the pin edge -- the hostile
    # detail the FakeRAM pin-access fork exists to work around.
    master.add_obstruction(
        Obstruction(
            layer_name="M3",
            rect=Rect(5 * p3, margin, width - margin, height - margin),
        )
    )
    return master


def _build_sram(repeat: int) -> Design:
    from repro.bench.stdcells import build_library

    tech = make_node("N45")
    design = Design(name="pinzoo_sram", tech=tech)
    library = build_library(tech, seed=7, num_masters=8, num_macros=0)
    srams = [
        _sram_master(tech, f"SRAM_{i + 1}", seed=7 + i)
        for i in range(max(1, repeat))
    ]
    for master in library.masters + srams:
        design.add_master(master)

    site_w, site_h = tech.site_width, tech.site_height
    macro_rows = -(-srams[0].height // site_h)
    macro_sites = -(-srams[0].width // site_w)
    rows = macro_rows + 4
    sites_per_row = max(60, (macro_sites + 4) * len(srams))
    _floorplan(design, rows, sites_per_row)
    core = design.core_origin

    # Macros bottom-left, standard cells in the rows above them.
    for k, master in enumerate(srams):
        design.add_instance(
            Instance(
                name=f"sram_{k + 1}",
                master=master,
                location=Point(
                    core.x + k * (macro_sites + 4) * site_w, core.y
                ),
                orient=Orientation.R0,
            )
        )
    cells = [library.masters[i % len(library.masters)] for i in range(12)]
    tech_rows = rows - macro_rows
    placed = 0
    for r in range(tech_rows):
        row_index = macro_rows + r
        orient = Orientation.R0 if row_index % 2 == 0 else Orientation.MX
        cursor = 0
        for master in cells[placed:]:
            width_sites = -(-master.width // site_w)
            if cursor + width_sites > sites_per_row:
                break
            design.add_instance(
                Instance(
                    name=f"inst_{placed + 1}",
                    master=master,
                    location=Point(
                        core.x + cursor * site_w,
                        core.y + row_index * site_h,
                    ),
                    orient=orient,
                )
            )
            placed += 1
            cursor += width_sites + 2
        if placed >= len(cells):
            break
    _add_tracks(design)
    NetlistBuilder(design, seed=7).build(target_nets=None, num_io_pins=0)
    return design


# -- pinzoo_io: off-grid and die-boundary IO pins -----------------------------


def _build_io(repeat: int) -> Design:
    from repro.bench.stdcells import build_library

    tech = make_node("N45")
    design = Design(name="pinzoo_io", tech=tech)
    library = build_library(tech, seed=11, num_masters=10, num_macros=0)
    for master in library.masters:
        design.add_master(master)

    cells = [
        library.masters[i % len(library.masters)]
        for i in range(16 * max(1, repeat))
    ]
    rows = 4 * max(1, repeat)
    _floorplan(design, rows, sites_per_row=50)
    # Misaligned vertical tracks: site-to-track gear ratio 1.2, the
    # mechanism that makes on-track-only access starve (Figure 1).
    _add_tracks(design, misaligned=True)
    _place_row_cells(design, cells, rows, sites_per_row=50)
    NetlistBuilder(design, seed=11).build(target_nets=None, num_io_pins=0)

    nets = list(design.nets.values())
    if not nets:
        return design
    die = design.die_area
    m2 = tech.layer("M2")
    m3 = tech.layer("M3")
    w2, w3 = m2.width, m3.width
    # The off-grid offset: a prime step no track multiple ever hits.
    offsets = (7, 13, 23, 37)
    count = 0

    def _attach(pin: IOPin) -> None:
        nonlocal count
        design.add_io_pin(pin)
        nets[count % len(nets)].add_io_pin(pin.name)
        count += 1

    num_side = 3 * max(1, repeat)
    for i in range(num_side):
        # Left/right edges: M2 (vertical routing layer) pins whose y
        # centers sit off every horizontal track.
        y = (
            die.ylo
            + 4 * w2
            + (i * (die.height - 8 * w2)) // max(1, num_side)
            + offsets[i % len(offsets)]
        )
        _attach(
            IOPin(
                name=f"ioL_{i + 1}",
                layer_name="M2",
                rect=Rect(die.xlo, y - w2, die.xlo + 4 * w2, y + w2),
            )
        )
        _attach(
            IOPin(
                name=f"ioR_{i + 1}",
                layer_name="M2",
                rect=Rect(die.xhi - 4 * w2, y - w2, die.xhi, y + w2),
            )
        )
        # Top/bottom edges: M3 (horizontal layer) pins whose x centers
        # sit off every vertical track -- doubly so with the 1.2x
        # misaligned steps.
        x = (
            die.xlo
            + 4 * w3
            + (i * (die.width - 8 * w3)) // max(1, num_side)
            + offsets[(i + 1) % len(offsets)]
        )
        _attach(
            IOPin(
                name=f"ioB_{i + 1}",
                layer_name="M3",
                rect=Rect(x - w3, die.ylo, x + w3, die.ylo + 4 * w3),
            )
        )
        _attach(
            IOPin(
                name=f"ioT_{i + 1}",
                layer_name="M3",
                rect=Rect(x - w3, die.yhi - 4 * w3, x + w3, die.yhi),
            )
        )
    return design


# -- pinzoo_hostile: cells built to break access ------------------------------


def _hostile_masters(tech, seed: int) -> list:
    """The three hostile archetypes as single-height masters."""
    m1 = tech.layer("M1")
    p, w = m1.pitch, m1.width
    site = tech.site_width
    height = tech.site_height
    yc = _snap(height // 2, 10)
    masters = []

    def _master(name: str, num_sites: int) -> CellMaster:
        master = CellMaster(
            name=name,
            width=num_sites * site,
            height=height,
            site_name=tech.site_name,
        )
        _add_rails(master, tech, master.width, height)
        return master

    def _out_pin(master: CellMaster) -> None:
        # A friendly two-track output bar so the net itself can route;
        # only the hostile *input* pin is under test.
        xc = _snap(master.width - 2 * p, 10)
        pin = MasterPin(name="ZN", use=PinUse.SIGNAL)
        pin.add_shape("M1", Rect(xc - p, yc - w, xc + p, yc + w))
        master.add_pin(pin)

    # 1) COVERED: the input pin is fully under an M1 obstruction -- any
    #    via's bottom enclosure shorts or crowds the blockage, so no
    #    candidate is clean anywhere on the pin.  The legacy
    #    containment-only screen (pin + one obstruction = 2 overlapping
    #    shapes, within its tolerance) still accepts the point.
    covered = _master("HOSTILE_COVERED", 8)
    pin = MasterPin(name="A", use=PinUse.SIGNAL)
    xc = _snap(2 * p, 10)
    pin.add_shape("M1", Rect(xc - p, yc - w, xc + p, yc + w))
    covered.add_pin(pin)
    covered.add_obstruction(
        Obstruction(
            layer_name="M1",
            rect=Rect(xc - p - w, yc - 2 * w, xc + p + w, yc + 2 * w),
        )
    )
    _out_pin(covered)
    masters.append(covered)

    # 2) SLIVER: a bar of exactly via-enclosure height and barely more
    #    than via-enclosure width -- only the shape-center rung of the
    #    coordinate ladder survives min-step, and only just.
    sliver = _master("HOSTILE_SLIVER", 8)
    pin = MasterPin(name="A", use=PinUse.SIGNAL)
    xc = _snap(2 * p, 10)
    pin.add_shape(
        "M1", Rect(xc - p // 2, yc - w // 2, xc + p // 2, yc + w // 2)
    )
    sliver.add_pin(pin)
    _out_pin(sliver)
    masters.append(sliver)

    # 3) MINL: a min-width L -- both legs exactly one wire width, the
    #    inner corner a min-step trap for any via enclosure that pokes
    #    past it.
    minl = _master("HOSTILE_MINL", 8)
    pin = MasterPin(name="A", use=PinUse.SIGNAL)
    xc = _snap(2 * p, 10)
    pin.add_shape(
        "M1", Rect(xc - w // 2, yc - p, xc + w // 2, yc + p)
    )
    pin.add_shape(
        "M1", Rect(xc - w // 2, yc - p, xc + p + w // 2, yc - p + w)
    )
    minl.add_pin(pin)
    _out_pin(minl)
    masters.append(minl)
    return masters


def _build_hostile(repeat: int) -> Design:
    tech = make_node("N45")
    design = Design(name="pinzoo_hostile", tech=tech)
    hostile = _hostile_masters(tech, seed=3)
    for master in hostile:
        design.add_master(master)
    cells = [hostile[i % len(hostile)] for i in range(12 * max(1, repeat))]
    rows = 3 * max(1, repeat)
    _floorplan(design, rows, sites_per_row=48)
    _add_tracks(design)
    _place_row_cells(design, cells, rows, sites_per_row=48)
    NetlistBuilder(design, seed=3).build(target_nets=None, num_io_pins=0)
    return design
