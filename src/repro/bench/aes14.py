"""The 14 nm AES-like testcase (paper Experiment 3, Figure 9).

The paper's preliminary 14 nm study runs PAAF on the OpenCores AES
core mapped to a commercial 14 nm library: 20 K instances, 779 unique
instances, 57 K instance pins, DRC-clean access in ~9 s.  Neither the
library nor the mapped netlist is redistributable, so this module
generates a structurally matched stand-in on the N14 preset:
misaligned vertical tracks (14 nm-class gear ratios between site and
track grids) multiply unique instances, and off-track pin access is
exercised throughout -- the property Figure 9 illustrates.
"""

from __future__ import annotations

from repro.bench.ispd18 import TestcaseSpec, build_testcase


AES14_SPEC = TestcaseSpec(
    name="aes_14nm",
    node="N14",
    std_cells=20000,
    macros=0,
    nets=18000,
    io_pins=390,
    die_w_mm=0.12,
    die_h_mm=0.12,
    misaligned_tracks=True,
    seed=14,
)


def build_aes14(scale: float = 0.05):
    """Generate the scaled 14 nm AES-like design."""
    return build_testcase(AES14_SPEC, scale=scale)
