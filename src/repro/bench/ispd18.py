"""ISPD-2018-like testcase generation (paper Table I).

Each spec mirrors one row of Table I: standard cell / macro / net / IO
pin counts, technology node and die size.  ``build_testcase`` scales
the counts by a factor (default 1/100) because a pure-Python flow
cannot chew 290 K cells in reasonable time; the *structure* -- node,
layers, utilization, row/track geometry, unique-instance diversity --
is preserved.

The 32 nm testcases 4-6 are generated with vertical routing tracks
misaligned to the placement site grid (track step = 1.2 x site width),
which is the mechanism that multiplies unique instances in the real
suite (the paper's Figure 1); the other testcases use aligned tracks
and correspondingly few unique instances, matching the pattern of the
paper's Table II #Unique Inst column.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.netlist import NetlistBuilder
from repro.bench.stdcells import build_library
from repro.db.design import Design, Row
from repro.db.inst import Instance
from repro.db.tracks import TrackPattern
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.transform import Orientation
from repro.tech.nodes import make_node


@dataclass(frozen=True)
class TestcaseSpec:
    """One Table I row (full-scale counts)."""

    name: str
    node: str
    std_cells: int
    macros: int
    nets: int
    io_pins: int
    die_w_mm: float
    die_h_mm: float
    misaligned_tracks: bool = False
    seed: int = 2018


ISPD18_TESTCASES = [
    TestcaseSpec("ispd18_test1", "N45", 8879, 0, 3153, 0, 0.20, 0.19),
    TestcaseSpec("ispd18_test2", "N45", 35913, 0, 36834, 1211, 0.65, 0.57),
    TestcaseSpec("ispd18_test3", "N45", 35973, 4, 36700, 1211, 0.99, 0.70),
    TestcaseSpec(
        "ispd18_test4", "N32", 72094, 0, 72401, 1211, 0.89, 0.61, True
    ),
    TestcaseSpec(
        "ispd18_test5", "N32", 71954, 0, 72394, 1211, 0.93, 0.92, True
    ),
    TestcaseSpec(
        "ispd18_test6", "N32", 107919, 0, 107701, 1211, 0.86, 0.53, True
    ),
    TestcaseSpec("ispd18_test7", "N32", 179865, 16, 179863, 1211, 1.36, 1.33),
    TestcaseSpec("ispd18_test8", "N32", 191987, 16, 179863, 1211, 1.36, 1.33),
    TestcaseSpec("ispd18_test9", "N32", 192911, 0, 178857, 1211, 0.91, 0.78),
    TestcaseSpec("ispd18_test10", "N32", 290386, 0, 182000, 1211, 0.91, 0.87),
]

DEFAULT_SCALE = 0.01


def testcase_spec(name: str) -> TestcaseSpec:
    """Return the spec named ``name``."""
    for spec in ISPD18_TESTCASES:
        if spec.name == name:
            return spec
    raise KeyError(f"no testcase named {name!r}")


def build_testcase(
    spec,
    scale: float = DEFAULT_SCALE,
    utilization: float = 0.7,
    multi_height_fraction: float = 0.0,
) -> Design:
    """Generate the scaled synthetic design for ``spec``.

    ``spec`` may be a :class:`TestcaseSpec` or a testcase name.
    ``multi_height_fraction`` mixes that share of double-height cells
    into the population (the paper's future-work extension); they are
    placed on even rows and span two rows.
    """
    if isinstance(spec, str):
        spec = testcase_spec(spec)
    rng = random.Random(f"{spec.name}:{spec.seed}")
    tech = make_node(spec.node)
    num_std = max(20, round(spec.std_cells * scale))
    num_macros = spec.macros if spec.macros <= 4 else max(
        1, round(spec.macros * max(scale * 10, 0.25))
    )
    if spec.macros == 0:
        num_macros = 0
    num_io = max(4, round(spec.io_pins * scale)) if spec.io_pins else 0

    library = build_library(
        tech,
        seed=spec.seed,
        num_macros=max(num_macros, 1),
        multi_height=multi_height_fraction > 0,
    )
    design = Design(name=spec.name, tech=tech)
    for master in library.all_masters():
        design.add_master(master)

    _place(
        design, library, rng, num_std, num_macros, spec, utilization,
        multi_height_fraction,
    )
    _add_tracks(design, spec)
    NetlistBuilder(design, seed=spec.seed).build(
        target_nets=None, num_io_pins=num_io
    )
    return design


# -- placement ----------------------------------------------------------------


def _place(
    design, library, rng, num_std, num_macros, spec, utilization,
    multi_height_fraction=0.0,
):
    tech = design.tech
    site_w = tech.site_width
    site_h = tech.site_height

    # Pick the cell population up front so the die can be sized to it.
    single = [m for m in library.masters if m.height == site_h]
    double = [m for m in library.masters if m.height == 2 * site_h]
    weights = [1.0 / (i + 1) for i in range(len(single))]
    population = rng.choices(single, weights=weights, k=num_std)
    if double and multi_height_fraction > 0:
        num_double = max(1, round(num_std * multi_height_fraction))
        for idx in range(num_double):
            population[(idx * 7) % len(population)] = double[
                idx % len(double)
            ]
    total_sites = sum(
        -(-m.width // site_w) * (m.height // site_h) for m in population
    )

    aspect = spec.die_w_mm / spec.die_h_mm
    area_sites = total_sites / utilization
    # rows * sites_per_row = area_sites; sites_per_row * site_w /
    # (rows * site_h) = aspect.
    rows = max(2, round((area_sites * site_w / (aspect * site_h)) ** 0.5))
    sites_per_row = max(10, -(-int(area_sites) // rows))
    # Core-area inset: IO pins sit on the die boundary, so the cell
    # rows start a few sites in (like the core ring of a real floorplan).
    core_inset = 4 * site_w
    die = Rect(
        0,
        0,
        sites_per_row * site_w + 2 * core_inset,
        rows * site_h + 2 * core_inset,
    )
    design.die_area = die
    design.core_origin = Point(core_inset, core_inset)

    blocked = _place_macros(
        design, library, rng, num_macros, rows, sites_per_row, core_inset
    )

    for r in range(rows):
        orient = Orientation.R0 if r % 2 == 0 else Orientation.MX
        row = Row(
            name=f"row_{r}",
            origin=Point(core_inset, core_inset + r * site_h),
            orient=orient,
            count=sites_per_row,
            site_width=site_w,
            site_height=site_h,
        )
        design.add_row(row)

    idx = 0
    placed = 0
    for r in range(rows):
        if placed >= len(population):
            break
        orient = Orientation.R0 if r % 2 == 0 else Orientation.MX
        cursor = 0
        while cursor < sites_per_row and placed < len(population):
            if (r, cursor) in blocked:
                cursor += 1
                continue
            if rng.random() < 0.25:
                cursor += 1 + rng.randrange(3)
                continue
            master = population[placed]
            width_sites = -(-master.width // site_w)
            height_rows = master.height // site_h
            if cursor + width_sites > sites_per_row:
                break
            if any((r, cursor + s) in blocked for s in range(width_sites)):
                cursor += 1
                continue
            if height_rows > 1:
                # Double-height cells start on even (R0) rows so their
                # VSS-VDD-VSS rails line up, and reserve the row above.
                if r % 2 != 0 or r + height_rows > rows:
                    cursor += 1
                    continue
                if any(
                    (r + extra, cursor + s) in blocked
                    for extra in range(1, height_rows)
                    for s in range(width_sites)
                ):
                    cursor += 1
                    continue
            inst = Instance(
                name=f"inst_{placed + 1}",
                master=master,
                location=Point(
                    core_inset + cursor * site_w, core_inset + r * site_h
                ),
                orient=orient,
            )
            design.add_instance(inst)
            for extra in range(1, height_rows):
                for s in range(width_sites):
                    blocked.add((r + extra, cursor + s))
            placed += 1
            cursor += width_sites
    # If the die filled up before the population ran out, extend the
    # remaining cells into fresh rows above (rare with the default
    # utilization, but keeps counts exact).
    row_idx = rows
    while placed < len(population):
        orient = Orientation.R0 if row_idx % 2 == 0 else Orientation.MX
        cursor = 0
        progressed = False
        while cursor < sites_per_row and placed < len(population):
            master = population[placed]
            width_sites = -(-master.width // site_w)
            height_rows = master.height // site_h
            if cursor + width_sites > sites_per_row:
                break
            if any(
                (row_idx + extra, cursor + s) in blocked
                for extra in range(height_rows)
                for s in range(width_sites)
            ):
                cursor += 1
                continue
            if height_rows > 1 and row_idx % 2 != 0:
                # Double-height cells only start on even (R0) rows;
                # defer this cell by swapping it with the next
                # single-height one, if any.
                swap = next(
                    (
                        k
                        for k in range(placed + 1, len(population))
                        if population[k].height == site_h
                    ),
                    None,
                )
                if swap is None:
                    break
                population[placed], population[swap] = (
                    population[swap],
                    population[placed],
                )
                continue
            inst = Instance(
                name=f"inst_{placed + 1}",
                master=master,
                location=Point(
                    core_inset + cursor * site_w, core_inset + row_idx * site_h
                ),
                orient=orient,
            )
            design.add_instance(inst)
            for extra in range(1, height_rows):
                for s in range(width_sites):
                    blocked.add((row_idx + extra, cursor + s))
            placed += 1
            progressed = True
            cursor += width_sites + (1 if rng.random() < 0.25 else 0)
        if not progressed and cursor >= sites_per_row:
            pass
        row_idx += 1
    if row_idx > rows:
        design.die_area = Rect(
            0, 0, die.xhi, row_idx * site_h + 2 * core_inset
        )


def _place_macros(
    design, library, rng, num_macros, rows, sites_per_row, core_inset
) -> set:
    """Place macros bottom-left, returning the blocked (row, site) set."""
    blocked = set()
    if num_macros <= 0:
        return blocked
    tech = design.tech
    site_w, site_h = tech.site_width, tech.site_height
    macro_master = library.macros[0]
    mw_sites = -(-macro_master.width // site_w)
    mh_rows = -(-macro_master.height // site_h)
    cursor_row = 0
    cursor_site = 0
    for i in range(num_macros):
        if cursor_site + mw_sites > sites_per_row:
            cursor_site = 0
            cursor_row += mh_rows
        if cursor_row + mh_rows > rows:
            break
        inst = Instance(
            name=f"macro_{i + 1}",
            master=macro_master,
            location=Point(
                core_inset + cursor_site * site_w,
                core_inset + cursor_row * site_h,
            ),
            orient=Orientation.R0,
        )
        design.add_instance(inst)
        for r in range(cursor_row, cursor_row + mh_rows):
            for s in range(cursor_site, cursor_site + mw_sites):
                blocked.add((r, s))
        cursor_site += mw_sites + 2
    return blocked


# -- tracks -------------------------------------------------------------------


def _add_tracks(design: Design, spec) -> None:
    """Create one track pattern per routing layer.

    Vertical-layer track steps are stretched to 1.2x pitch for the
    misaligned testcases (the unique-instance diversity mechanism).
    """
    tech = design.tech
    die = design.die_area
    for layer in tech.routing_layers():
        if layer.is_horizontal:
            step = layer.pitch
            start = die.ylo + layer.offset
            count = max(1, (die.yhi - start) // step + 1)
        else:
            step = layer.pitch
            if spec.misaligned_tracks:
                step = layer.pitch + layer.pitch // 5
            start = die.xlo + layer.offset
            count = max(1, (die.xhi - start) // step + 1)
        design.add_track_pattern(
            TrackPattern(
                layer_name=layer.name,
                direction=layer.direction,
                start=start,
                step=step,
                count=count,
            )
        )
