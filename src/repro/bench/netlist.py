"""Netlist construction for generated designs.

Connects placed instances with locality: each cell's output pin drives
a handful of input pins of nearby cells (same or neighboring rows),
which is the connectivity pattern placement tools produce and the one
that matters for pin access (neighboring pins on distinct nets).
"""

from __future__ import annotations

import random

from repro.db.design import Design
from repro.db.net import IOPin, Net
from repro.geom.rect import Rect


class NetlistBuilder:
    """Builds nets and IO pins over an already-placed design."""

    def __init__(self, design: Design, seed: int = 1):
        self.design = design
        self.rng = random.Random(f"netlist:{design.name}:{seed}")

    def build(self, target_nets: int = None, num_io_pins: int = 0) -> None:
        """Create nets (and IO pins) on the design.

        Every signal output pin drives one net; each net picks 1-3
        nearby unclaimed input pins as sinks.  ``target_nets`` trims or
        keeps all output-driven nets; IO pins are attached round-robin
        to the first nets.
        """
        outputs, inputs = self._collect_terminals()
        input_pool = _SpatialPool(inputs)
        nets = []
        for inst, pin_name in outputs:
            if target_nets is not None and len(nets) >= target_nets:
                break
            net = Net(name=f"net_{len(nets) + 1}")
            net.add_term(inst.name, pin_name)
            fanout = 1 + self.rng.randrange(3)
            for sink in input_pool.claim_near(inst.bbox.center, fanout):
                net.add_term(sink[0].name, sink[1])
            nets.append(net)
        # Sweep leftover inputs into the existing nets so almost every
        # signal pin is connected, as in the contest testcases.
        leftovers = input_pool.remaining()
        for idx, (inst, pin_name) in enumerate(leftovers):
            if not nets:
                break
            nets[idx % len(nets)].add_term(inst.name, pin_name)
        for net in nets:
            self.design.add_net(net)
        self._add_io_pins(num_io_pins, nets)

    # -- internals ---------------------------------------------------------

    def _collect_terminals(self) -> tuple:
        outputs = []
        inputs = []
        for inst in self.design.instances.values():
            for pin in inst.master.signal_pins():
                if pin.name.startswith(("Z", "Q", "P")):
                    outputs.append((inst, pin.name))
                else:
                    inputs.append((inst, pin.name))
        return outputs, inputs

    def _add_io_pins(self, num_io_pins: int, nets: list) -> None:
        if num_io_pins <= 0 or not nets:
            return
        die = self.design.die_area
        tech = self.design.tech
        m2 = tech.layer("M2")
        w = m2.width
        span = max(1, die.height - 4 * w)
        for i in range(num_io_pins):
            y = die.ylo + 2 * w + (i * span) // max(1, num_io_pins)
            on_left = i % 2 == 0
            x = die.xlo if on_left else die.xhi
            rect = (
                Rect(x, y - w, x + 4 * w, y + w)
                if on_left
                else Rect(x - 4 * w, y - w, x, y + w)
            )
            pin = IOPin(name=f"io_{i + 1}", layer_name="M2", rect=rect)
            self.design.add_io_pin(pin)
            nets[i % len(nets)].add_io_pin(pin.name)


class _SpatialPool:
    """Pool of claimable input pins, searchable by proximity."""

    def __init__(self, terminals: list):
        # Sort by (y, x) of the owning instance: row-major locality.
        self._items = sorted(
            terminals,
            key=lambda t: (t[0].location.y, t[0].location.x, t[1]),
        )
        self._claimed = [False] * len(self._items)
        self._cursor = 0

    def claim_near(self, point, count: int) -> list:
        """Claim up to ``count`` pins, preferring pool locality.

        A full nearest-neighbor search is unnecessary: the pool is
        row-major sorted and consumed with a moving cursor, which
        yields the short, local nets real netlists have.
        """
        claimed = []
        idx = self._cursor
        n = len(self._items)
        scanned = 0
        while len(claimed) < count and scanned < n:
            if not self._claimed[idx % n]:
                self._claimed[idx % n] = True
                claimed.append(self._items[idx % n])
            idx += 1
            scanned += 1
        self._cursor = idx % n if n else 0
        return claimed

    def remaining(self) -> list:
        """Return all unclaimed terminals."""
        return [
            item
            for item, used in zip(self._items, self._claimed)
            if not used
        ]
