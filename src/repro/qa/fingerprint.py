"""Canonical, version-stamped digests of a full PAAF result.

The fingerprint is the identity contract every perf feature promises
to preserve: for a fixed design + algorithmic config, the digest is
the same for any ``jobs`` count, any ``paircheck_mode``, a cold or a
warm AP cache, and any Python version (every container is sorted
before serialization, so set/dict iteration order and hash
randomization cannot leak in).

``canonical_result`` reduces a :class:`PinAccessResult` to plain JSON
types (dicts keyed by strings, lists, ints, strings) in three
sections -- ``step1`` (per-pin access points), ``step2``
(per-unique-instance patterns + DRC verdict counts), ``step3``
(per-instance selections, boundary conflicts, failed pins).
``result_fingerprint`` hashes each section separately and combines the
sub-digests, so a drift report localizes to the step that moved before
any detailed diffing happens.

Nothing here imports the rest of ``repro``: the functions duck-type
over the result object, which keeps the module importable from
low-level code (the AP cache stamps entries with
:func:`entry_digest`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

FINGERPRINT_VERSION = 1

#: Section names, in flow order, hashed into the combined digest.
STEPS = ("step1", "step2", "step3")


@dataclass(frozen=True)
class ResultFingerprint:
    """The combined digest plus one sub-digest per step."""

    version: int
    digest: str
    steps: dict

    def drifted_steps(self, other: "ResultFingerprint") -> list:
        """Return the step names whose sub-digests differ from ``other``."""
        return [
            step
            for step in STEPS
            if self.steps.get(step) != other.steps.get(step)
        ]

    def to_json(self) -> dict:
        """Return the JSON form stored in golden records."""
        return {
            "version": self.version,
            "digest": self.digest,
            "steps": dict(self.steps),
        }

    @staticmethod
    def from_json(payload: dict) -> "ResultFingerprint":
        """Rebuild a fingerprint from its golden-record JSON form."""
        return ResultFingerprint(
            version=payload["version"],
            digest=payload["digest"],
            steps=dict(payload["steps"]),
        )


def canonical_json(payload) -> str:
    """Serialize to the canonical JSON text that gets hashed."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest_of(payload) -> str:
    """Return the sha256 hex digest of a canonical payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def canonical_result(result) -> dict:
    """Reduce a :class:`PinAccessResult` to sorted plain-JSON form."""
    return {
        "version": FINGERPRINT_VERSION,
        "design": result.design.name,
        "step1": _canonical_step1(result),
        "step2": _canonical_step2(result),
        "step3": _canonical_step3(result),
    }


def result_fingerprint(result, canonical: dict = None) -> ResultFingerprint:
    """Digest a result (or its precomputed canonical form)."""
    if canonical is None:
        canonical = canonical_result(result)
    return fingerprint_of_canonical(canonical)


def fingerprint_of_canonical(canonical: dict) -> ResultFingerprint:
    """Digest an already-canonicalized result."""
    steps = {step: digest_of(canonical[step]) for step in STEPS}
    combined = digest_of({"version": canonical["version"], "steps": steps})
    return ResultFingerprint(
        version=canonical["version"], digest=combined, steps=steps
    )


def entry_digest(aps_by_pin: dict, patterns: list) -> str:
    """Digest one unique instance's Step 1/2 output.

    The AP cache stamps every stored entry with this digest and
    re-derives it on load: an entry whose payload no longer matches its
    recorded digest (bit rot, a partial overwrite that still unpickles,
    a file copied between signature slots) is flagged stale and treated
    as a miss instead of silently corrupting a warm run.
    """
    return digest_of(
        {
            "aps": canonical_aps_by_pin(aps_by_pin),
            "patterns": [canonical_pattern(p) for p in patterns],
        }
    )


# -- per-section canonicalizers ---------------------------------------------


def canonical_ap(ap) -> dict:
    """Reduce one :class:`AccessPoint` to plain JSON types."""
    return {
        "x": ap.x,
        "y": ap.y,
        "layer": ap.layer_name,
        "pref": int(ap.pref_type),
        "nonpref": int(ap.nonpref_type),
        # Via order is meaningful: the first entry is the primary via.
        "vias": list(ap.valid_vias),
        "planar": sorted(ap.planar_dirs),
    }


def canonical_aps_by_pin(aps_by_pin: dict) -> dict:
    """Reduce one pin->APs mapping, APs sorted into canonical order."""
    return {
        pin: sorted(
            (canonical_ap(ap) for ap in aps),
            key=lambda a: (a["x"], a["y"], a["layer"]),
        )
        for pin, aps in aps_by_pin.items()
    }


def canonical_pattern(pattern) -> dict:
    """Reduce one :class:`AccessPattern` (pin order is meaningful)."""
    return {
        "pins": [
            [pin, ap.x, ap.y, ap.primary_via]
            for pin, ap in pattern.aps.items()
        ],
        "cost": pattern.cost,
        "violations": sorted(
            _canonical_pattern_violation(a, b, v)
            for a, b, v in pattern.violations
        ),
    }


def _canonical_pattern_violation(pin_a, pin_b, violation) -> list:
    marker = violation.marker
    return [
        pin_a,
        pin_b,
        violation.rule,
        violation.layer_name,
        [marker.xlo, marker.ylo, marker.xhi, marker.yhi],
    ]


def _unique_instance_key(ui) -> str:
    """A stable, human-readable key for a unique instance."""
    master, orient, offsets = ui.signature
    orient_name = getattr(orient, "name", None) or str(orient)
    offset_text = ",".join(str(o) for o in offsets)
    return f"{master}|{orient_name}|({offset_text})"


def _canonical_step1(result) -> dict:
    out = {}
    for ua in result.unique_accesses:
        key = _unique_instance_key(ua.unique_instance)
        out[key] = canonical_aps_by_pin(ua.aps_by_pin)
    return out


def _canonical_step2(result) -> dict:
    patterns = {}
    verdicts = {}
    for ua in result.unique_accesses:
        key = _unique_instance_key(ua.unique_instance)
        patterns[key] = [canonical_pattern(p) for p in ua.patterns]
        for pattern in ua.patterns:
            for _, _, violation in pattern.violations:
                rule = violation.rule
                verdicts[rule] = verdicts.get(rule, 0) + 1
    return {"patterns": patterns, "verdicts": verdicts}


def _canonical_step3(result) -> dict:
    selection = {}
    conflicts = []
    if result.selection is not None:
        for inst_name, selected in result.selection.selection.items():
            if selected.pattern is None:
                selection[inst_name] = None
                continue
            selection[inst_name] = {
                pin: [ap.x, ap.y, ap.primary_via]
                for pin, ap in selected.access_points().items()
            }
        conflicts = sorted(
            [inst_a, pin_a, inst_b, pin_b]
            for inst_a, pin_a, inst_b, pin_b in result.selection.conflicts
        )
    return {
        "selection": selection,
        "conflicts": conflicts,
        "failed_pins": sorted(
            [inst, pin] for inst, pin in result.failed_pins()
        ),
    }
