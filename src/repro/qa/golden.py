"""Golden-record corpus management behind ``repro qa``.

A golden record captures one generated testcase's full PAAF outcome:
the canonical result form, its fingerprint (combined digest plus
per-step sub-digests) and the quality metrics.  Records live as JSON
under ``goldens/`` and are committed, so every future refactor is
checked against them:

* ``qa snapshot`` runs one case and writes its record;
* ``qa check`` re-runs every record's case and fails on any
  fingerprint drift or metric regression beyond tolerance;
* ``qa accept`` re-runs and overwrites records (the reviewed way to
  bless an intentional behavior change);
* ``qa diff`` prints the full human-readable drift -- which step,
  which unique instance, which pin, which access point -- instead of a
  bare hash mismatch.

Because the fingerprint ignores perf knobs, running ``qa check`` with
``--jobs 4`` or ``--paircheck-mode engine`` against goldens recorded
serially with the kernel asserts the ``-j1 == -jN`` and ``kernel ==
engine`` identities by construction; CI does exactly that.
"""

from __future__ import annotations

import json
import os

from repro.qa.fingerprint import (
    FINGERPRINT_VERSION,
    ResultFingerprint,
    canonical_result,
    fingerprint_of_canonical,
)
from repro.qa.metrics import compare_metrics, quality_metrics, regressions

GOLDEN_SCHEMA = "repro.qa.golden/v1"
DEFAULT_GOLDENS_DIR = "goldens"


class GoldenMismatch(AssertionError):
    """Raised by :func:`verify_result` when a result drifts."""

    def __init__(self, message: str, diff: list):
        super().__init__(message)
        self.diff = diff


def case_id(testcase: str, scale: float) -> str:
    """Return the corpus identity of one generated case."""
    return f"{testcase}@{scale:g}"


def golden_path(goldens_dir: str, testcase: str, scale: float) -> str:
    """Return the record path for one case."""
    return os.path.join(goldens_dir, case_id(testcase, scale) + ".json")


def run_case(
    testcase: str,
    scale: float,
    jobs: int = 1,
    paircheck_mode: str = "kernel",
    apcheck_mode: str = "array",
):
    """Generate and analyze one case; return ``(result, failed_pins)``.

    ``jobs``, ``paircheck_mode`` and ``apcheck_mode`` are perf knobs:
    any combination must reproduce the same fingerprint, which is
    exactly what the cross-matrix CI jobs assert.
    """
    from repro.bench import build_case
    from repro.core import PaafConfig, PinAccessFramework
    from repro.core.framework import evaluate_failed_pins

    design = build_case(testcase, scale=scale)
    config = PaafConfig(
        jobs=jobs,
        paircheck_mode=paircheck_mode,
        apcheck_mode=apcheck_mode,
    )
    result = PinAccessFramework(design, config).run()
    failed = evaluate_failed_pins(design, result.access_map())
    return result, failed


def snapshot_case(
    testcase: str,
    scale: float,
    jobs: int = 1,
    paircheck_mode: str = "kernel",
    apcheck_mode: str = "array",
) -> dict:
    """Run one case and build its golden record."""
    result, failed = run_case(
        testcase,
        scale,
        jobs=jobs,
        paircheck_mode=paircheck_mode,
        apcheck_mode=apcheck_mode,
    )
    return golden_record(testcase, scale, result, failed)


def golden_record(testcase: str, scale: float, result, failed: list) -> dict:
    """Build the golden record payload for an already-run result."""
    canonical = canonical_result(result)
    fingerprint = fingerprint_of_canonical(canonical)
    return {
        "schema": GOLDEN_SCHEMA,
        "case": {"testcase": testcase, "scale": scale},
        "fingerprint": fingerprint.to_json(),
        "metrics": quality_metrics(result, failed),
        "canonical": canonical,
    }


def write_golden(path: str, record: dict) -> None:
    """Write a golden record (stable key order, trailing newline)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_golden(path: str) -> dict:
    """Load one golden record, validating its schema stamp."""
    with open(path) as handle:
        record = json.load(handle)
    if record.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"{path}: not a golden record "
            f"(schema {record.get('schema')!r}, expected {GOLDEN_SCHEMA!r})"
        )
    return record


def list_goldens(goldens_dir: str, cases: list = None) -> list:
    """Return the record paths under ``goldens_dir``.

    ``cases`` filters by case id (the filename stem); unknown names
    raise so a CI typo cannot silently check nothing.
    """
    try:
        listing = os.listdir(goldens_dir)
    except FileNotFoundError:
        return []
    names = sorted(name for name in listing if name.endswith(".json"))
    if cases:
        known = {name[: -len(".json")]: name for name in names}
        missing = [case for case in cases if case not in known]
        if missing:
            raise ValueError(
                f"unknown golden case(s): {', '.join(missing)} "
                f"(have: {', '.join(known) or 'none'})"
            )
        names = [known[case] for case in cases]
    return [os.path.join(goldens_dir, name) for name in names]


# -- diffing -----------------------------------------------------------------


def diff_canonical(golden: dict, current: dict, max_lines: int = None) -> list:
    """Explain how two canonical results differ, one line per change.

    Lines carry the full path into the canonical form, so a drift
    names the step, the unique instance or instance, the pin and the
    access-point field that moved.
    """
    lines = []
    _walk(golden, current, "", lines)
    if max_lines is not None and len(lines) > max_lines:
        extra = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... and {extra} more difference(s)"]
    return lines


def _walk(golden, current, path, out) -> None:
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current), key=str):
            label = f"{path}/{key}" if path else str(key)
            if key not in current:
                out.append(f"{label}: removed (was {_brief(golden[key])})")
            elif key not in golden:
                out.append(f"{label}: added ({_brief(current[key])})")
            else:
                _walk(golden[key], current[key], label, out)
        return
    if isinstance(golden, list) and isinstance(current, list):
        if len(golden) != len(current):
            out.append(f"{path}: length {len(golden)} -> {len(current)}")
        for i in range(min(len(golden), len(current))):
            _walk(golden[i], current[i], f"{path}[{i}]", out)
        if len(golden) > len(current):
            longer, tag = golden, "removed"
        else:
            longer, tag = current, "added"
        for i in range(min(len(golden), len(current)), len(longer)):
            out.append(f"{path}[{i}]: {tag} ({_brief(longer[i])})")
        return
    if golden != current:
        out.append(f"{path}: {_brief(golden)} -> {_brief(current)}")


def _brief(value) -> str:
    text = json.dumps(value, sort_keys=True, default=str)
    return text if len(text) <= 60 else text[:57] + "..."


def verify_result(record: dict, result, failed: list = None) -> None:
    """Assert ``result`` matches a golden record (test-suite hook).

    Raises :class:`GoldenMismatch` whose message leads with the
    drifted step names and carries the detailed diff.
    """
    canonical = canonical_result(result)
    fingerprint = fingerprint_of_canonical(canonical)
    golden_fp = ResultFingerprint.from_json(record["fingerprint"])
    if fingerprint.digest == golden_fp.digest:
        return
    steps = ", ".join(fingerprint.drifted_steps(golden_fp)) or "version"
    diff = diff_canonical(record["canonical"], canonical)
    head = "; ".join(diff[:3])
    raise GoldenMismatch(
        f"result drifted from golden in {steps}: {head}", diff
    )


# -- the qa check gate -------------------------------------------------------


def check_goldens(
    goldens_dir: str,
    cases: list = None,
    jobs: int = 1,
    paircheck_mode: str = "kernel",
    apcheck_mode: str = "array",
    tolerances: dict = None,
    accept: bool = False,
    max_diff_lines: int = 20,
    out=print,
) -> tuple:
    """Re-run every golden case and gate the results.

    Returns ``(exit_code, report)`` where ``report`` is the
    JSON-serializable payload CI uploads as an artifact.  With
    ``accept=True``, drifting or regressing records are rewritten from
    the fresh run instead of failing.
    """
    paths = list_goldens(goldens_dir, cases)
    report = {
        "goldens_dir": goldens_dir,
        "jobs": jobs,
        "paircheck_mode": paircheck_mode,
        "apcheck_mode": apcheck_mode,
        "accept": accept,
        "cases": [],
    }
    if not paths:
        out(f"no golden records under {goldens_dir}")
        return 1, report
    failures = 0
    for path in paths:
        record = load_golden(path)
        case = record["case"]
        result, failed = run_case(
            case["testcase"],
            case["scale"],
            jobs=jobs,
            paircheck_mode=paircheck_mode,
            apcheck_mode=apcheck_mode,
        )
        entry = _check_one(record, result, failed, tolerances, max_diff_lines)
        entry["case"] = case_id(case["testcase"], case["scale"])
        if entry["status"] != "ok" and accept:
            fresh = golden_record(
                case["testcase"], case["scale"], result, failed
            )
            write_golden(path, fresh)
            entry["status"] = "accepted"
        report["cases"].append(entry)
        if entry["status"] not in ("ok", "accepted"):
            failures += 1
        _print_entry(entry, out)
    out(
        f"qa check: {len(paths) - failures}/{len(paths)} case(s) ok "
        f"(jobs={jobs}, paircheck_mode={paircheck_mode}, "
        f"apcheck_mode={apcheck_mode})"
    )
    return (1 if failures else 0), report


def _check_one(record, result, failed, tolerances, max_diff_lines) -> dict:
    canonical = canonical_result(result)
    fingerprint = fingerprint_of_canonical(canonical)
    golden_fp = ResultFingerprint.from_json(record["fingerprint"])
    metrics = quality_metrics(result, failed)
    rows = compare_metrics(record["metrics"], metrics, tolerances)
    entry = {
        "digest": fingerprint.digest,
        "golden_digest": golden_fp.digest,
        "metrics": metrics,
        "metric_rows": [list(row) for row in rows],
        "regressions": [list(row) for row in regressions(rows)],
        "drifted_steps": [],
        "diff": [],
    }
    if golden_fp.version != FINGERPRINT_VERSION:
        entry["status"] = "stale-version"
        entry["diff"] = [
            f"golden fingerprint version {golden_fp.version} != "
            f"{FINGERPRINT_VERSION}; re-record with 'repro qa accept'"
        ]
    elif fingerprint.digest != golden_fp.digest:
        entry["status"] = "drift"
        entry["drifted_steps"] = fingerprint.drifted_steps(golden_fp)
        entry["diff"] = diff_canonical(
            record["canonical"], canonical, max_lines=max_diff_lines
        )
    elif entry["regressions"]:
        entry["status"] = "metric-regression"
    else:
        entry["status"] = "ok"
    return entry


def _print_entry(entry: dict, out) -> None:
    out(f"[{entry['status']}] {entry['case']}")
    if entry["drifted_steps"]:
        out(f"  drifted steps: {', '.join(entry['drifted_steps'])}")
    for line in entry["diff"]:
        out(f"  {line}")
    for name, want, have, status in entry["metric_rows"]:
        if status in ("regressed", "tolerated", "improved"):
            out(f"  metric {name}: {want} -> {have} ({status})")
