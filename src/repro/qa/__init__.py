"""Golden-result regression layer (``repro qa``).

The quality-assurance subsystem turns a :class:`PinAccessResult` into
two stable artifacts:

* a **canonical fingerprint** (:mod:`repro.qa.fingerprint`) -- a
  version-stamped digest over the sorted serialization of per-pin
  access points, per-unique-instance patterns, per-instance selections
  and DRC verdicts, with per-step sub-digests so a mismatch localizes
  to Step 1, 2 or 3;
* a **quality-metric record** (:mod:`repro.qa.metrics`) -- the paper's
  Table II/III-style metrics (APs per pin, k-coverage, pattern
  validity, boundary conflicts, cluster cost, failed pins) in a stable
  JSON schema shared with the ``BENCH_*.json`` baselines.

:mod:`repro.qa.golden` manages a committed corpus of golden records
over generated testcases and backs the ``repro qa snapshot / check /
accept / diff`` CLI subcommands.  ``qa check`` is the gate CI runs:
any fingerprint drift or quality-metric regression beyond the
configured tolerances fails the build, and because the fingerprint is
independent of every perf knob, checking the same golden under
``-j1``/``-jN`` and ``kernel``/``engine`` pair-check modes asserts
their identity by construction.
"""

from repro.qa.fingerprint import (
    FINGERPRINT_VERSION,
    ResultFingerprint,
    canonical_result,
    entry_digest,
    result_fingerprint,
)
from repro.qa.golden import (
    GOLDEN_SCHEMA,
    GoldenMismatch,
    check_goldens,
    diff_canonical,
    load_golden,
    snapshot_case,
    write_golden,
)
from repro.qa.metrics import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    bench_entry,
    compare_bench_perf,
    compare_metrics,
    gate_value,
    migrate_bench_entry,
    perf_direction,
    quality_metrics,
)

__all__ = [
    "FINGERPRINT_VERSION",
    "ResultFingerprint",
    "canonical_result",
    "entry_digest",
    "result_fingerprint",
    "GOLDEN_SCHEMA",
    "GoldenMismatch",
    "check_goldens",
    "diff_canonical",
    "load_golden",
    "snapshot_case",
    "write_golden",
    "BENCH_SCHEMA",
    "METRICS_SCHEMA",
    "bench_entry",
    "compare_bench_perf",
    "compare_metrics",
    "gate_value",
    "migrate_bench_entry",
    "perf_direction",
    "quality_metrics",
]
