"""Paper-style quality metrics in a stable, gateable JSON schema.

``quality_metrics`` extracts from a :class:`PinAccessResult` the
numbers the paper's evaluation reports -- average access points per
pin and k-coverage (Table II territory), pattern validity, boundary
conflicts and cluster cost (Step 3), failed pins (Table III) -- as a
flat JSON-serializable dict stamped with ``METRICS_SCHEMA``.

The same schema underpins the ``BENCH_*.json`` perf baselines:
``bench_entry`` wraps a measurement into the shared envelope
(``design`` / ``scale`` / ``cells`` identity, ``perf`` timings,
``derived`` speedups, ``context`` host facts) and
``migrate_bench_entry`` upgrades the pre-schema flat entries so old
histories stay readable.

``compare_metrics`` is the quality gate: each metric has a known
"better" direction, improvements always pass, and regressions fail
once they exceed the configured absolute/relative tolerance.
"""

from __future__ import annotations

METRICS_SCHEMA = "repro.qa.metrics/v1"
BENCH_SCHEMA = "repro.qa.bench/v1"

#: Which way is better, per gated metric.  Metrics absent here (design
#: identity, schema stamps) are compared for information only.
METRIC_DIRECTIONS = {
    "access_points": "higher",
    "avg_aps_per_pin": "higher",
    "k_coverage": "higher",
    "patterns": "higher",
    "pattern_validity_rate": "higher",
    "boundary_conflicts": "lower",
    "cluster_cost": "lower",
    "failed_pins": "lower",
    "failed_pins_internal": "lower",
}

#: Default gate: any regression at all fails.  ``qa check
#: --tolerances`` points at a JSON file of per-metric overrides, e.g.
#: ``{"cluster_cost": {"rel": 0.05}, "failed_pins": {"abs": 1}}``.
DEFAULT_TOLERANCES = {}


def quality_metrics(result, failed: list = None) -> dict:
    """Extract the gated quality metrics from a result.

    ``failed`` is the output of
    :func:`repro.core.framework.evaluate_failed_pins` (the paper's
    fair, independently-scored Table III metric); when omitted, the
    scorer is run here.  ``failed_pins_internal`` is the framework's
    own bookkeeping (``result.failed_pins()``) -- the two agreeing is
    itself a useful invariant.
    """
    if failed is None:
        from repro.core.framework import evaluate_failed_pins

        failed = evaluate_failed_pins(result.design, result.access_map())
    num_pins = 0
    covered_k = 0
    k = result.config.k
    for ua in result.unique_accesses:
        for aps in ua.aps_by_pin.values():
            num_pins += 1
            if len(aps) >= k:
                covered_k += 1
    total_aps = result.total_access_points
    patterns = sum(len(ua.patterns) for ua in result.unique_accesses)
    clean = sum(
        1
        for ua in result.unique_accesses
        for pattern in ua.patterns
        if pattern.is_clean
    )
    selection = result.selection
    cluster_cost = 0
    conflicts = 0
    if selection is not None:
        cluster_cost = sum(
            s.pattern.cost
            for s in selection.selection.values()
            if s.pattern is not None
        )
        conflicts = len(selection.conflicts)
    connected = len(result.design.connected_pins())
    return {
        "schema": METRICS_SCHEMA,
        "design": result.design.name,
        "cells": result.design.stats()["num_std_cells"],
        "unique_instances": result.num_unique_instances,
        "connected_pins": connected,
        "access_points": total_aps,
        "avg_aps_per_pin": _ratio(total_aps, num_pins),
        "k": k,
        "k_coverage": _ratio(covered_k, num_pins),
        "patterns": patterns,
        "pattern_validity_rate": _ratio(clean, patterns),
        "boundary_conflicts": conflicts,
        "cluster_cost": cluster_cost,
        "failed_pins": len(failed),
        "failed_pins_internal": len(result.failed_pins()),
        "failed_pin_rate": _ratio(len(failed), connected),
    }


def _ratio(num: int, den: int) -> float:
    return round(num / den, 6) if den else 0.0


def gate_value(want, have, direction: str, tolerance: dict = None) -> str:
    """Classify one golden-vs-current value pair.

    Returns ``ok`` (unchanged), ``improved``, ``tolerated``
    (regressed within the ``{"abs": x, "rel": y}`` tolerance) or
    ``regressed`` (the failing verdict).  ``direction`` names which
    way is better (``higher`` or ``lower``); a missing current value
    is always a regression.
    """
    if have is None:
        return "regressed"
    delta = have - want
    worse = delta < 0 if direction == "higher" else delta > 0
    if delta == 0:
        return "ok"
    if not worse:
        return "improved"
    tol = tolerance or {}
    allowed = max(
        float(tol.get("abs", 0)),
        float(tol.get("rel", 0)) * abs(want),
    )
    return "tolerated" if abs(delta) <= allowed else "regressed"


def compare_metrics(
    golden: dict, current: dict, tolerances: dict = None
) -> list:
    """Gate ``current`` against ``golden`` metric by metric.

    Returns one row per gated metric:
    ``(name, golden value, current value, status)`` -- the statuses of
    :func:`gate_value`.
    """
    tolerances = {**DEFAULT_TOLERANCES, **(tolerances or {})}
    rows = []
    for name, direction in METRIC_DIRECTIONS.items():
        if name not in golden:
            continue
        want = golden[name]
        have = current.get(name)
        status = gate_value(want, have, direction, tolerances.get(name))
        rows.append((name, want, have, status))
    return rows


def regressions(rows: list) -> list:
    """Filter :func:`compare_metrics` rows down to the failing ones."""
    return [row for row in rows if row[3] == "regressed"]


# -- perf (BENCH envelope) comparison ----------------------------------------

#: The perf gate's default when a key has no explicit tolerance: a
#: timing may regress up to 100% before failing.  Perf numbers carry
#: host noise that quality metrics do not, so the default is loose;
#: sweeps and CI tighten or widen it per key via ``tolerances``.
PERF_DEFAULT_TOLERANCE = {"rel": 1.0}

#: The tolerance-dict key holding the fallback for un-named perf keys.
PERF_DEFAULT_KEY = "_perf_default"

_LOWER_SUFFIXES = ("_s", "_ms", "_ns", "_seconds", ".seconds", "_calls")
_HIGHER_SUFFIXES = ("_per_s", "_qps", "_speedup", "_reduction")


def perf_direction(name: str) -> str:
    """Infer which way is better for a perf key, or ``None``.

    Timings and call counts regress upward; rates and speedups
    regress downward.  Keys whose direction cannot be inferred return
    ``None`` and are reported for information only, never gated.
    """
    if name.endswith(_LOWER_SUFFIXES):
        return "lower"
    if name.endswith(_HIGHER_SUFFIXES) or "qps" in name:
        return "higher"
    if "speedup" in name:
        return "higher"
    return None


def perf_tolerance(name: str, tolerances: dict = None) -> dict:
    """Resolve the tolerance for one perf key.

    Precedence: an exact key entry, then the ``_perf_default`` entry,
    then :data:`PERF_DEFAULT_TOLERANCE`.
    """
    tolerances = tolerances or {}
    if name in tolerances:
        return tolerances[name]
    return tolerances.get(PERF_DEFAULT_KEY, PERF_DEFAULT_TOLERANCE)


def compare_bench_perf(
    golden_perf: dict, current_perf: dict, tolerances: dict = None
) -> list:
    """Gate two ``repro.qa.bench/v1`` ``perf`` maps key by key.

    Only keys present in both maps with an inferable direction are
    gated; rows follow the :func:`compare_metrics` shape.
    """
    rows = []
    for name in sorted(set(golden_perf) & set(current_perf)):
        direction = perf_direction(name)
        if direction is None:
            continue
        want, have = golden_perf[name], current_perf[name]
        if not isinstance(want, (int, float)) or isinstance(want, bool):
            continue
        status = gate_value(
            want, have, direction, perf_tolerance(name, tolerances)
        )
        rows.append((name, want, have, status))
    return rows


# -- BENCH_*.json envelope ---------------------------------------------------

#: Pre-schema flat keys that describe the host, not the measurement.
_CONTEXT_KEYS = frozenset({"cpu_count"})

#: Pre-schema flat keys that are ratios derived from the raw timings.
_DERIVED_KEYS = frozenset(
    {
        "parallel_speedup",
        "warm_speedup",
        "pair_call_reduction",
        "query_speedup",
    }
)

_IDENTITY_KEYS = frozenset({"design", "scale", "cells"})


def bench_context() -> dict:
    """Describe the measuring host for a ``BENCH_*.json`` entry.

    One shared implementation so every benchmark records the same
    fields: logical CPU count, interpreter version and platform
    string.  Benchmarks that historically recorded only ``cpu_count``
    (or nothing) pick the full set up automatically through
    :func:`bench_entry`.
    """
    import os
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def bench_entry(
    design: str,
    scale: float,
    cells: int,
    perf: dict,
    derived: dict = None,
    context: dict = None,
    metrics: dict = None,
) -> dict:
    """Build one ``BENCH_*.json`` history entry in the shared schema.

    The host description from :func:`bench_context` is merged in
    under ``context``; caller-provided keys win on conflict.
    """
    entry = {
        "schema": BENCH_SCHEMA,
        "design": design,
        "scale": scale,
        "cells": cells,
        "perf": dict(perf),
        "derived": dict(derived or {}),
        "context": {**bench_context(), **(context or {})},
    }
    if metrics is not None:
        entry["metrics"] = dict(metrics)
    return entry


def migrate_bench_entry(entry: dict) -> dict:
    """Upgrade a pre-schema flat entry to the ``BENCH_SCHEMA`` layout.

    Entries already carrying a ``schema`` stamp pass through
    unchanged, so the migration is idempotent and histories may mix
    generations.
    """
    if entry.get("schema") == BENCH_SCHEMA:
        return entry
    perf = {}
    derived = {}
    context = {}
    for key, value in entry.items():
        if key in _IDENTITY_KEYS:
            continue
        if key in _CONTEXT_KEYS:
            context[key] = value
        elif key in _DERIVED_KEYS:
            derived[key] = value
        else:
            perf[key] = value
    migrated = bench_entry(
        design=entry.get("design", "unknown"),
        scale=entry.get("scale", 0.0),
        cells=entry.get("cells", 0),
        perf=perf,
        derived=derived,
        context=context,
    )
    # Historic entries describe the machine they were recorded on; do
    # not graft the current host description onto them.
    migrated["context"] = context
    return migrated
