"""Blocking client library for the ``repro.serve/v1`` daemon.

:class:`OracleClient` owns one connection, retries the initial dial
with exponential backoff (daemons take a moment to analyze or
warm-load a design), and exposes one method per protocol operation.
Error envelopes surface as :class:`ServerError` carrying the stable
wire code, with the ``unknown_instance`` / ``unknown_pin`` codes also
mapped back onto the in-process
:class:`~repro.core.oracle.UnknownInstanceError` /
:class:`~repro.core.oracle.UnknownPinError` types, so code written
against the oracle migrates to the daemon without changing its
``except`` clauses.

Usage::

    from repro.serve.client import OracleClient

    with OracleClient(("unix", "/run/pao.sock")) as client:
        answer = client.query("u42", "A")
        answers = client.query_batch([("u42", "A"), ("u43", "Z")])
        client.move_instance("u42", x=15200, y=1400)

With ``trace=True`` the client opens a span tree per request
(``client.request`` > serialize / wait / parse), stamps the trace
context into the frame, and -- when the daemon runs telemetry --
adopts the echoed server spans into its own tracer so the whole
request renders as one stitched Chrome-tracing track.  The two
machines' monotonic clocks share no epoch, so the server spans are
shifted to sit centered inside the client's ``wait`` span: the wait
interval provably brackets the server's handling, and the residue
(network + scheduling) splits evenly around it.  After every traced
call :attr:`OracleClient.last_timing` holds the per-phase breakdown
(the ``repro query --timing`` surface).

The module keeps its imports light (no analysis machinery) so an
embedding placer pays nothing beyond the socket.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Optional

from repro.core.oracle import UnknownInstanceError, UnknownPinError
from repro.obs import trace as obs_trace
from repro.serve import protocol
from repro.serve.protocol import (
    E_UNKNOWN_INSTANCE,
    E_UNKNOWN_PIN,
    HealthRequest,
    LoadDesignRequest,
    MetricsRequest,
    MoveInstanceRequest,
    QueryBatchRequest,
    QueryRequest,
    ShutdownRequest,
    StatsRequest,
    parse_address,
)

__all__ = [
    "OracleClient",
    "ServerError",
    "ConnectionFailed",
    "parse_address",
]


class ServerError(Exception):
    """The daemon answered with an error envelope."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ConnectionFailed(ConnectionError):
    """Could not reach the daemon within the retry budget."""


#: Wire error codes that map back onto in-process exception types.
_TYPED_ERRORS = {
    E_UNKNOWN_INSTANCE: lambda msg: UnknownInstanceError(msg),
    E_UNKNOWN_PIN: lambda msg: UnknownPinError(msg, "?"),
}


def _span_ms(record):
    """A closed span record's duration in milliseconds, or None."""
    if record is None:
        return None
    return round(record["dur"] * 1e3, 3)


class OracleClient:
    """A blocking connection to one pin access daemon."""

    def __init__(
        self,
        address,
        timeout: float = 30.0,
        connect_retries: int = 20,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        trace: bool = False,
        tracer=None,
    ):
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = obs_trace.Tracer() if trace else None
        self.dial_ms = None
        self.last_timing = None
        self._sock = None
        self._rfile = None
        self._wfile = None
        self._next_id = 0

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "OracleClient":
        """Dial the daemon, retrying with exponential backoff."""
        if self._sock is not None:
            return self
        t_start = time.perf_counter()
        record = None
        if self.tracer is not None:
            record = self.tracer.begin(
                "client.dial", {"address": str(self.address)}, None
            )
        delay = self.backoff
        last_error = None
        try:
            for _ in range(max(1, self.connect_retries)):
                try:
                    self._sock = self._dial()
                    self._sock.settimeout(self.timeout)
                    self._rfile = self._sock.makefile("rb")
                    self._wfile = self._sock.makefile("wb")
                    self.dial_ms = round(
                        (time.perf_counter() - t_start) * 1e3, 3
                    )
                    return self
                except OSError as exc:
                    last_error = exc
                    self._sock = None
                    time.sleep(delay)
                    delay = min(delay * 2, self.max_backoff)
            raise ConnectionFailed(
                f"cannot connect to {self.address!r}: {last_error}"
            )
        finally:
            if record is not None:
                self.tracer.end(record)

    def _dial(self) -> socket.socket:
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self.address[1])
            return sock
        if self.address[0] == "tcp":
            _, host, port = self.address
            return socket.create_connection((host, port), timeout=self.timeout)
        raise ValueError(f"unknown address kind {self.address[0]!r}")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        for stream in (self._rfile, self._wfile, self._sock):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "OracleClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- transport -----------------------------------------------------------

    def call(self, request) -> dict:
        """Send one typed request, return the ``result`` object.

        Raises :class:`ServerError` (or the mapped typed exception)
        on an error envelope, :class:`ConnectionError` on transport
        failures.
        """
        if self._sock is None:
            self.connect()
        self._next_id += 1
        request.req_id = self._next_id
        if self.tracer is not None:
            return self._call_traced(request)
        protocol.write_frame(self._wfile, request.to_wire())
        response = protocol.read_frame(self._rfile)
        return self._handle_envelope(response)

    def _handle_envelope(self, response) -> dict:
        """Unwrap a response envelope or raise its mapped error."""
        if response is None:
            self.close()
            raise ConnectionError("server closed the connection mid-request")
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        code = error.get("code", protocol.E_SERVER_ERROR)
        message = error.get("message", "unspecified error")
        typed = _TYPED_ERRORS.get(code)
        if typed is not None:
            raise typed(message)
        raise ServerError(code, message)

    def _call_traced(self, request) -> dict:
        """The traced transport: spans, trace stamp, span adoption."""
        trace_id = uuid.uuid4().hex[:16]
        token = obs_trace.swap(self.tracer)
        root = serialize = wait = parse = None
        response = None
        try:
            with obs_trace.span(
                "client.request", op=request.op, trace=trace_id
            ) as root:
                with obs_trace.span("client.serialize") as serialize:
                    frame = protocol.stamp_trace(
                        request.to_wire(), trace_id
                    )
                    blob = protocol.encode_frame(frame)
                with obs_trace.span("client.wait") as wait:
                    self._wfile.write(blob)
                    self._wfile.flush()
                    response = protocol.read_frame(self._rfile)
                with obs_trace.span("client.parse") as parse:
                    return self._handle_envelope(response)
        finally:
            obs_trace.restore(token)
            server_ms = None
            if response is not None and root is not None and wait is not None:
                server_ms = self._adopt_server_spans(response, root, wait)
            self.last_timing = {
                "op": request.op,
                "trace": trace_id,
                "dial_ms": self.dial_ms,
                "total_ms": _span_ms(root),
                "serialize_ms": _span_ms(serialize),
                "wait_ms": _span_ms(wait),
                "parse_ms": _span_ms(parse),
                "server_ms": server_ms,
            }

    def _adopt_server_spans(self, response, root, wait):
        """Stitch the daemon's echoed spans under the request span.

        The server's monotonic clock shares no epoch with ours, but
        the ``wait`` span provably brackets the server's handling,
        so the server tree is shifted to sit centered inside it and
        laid on the client's own Chrome track (track 0).  Returns
        the server root duration in milliseconds, or None.
        """
        context = response.get(protocol.TRACE_FIELD)
        if not isinstance(context, dict):
            return None
        records = context.get("spans")
        if not records:
            return None
        server_root = next(
            (r for r in records if r.get("parent") is None), None
        )
        shift = 0.0
        server_ms = None
        if server_root is not None:
            shift = (
                wait["t0"]
                + (wait["dur"] - server_root["dur"]) / 2.0
                - server_root["t0"]
            )
            server_ms = round(server_root["dur"] * 1e3, 3)
        self.tracer.adopt(records, parent=root["id"], shift=shift, track=0)
        return server_ms

    # -- operations ----------------------------------------------------------

    def load_design(
        self,
        design: str,
        lef: str,
        def_path: str,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
    ) -> dict:
        """Load a LEF/DEF pair (server-side paths) into a session."""
        return self.call(
            LoadDesignRequest(
                design=design,
                lef=lef,
                def_path=def_path,
                cache_dir=cache_dir,
                jobs=jobs,
            )
        )

    def query(
        self, instance: str, pin: str, design: Optional[str] = None
    ) -> dict:
        """Answer one instance pin; returns the wire answer dict."""
        result = self.call(
            QueryRequest(design=design, instance=instance, pin=pin)
        )
        return result["answer"]

    def query_batch(
        self,
        pins: list,
        design: Optional[str] = None,
        chunk_size: int = 1000,
    ) -> list:
        """Answer many pins, chunking into frames of ``chunk_size``.

        Each chunk is answered against one snapshot (its answers share
        a generation); chunks may straddle an edit.
        """
        answers = []
        for start in range(0, len(pins), chunk_size):
            result = self.call(
                QueryBatchRequest(
                    design=design,
                    pins=list(pins[start:start + chunk_size]),
                )
            )
            answers.extend(result["answers"])
        return answers

    def move_instance(
        self, instance: str, x: int, y: int, design: Optional[str] = None
    ) -> dict:
        """Apply a placement edit; returns the new generation info."""
        return self.call(
            MoveInstanceRequest(design=design, instance=instance, x=x, y=y)
        )

    def stats(self) -> dict:
        """Return server + per-session statistics."""
        return self.call(StatsRequest())

    def health(self) -> dict:
        """Liveness probe."""
        return self.call(HealthRequest())

    def metrics(self) -> str:
        """Return the server registry in Prometheus text format."""
        return self.call(MetricsRequest())["text"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        result = self.call(ShutdownRequest())
        self.close()
        return result
