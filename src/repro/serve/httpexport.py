"""HTTP export sidecar: Prometheus scrapes without the binary protocol.

A stdlib :mod:`http.server` thread bolted onto a running
:class:`~repro.serve.server.OracleServer` so ordinary scrapers and
load balancers can pull operational state over plain HTTP:

* ``GET /metrics`` -- the full Prometheus exposition
  (:func:`~repro.serve.server.render_server_metrics`: registry
  families, per-session gauges, per-op RED series, SLO gauges);
* ``GET /healthz`` -- the ``health`` op's JSON (status, sessions,
  SLO block); answers 503 while the daemon drains so orchestrators
  stop routing to it;
* ``GET /slo.json`` -- the ``repro.obs.slo/v1`` report alone (404
  when the daemon runs without telemetry).

The sidecar is read-only and unauthenticated -- bind it to loopback
or a private interface.  It runs one
:class:`~http.server.ThreadingHTTPServer` daemon thread and shares
no locks with the request path beyond the metrics/sessions locks the
wire ops already take.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.server import OracleServer, render_server_metrics

#: Content type of the Prometheus text exposition.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HttpExport:
    """The sidecar: binds, serves in a daemon thread, stops cleanly."""

    def __init__(
        self, server: OracleServer, host: str = "127.0.0.1", port: int = 0
    ):
        self.server = server
        handler = _make_handler(server)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = None

    def start(self) -> "HttpExport":
        """Start serving in a background daemon thread."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="pao-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "HttpExport":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


def _make_handler(server: OracleServer):
    """Build the request-handler class bound to ``server``."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self):  # noqa: N802 -- http.server's naming
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                body = render_server_metrics(server).encode("utf-8")
                self._reply(200, PROM_CONTENT_TYPE, body)
            elif path == "/healthz":
                health = server._op_health(None)
                status = 503 if health["status"] == "draining" else 200
                self._reply_json(status, health)
            elif path == "/slo.json":
                if server.telemetry is None:
                    self._reply_json(
                        404, {"error": "telemetry is not enabled"}
                    )
                else:
                    self._reply_json(200, server.telemetry.slo_report())
            else:
                self._reply_json(404, {"error": f"no route {path!r}"})

        def _reply(self, status: int, content_type: str, body: bytes):
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_json(self, status: int, obj: dict):
            body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
            self._reply(status, "application/json", body)

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrape traffic does not belong on stderr

    return Handler
