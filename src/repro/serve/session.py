"""A served design: warm analysis + lock-free read snapshots.

:class:`DesignSession` owns one analyzed design and enforces the
daemon's reader-writer discipline:

* **Reads are lock-free.**  Every query answers against an immutable
  :class:`Snapshot` -- the published answer map plus the per-instance
  Step 1/2 alternatives, all translation offsets precomputed -- reached
  through a single attribute load (atomic under the GIL).  A reader
  never touches the mutable design database, so an in-flight placement
  edit cannot tear its answers.

* **Writes are serialized.**  ``move_instance`` takes the session
  write lock, routes the edit through
  :class:`~repro.core.incremental.IncrementalPinAccess` (signature
  cache hit + affected-row Step 3 re-run, the paper's Experiment 2
  loop), builds the next snapshot off to the side and publishes it
  with one reference assignment.  Readers see the old generation or
  the new one, never a mixture; the ``generation`` stamp on every
  answer makes that observable (and testable).

The per-query path replicates :meth:`PinAccessOracle.query
<repro.core.oracle.PinAccessOracle.query>` exactly -- same selected
access point, same alternatives in the same order -- which the test
suite asserts bit-for-bit over the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PaafConfig
from repro.core.incremental import IncrementalPinAccess
from repro.core.oracle import (
    PinAccessAnswer,
    UnknownInstanceError,
    UnknownPinError,
)
from repro.db.design import Design
from repro.geom.point import Point


@dataclass
class Snapshot:
    """One immutable published state of a session.

    ``access`` maps ``(instance, pin)`` to the selected design-space
    access point; ``alternatives`` maps the same key to the translated
    Step 1 access point list (generation order).  ``pins_by_inst``
    fixes the known-pin universe so readers can distinguish an unknown
    pin from a pin with no access without consulting the mutable
    design.  Construction happens entirely under the session write
    lock; after publication the snapshot is never mutated.
    """

    generation: int
    access: dict = field(default_factory=dict)
    alternatives: dict = field(default_factory=dict)
    pins_by_inst: dict = field(default_factory=dict)


class DesignSession:
    """One analyzed design served by the daemon."""

    def __init__(
        self,
        name: str,
        design: Design,
        config: Optional[PaafConfig] = None,
    ):
        self.name = name
        self.design = design
        self.inc = IncrementalPinAccess(design, config)
        self._write_lock = threading.Lock()
        t0 = time.perf_counter()
        self.inc.analyze()
        self.analyze_seconds = time.perf_counter() - t0
        self.moves = 0
        self._snapshot = self._build_snapshot(generation=0)

    # -- reads (lock-free) ---------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        """Return the current published snapshot (atomic load)."""
        return self._snapshot

    def query(
        self, instance_name: str, pin_name: str, snap: Snapshot = None
    ) -> PinAccessAnswer:
        """Answer one pin against ``snap`` (default: the published one).

        Mirrors ``PinAccessOracle.query(..., strict=True)``: unknown
        instances raise :class:`UnknownInstanceError`, pins the master
        does not declare raise :class:`UnknownPinError`, declared pins
        without access answer inaccessible.
        """
        snap = snap if snap is not None else self._snapshot
        pins = snap.pins_by_inst.get(instance_name)
        if pins is None:
            raise UnknownInstanceError(instance_name)
        if pin_name not in pins:
            raise UnknownPinError(instance_name, pin_name)
        key = (instance_name, pin_name)
        return PinAccessAnswer(
            instance_name=instance_name,
            pin_name=pin_name,
            selected=snap.access.get(key),
            alternatives=snap.alternatives.get(key, []),
        )

    def query_batch(self, pins: list, snap: Snapshot = None) -> list:
        """Answer many pins against one snapshot (no torn batches)."""
        snap = snap if snap is not None else self._snapshot
        return [self.query(inst, pin, snap=snap) for inst, pin in pins]

    def stats(self) -> dict:
        """Return the session's serving statistics."""
        snap = self._snapshot
        cache = self.inc.framework.cache
        return {
            "design": self.design.name,
            "generation": snap.generation,
            "instances": len(snap.pins_by_inst),
            "served_pins": len(snap.access),
            "moves": self.moves,
            "cache_entries": cache.entry_count() if cache is not None else 0,
            "analyze_seconds": round(self.analyze_seconds, 6),
            "last_update_seconds": round(self.inc.last_update_seconds, 6),
        }

    # -- writes (serialized) -------------------------------------------------

    def move_instance(self, instance_name: str, x: int, y: int) -> int:
        """Apply one placement edit and publish the next snapshot.

        Returns the new generation.  The analysis repair and the
        snapshot build both happen under the write lock; publication
        is the final single assignment.
        """
        with self._write_lock:
            self.inc.move_instance(instance_name, Point(x, y))
            self.moves += 1
            snap = self._build_snapshot(
                generation=self._snapshot.generation + 1
            )
            self._snapshot = snap
            return snap.generation

    # -- internals -----------------------------------------------------------

    def _build_snapshot(self, generation: int) -> Snapshot:
        """Materialize the current analysis into an immutable snapshot."""
        snap = Snapshot(generation=generation, access=self.inc.access_map())
        for inst in self.design.instances.values():
            pins = frozenset(pin.name for pin in inst.master.signal_pins())
            snap.pins_by_inst[inst.name] = pins
            ua = self.inc.unique_access_of(inst)
            dx, dy = self.inc.translation_of(inst)
            for pin_name, aps in ua.aps_by_pin.items():
                if pin_name not in pins:
                    continue
                snap.alternatives[(inst.name, pin_name)] = [
                    ap.translated(dx, dy) for ap in aps
                ]
        return snap
