"""The pin access daemon: analyze once, serve queries forever after.

:class:`OracleServer` hosts named :class:`~repro.serve.session.DesignSession`
objects behind the ``repro.serve/v1`` protocol on a TCP or Unix-domain
socket.  One thread accepts connections; each connection gets a
handler thread that loops read-frame / dispatch / write-frame until
the peer closes, a frame error forces a close, or the server drains.

Operational discipline:

* **Backpressure** -- at most ``max_clients`` concurrent connections;
  excess connections receive an ``overloaded`` error envelope and are
  closed instead of queueing unboundedly.
* **Timeouts** -- per-connection socket timeouts bound both idle reads
  and response writes, so a stalled peer cannot pin a handler thread.
* **Graceful drain** -- ``stop()`` (also wired to SIGTERM/SIGINT via
  :meth:`install_signal_handlers`, and to the ``shutdown`` op) closes
  the listener, lets in-flight requests finish up to
  ``drain_seconds``, then closes lingering connections.  A drained
  server leaves ``serve_forever`` with exit code 0.
* **Warm start** -- sessions are loaded through a
  :class:`~repro.core.config.PaafConfig` whose ``cache_dir`` points at
  the persistent AP cache, so a daemon restart costs a cache load, not
  a re-analysis (the ``apcache.*`` counters land in ``stats``).
* **Observability** -- every request ticks ``serve.request.<op>``,
  failures tick ``serve.error.<code>``, latencies land in
  ``serve.latency.<op>`` histograms, and the ``metrics`` op exposes
  the whole registry in Prometheus text format (the same renderer as
  ``repro analyze --metrics-out``).  With a :class:`ServeTelemetry`
  attached the daemon additionally tracks per-op RED windows
  (rate / errors / duration quantiles), evaluates a declarative SLO
  table into ``health``, writes the ``repro.serve.access/v1`` log,
  and answers tracing clients with its server-side span buffer so
  each request stitches into one cross-process trace (see
  ``docs/SERVING.md``).  With no telemetry attached the per-request
  overhead is a single ``is None`` test.
"""

from __future__ import annotations

import functools
import os
import signal
import socket
import threading
import time
from typing import Optional

from repro.core.config import PaafConfig
from repro.core.oracle import UnknownInstanceError, UnknownPinError
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    MetricsRegistry,
    prom_label_value,
    render_prometheus,
)
from repro.obs.slo import DEFAULT_OBJECTIVES, RedWindow, SloTable
from repro.serve import protocol
from repro.serve.protocol import (
    E_OVERLOADED,
    E_SERVER_ERROR,
    E_SHUTTING_DOWN,
    E_UNKNOWN_DESIGN,
    E_UNKNOWN_INSTANCE,
    E_UNKNOWN_PIN,
    FrameError,
    ProtocolError,
    answer_to_wire,
    error_envelope,
    ok_envelope,
)
from repro.serve.session import DesignSession


class ServeTelemetry:
    """The daemon's optional request-telemetry bundle.

    Owns the per-op :class:`~repro.obs.slo.RedWindow` map, the
    :class:`~repro.obs.slo.SloTable`, the optional
    :class:`~repro.obs.accesslog.AccessLog`, and the ``trace`` switch
    that makes the server echo span buffers to tracing clients.  The
    server holds at most one of these; passing ``telemetry=None``
    (the default) keeps the request path at its untelemetered cost.
    """

    __slots__ = ("slo", "access_log", "trace", "_red", "_window", "_lock")

    def __init__(
        self,
        objectives=DEFAULT_OBJECTIVES,
        access_log=None,
        trace: bool = True,
        window_samples: int = 1024,
        window_seconds: int = 60,
    ):
        self.slo = SloTable(objectives)
        self.access_log = access_log
        self.trace = trace
        self._red = {}
        self._window = (window_samples, window_seconds)
        self._lock = threading.Lock()

    def observe(self, op: str, seconds: float, error: bool) -> None:
        """Feed one request outcome into the op's RED window."""
        with self._lock:
            window = self._red.get(op)
            if window is None:
                samples, span_s = self._window
                window = RedWindow(
                    window_samples=samples, window_seconds=span_s
                )
                self._red[op] = window
            window.observe(seconds, error=error)

    def red_snapshot(self) -> dict:
        """Return ``{op: RED snapshot}`` for every op seen so far."""
        with self._lock:
            return {
                op: window.snapshot()
                for op, window in sorted(self._red.items())
            }

    def slo_report(self, red: dict = None) -> dict:
        """Evaluate the SLO table against current (or given) RED data."""
        return self.slo.evaluate(
            red if red is not None else self.red_snapshot()
        )

    def record(self, entry: dict, trace_doc=None) -> None:
        """Forward one request record to the access log, if any."""
        if self.access_log is not None:
            self.access_log.record(entry, trace_doc=trace_doc)

    def close(self) -> None:
        if self.access_log is not None:
            self.access_log.close()


class OracleServer:
    """A threaded ``repro.serve/v1`` daemon over TCP or Unix sockets."""

    def __init__(
        self,
        address: tuple,
        sessions: dict = None,
        max_clients: int = 32,
        request_timeout: float = 30.0,
        drain_seconds: float = 5.0,
        allow_load: bool = True,
        tracer=None,
        telemetry: Optional[ServeTelemetry] = None,
    ):
        self.address = address
        self.sessions = dict(sessions or {})
        self.max_clients = max_clients
        self.request_timeout = request_timeout
        self.drain_seconds = drain_seconds
        self.allow_load = allow_load
        self.registry = MetricsRegistry()
        self.tracer = tracer
        self.telemetry = telemetry
        self._metrics_lock = threading.Lock()
        self._sessions_lock = threading.Lock()
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._listener = None
        self._accept_thread = None
        self._handlers = set()
        self._handlers_lock = threading.Lock()
        self._conns = set()
        self._conns_lock = threading.Lock()
        self._started = time.monotonic()
        self.bound_address = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind, listen and start accepting in a background thread."""
        kind = self.address[0]
        if kind == "unix":
            path = self.address[1]
            if os.path.exists(path):
                # A stale socket file from a crashed daemon; a live one
                # would make bind() fail anyway, so probing is moot.
                os.unlink(path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.bound_address = ("unix", path)
        elif kind == "tcp":
            _, host, port = self.address
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            self.bound_address = ("tcp",) + listener.getsockname()[:2]
        else:
            raise ValueError(f"unknown address kind {kind!r}")
        listener.listen(min(self.max_clients, 128))
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pao-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Block until the server is stopped and fully drained."""
        if self._listener is None:
            self.start()
        self._drained.wait()

    def stop(self, drain: bool = True) -> None:
        """Initiate shutdown; with ``drain``, let in-flight work finish."""
        if self._stop.is_set():
            return
        self._stop.set()
        deadline = time.monotonic() + (self.drain_seconds if drain else 0.0)
        with self._handlers_lock:
            handlers = list(self._handlers)
        for thread in handlers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        # Anything still connected past the drain window is cut off.
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            _close_quietly(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            _close_quietly(self._listener)
            self._listener = None
        if self.bound_address and self.bound_address[0] == "unix":
            try:
                os.unlink(self.bound_address[1])
            except OSError:
                pass
        if self.telemetry is not None:
            self.telemetry.close()
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handle(signum, frame):
            # stop() joins handler threads; do that off the signal
            # frame so an in-flight handler never deadlocks on us.
            threading.Thread(
                target=self.stop, name="pao-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    @property
    def running(self) -> bool:
        """True between ``start()`` and the end of drain."""
        return self._listener is not None and not self._drained.is_set()

    # -- sessions ------------------------------------------------------------

    def add_session(self, session: DesignSession) -> None:
        """Register a preloaded session (the CLI's startup path)."""
        with self._sessions_lock:
            self.sessions[session.name] = session

    def _session_for(self, name: Optional[str]) -> DesignSession:
        with self._sessions_lock:
            if name is None:
                if len(self.sessions) == 1:
                    return next(iter(self.sessions.values()))
                raise ProtocolError(
                    "request names no design and the server hosts "
                    f"{len(self.sessions)} sessions",
                    code=E_UNKNOWN_DESIGN,
                )
            session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(
                f"no loaded design named {name!r}", code=E_UNKNOWN_DESIGN
            )
        return session

    # -- accept / handler loops ----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._handlers_lock:
                active = len(self._handlers)
            if active >= self.max_clients:
                self._tick("serve.reject.overloaded")
                self._refuse(conn, E_OVERLOADED, "server at max_clients")
                continue
            if self._stop.is_set():
                self._refuse(conn, E_SHUTTING_DOWN, "server is draining")
                break
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="pao-conn",
                daemon=True,
            )
            with self._handlers_lock:
                self._handlers.add(thread)
            with self._conns_lock:
                self._conns.add(conn)
            thread.start()

    def _refuse(self, conn, code: str, message: str) -> None:
        try:
            conn.settimeout(1.0)
            conn.sendall(
                protocol.encode_frame(error_envelope(0, code, message))
            )
        except OSError:
            pass
        _close_quietly(conn)

    def _handle_connection(self, conn) -> None:
        if self.tracer is not None:
            obs_trace.swap(self.tracer)
        telemetry = self.telemetry
        try:
            conn.settimeout(self.request_timeout)
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            while not self._stop.is_set():
                try:
                    frame, bytes_in = protocol.read_frame_ex(rfile)
                except FrameError as exc:
                    self._tick(f"serve.error.{exc.code}")
                    _send_quietly(wfile, error_envelope(0, exc.code, str(exc)))
                    break
                except (socket.timeout, OSError):
                    break
                if frame is None:
                    break
                t_recv = time.perf_counter()
                blob, hangup, report = self._dispatch(frame, t_recv=t_recv)
                try:
                    wfile.write(blob)
                    wfile.flush()
                except OSError:
                    break
                if report is not None:
                    entry, trace_doc = report
                    entry["bytes_in"] = bytes_in
                    entry["bytes_out"] = len(blob)
                    entry["total_ms"] = round(
                        (time.perf_counter() - t_recv) * 1e3, 3
                    )
                    telemetry.record(entry, trace_doc=trace_doc)
                if hangup:
                    break
        finally:
            _close_quietly(conn)
            with self._conns_lock:
                self._conns.discard(conn)
            with self._handlers_lock:
                self._handlers.discard(threading.current_thread())

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, frame: dict, t_recv: float = None) -> tuple:
        """Answer one decoded frame.

        Returns ``(blob, hangup, report)``: the encoded response
        frame, whether to close the connection after writing it, and
        -- when the access log is on -- the partially filled log
        entry plus the slow-trace document thunk (the caller
        finishes ``bytes_in`` / ``bytes_out`` / ``total_ms`` after
        the write).  ``t_recv`` is the frame-arrival clock reading;
        the gap to dispatch start is the entry's ``queue_ms``.
        """
        telemetry = self.telemetry
        t0 = time.perf_counter()
        op = frame.get("op")
        op_label = op if isinstance(op, str) and op.isidentifier() else "bad"
        hangup = False
        outcome = "ok"
        request = None
        trace_id = None
        req_tracer = None
        token = None
        if telemetry is not None and telemetry.trace:
            trace_id = protocol.frame_trace_id(frame)
            if trace_id is not None:
                req_tracer = obs_trace.Tracer()
                token = obs_trace.swap(req_tracer)
        try:
            try:
                with obs_trace.span(
                    "serve.request", op=op_label, trace=trace_id or ""
                ):
                    with obs_trace.span("serve.parse"):
                        request = protocol.parse_request(frame)
                    with obs_trace.span("serve.answer", op=request.op):
                        handler = getattr(self, f"_op_{request.op}")
                        result = handler(request)
                response = ok_envelope(request.req_id, result)
                if isinstance(request, protocol.ShutdownRequest):
                    hangup = True
            except ProtocolError as exc:
                outcome = exc.code
                self._tick(f"serve.error.{exc.code}")
                response = error_envelope(
                    _frame_id(frame), exc.code, str(exc)
                )
            except UnknownInstanceError as exc:
                outcome = E_UNKNOWN_INSTANCE
                self._tick(f"serve.error.{E_UNKNOWN_INSTANCE}")
                response = error_envelope(
                    _frame_id(frame), E_UNKNOWN_INSTANCE, str(exc)
                )
            except UnknownPinError as exc:
                outcome = E_UNKNOWN_PIN
                self._tick(f"serve.error.{E_UNKNOWN_PIN}")
                response = error_envelope(
                    _frame_id(frame), E_UNKNOWN_PIN, str(exc)
                )
            except Exception as exc:  # noqa: BLE001 -- the envelope boundary
                outcome = E_SERVER_ERROR
                self._tick(f"serve.error.{E_SERVER_ERROR}")
                response = error_envelope(
                    _frame_id(frame),
                    E_SERVER_ERROR,
                    f"{type(exc).__name__}: {exc}",
                )
        finally:
            if token is not None:
                obs_trace.restore(token)
        dt = time.perf_counter() - t0
        self._observe(op_label, dt)
        report = None
        if telemetry is not None:
            telemetry.observe(op_label, dt, error=outcome != "ok")
            if req_tracer is not None:
                response[protocol.TRACE_FIELD] = {
                    "id": trace_id,
                    "spans": req_tracer.snapshot(),
                }
            if telemetry.access_log is not None:
                design = getattr(request, "design", None)
                if design is None:
                    # The usual single-session daemon: requests omit
                    # the design name, the log still carries it.
                    with self._sessions_lock:
                        if len(self.sessions) == 1:
                            design = next(iter(self.sessions))
                entry = {
                    "op": op_label,
                    "id": _frame_id(frame),
                    "design": design,
                    "trace": trace_id,
                    "outcome": outcome,
                    "queue_ms": round((t0 - t_recv) * 1e3, 3)
                    if t_recv is not None
                    else 0.0,
                    "handle_ms": round(dt * 1e3, 3),
                }
                trace_doc = None
                if req_tracer is not None:
                    trace_doc = functools.partial(
                        obs_trace.chrome_trace, req_tracer
                    )
                report = (entry, trace_doc)
        try:
            blob = protocol.encode_frame(response)
        except FrameError as exc:
            self._tick(f"serve.error.{exc.code}")
            blob = protocol.encode_frame(
                error_envelope(_frame_id(frame), exc.code, str(exc))
            )
        return blob, hangup, report

    # -- operations ----------------------------------------------------------

    def _op_load_design(self, request) -> dict:
        if not self.allow_load:
            raise ProtocolError(
                "this server does not accept load_design",
                code=protocol.E_BAD_REQUEST,
            )
        from repro.lefdef import parse_def, parse_lef

        with self._sessions_lock:
            if request.design in self.sessions:
                session = self.sessions[request.design]
                return {
                    "design": request.design,
                    "loaded": False,
                    "generation": session.snapshot.generation,
                }
        try:
            with open(request.lef) as handle:
                lef_text = handle.read()
            with open(request.def_path) as handle:
                def_text = handle.read()
        except OSError as exc:
            raise ProtocolError(
                f"cannot read design inputs: {exc}",
                code=protocol.E_BAD_REQUEST,
            ) from exc
        tech, masters = parse_lef(lef_text)
        design = parse_def(def_text, tech, masters)
        config = PaafConfig(jobs=request.jobs, cache_dir=request.cache_dir)
        session = DesignSession(request.design, design, config)
        self.add_session(session)
        return {
            "design": request.design,
            "loaded": True,
            "generation": session.snapshot.generation,
            "analyze_seconds": round(session.analyze_seconds, 6),
        }

    def _op_query(self, request) -> dict:
        session = self._session_for(request.design)
        snap = session.snapshot
        answer = session.query(request.instance, request.pin, snap=snap)
        return {
            "design": session.name,
            "answer": answer_to_wire(answer, snap.generation),
        }

    def _op_query_batch(self, request) -> dict:
        session = self._session_for(request.design)
        snap = session.snapshot
        answers = session.query_batch(request.pins, snap=snap)
        return {
            "design": session.name,
            "generation": snap.generation,
            "answers": [
                answer_to_wire(a, snap.generation) for a in answers
            ],
        }

    def _op_move_instance(self, request) -> dict:
        session = self._session_for(request.design)
        generation = session.move_instance(
            request.instance, request.x, request.y
        )
        self._tick("serve.moves.applied")
        return {
            "design": session.name,
            "generation": generation,
            "update_seconds": round(session.inc.last_update_seconds, 6),
        }

    def _op_stats(self, request) -> dict:
        with self._sessions_lock:
            sessions = {
                name: session.stats()
                for name, session in sorted(self.sessions.items())
            }
        with self._metrics_lock:
            counters = dict(self.registry.counters)
        out = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sessions": sessions,
            "counters": counters,
        }
        if self.telemetry is not None:
            out["red"] = self.telemetry.red_snapshot()
        return out

    def _op_health(self, request) -> dict:
        with self._sessions_lock:
            names = sorted(self.sessions)
        out = {
            "status": "draining" if self._stop.is_set() else "ok",
            "protocol": protocol.PROTOCOL,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sessions": names,
        }
        if self.telemetry is not None:
            out["slo"] = self.telemetry.slo_report()
        return out

    def _op_metrics(self, request) -> dict:
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_server_metrics(self),
        }

    def _op_shutdown(self, request) -> dict:
        # Acknowledge first; the drain starts on a helper thread so
        # this handler can still flush its response frame.
        threading.Thread(
            target=self.stop, name="pao-drain", daemon=True
        ).start()
        return {"draining": True}

    # -- metrics helpers -----------------------------------------------------

    def _tick(self, name: str) -> None:
        with self._metrics_lock:
            self.registry.incr(name)

    def _observe(self, op_label: str, seconds: float) -> None:
        with self._metrics_lock:
            self.registry.incr(f"serve.request.{op_label}")
            self.registry.observe(f"serve.latency.{op_label}", seconds)


#: Numeric encoding of SLO states for the Prometheus gauges.
_SLO_STATE_VALUE = {"ok": 0, "degraded": 1, "breached": 2}


def render_server_metrics(server: OracleServer) -> str:
    """Render the daemon's full Prometheus exposition.

    The registry families come from
    :func:`~repro.obs.metrics.render_prometheus`; per-session gauges
    are always appended (labelled by design); when telemetry is
    attached, per-op RED series (``serve_red_*`` labelled by op,
    quantiles as a summary) and SLO state gauges follow.  Both the
    ``metrics`` wire op and the HTTP sidecar's ``GET /metrics``
    serve this text; ``parse_prometheus`` validates it.
    """
    with server._metrics_lock:
        text = render_prometheus(server.registry)
    lines = [text.rstrip("\n")] if text.strip() else []
    with server._sessions_lock:
        stats = {
            name: session.stats()
            for name, session in sorted(server.sessions.items())
        }
    for metric, key in (
        ("serve_session_generation", "generation"),
        ("serve_session_answers", "served_pins"),
        ("serve_session_cache_entries", "cache_entries"),
    ):
        lines.append(f"# TYPE {metric} gauge")
        for name, row in stats.items():
            label = prom_label_value(name)
            lines.append(f'{metric}{{design="{label}"}} {row[key]}')
    telemetry = server.telemetry
    if telemetry is not None:
        red = telemetry.red_snapshot()
        for metric, key in (
            ("serve_red_requests_total", "count"),
            ("serve_red_errors_total", "errors"),
        ):
            lines.append(f"# TYPE {metric} counter")
            for op, snap in red.items():
                label = prom_label_value(op)
                lines.append(f'{metric}{{op="{label}"}} {snap[key]}')
        lines.append("# TYPE serve_red_qps gauge")
        for op, snap in red.items():
            label = prom_label_value(op)
            lines.append(f'serve_red_qps{{op="{label}"}} {snap["qps"]}')
        lines.append("# TYPE serve_red_latency_ms summary")
        for op, snap in red.items():
            label = prom_label_value(op)
            for quantile, key in (
                ("0.5", "p50_ms"),
                ("0.95", "p95_ms"),
                ("0.99", "p99_ms"),
            ):
                value = snap.get(key)
                if value is None:
                    continue
                lines.append(
                    f'serve_red_latency_ms{{op="{label}",'
                    f'quantile="{quantile}"}} {value}'
                )
        report = telemetry.slo_report(red)
        lines.append("# TYPE serve_slo_state gauge")
        lines.append(
            f"serve_slo_state {_SLO_STATE_VALUE[report['state']]}"
        )
        lines.append("# TYPE serve_slo_objective_state gauge")
        for row in report["objectives"]:
            label = prom_label_value(row["name"])
            lines.append(
                f'serve_slo_objective_state{{objective="{label}"}} '
                f"{_SLO_STATE_VALUE[row['state']]}"
            )
    return "\n".join(lines) + "\n"


def _frame_id(frame: dict) -> int:
    """Best-effort correlation id of a possibly malformed frame."""
    req_id = frame.get("id", 0)
    if isinstance(req_id, bool) or not isinstance(req_id, int):
        return 0
    return req_id


def _close_quietly(sock) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _send_quietly(wfile, obj: dict) -> None:
    try:
        protocol.write_frame(wfile, obj)
    except (FrameError, OSError):
        pass
