"""The ``repro.serve/v1`` wire protocol.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by a UTF-8 JSON object.  Every request carries the protocol
version (``v``), a caller-chosen correlation id (``id``) and an
operation name (``op``); every response echoes the version and id and
is either an ``ok`` envelope wrapping a result object or an ``error``
envelope carrying a stable machine-readable ``code`` plus a human
message.  The codec is symmetric -- the daemon and the client library
share this module -- and self-defending: oversized, truncated or
non-JSON payloads raise :class:`FrameError` before any dispatch.

Request construction and validation live in typed dataclasses
(:class:`QueryRequest` and friends); :func:`parse_request` maps an
incoming frame onto the matching dataclass or raises
:class:`BadRequest` with the error code the server should answer
with.  Error codes mirror the in-process exception taxonomy of
:mod:`repro.core.oracle` (``unknown_instance`` <->
:class:`~repro.core.oracle.UnknownInstanceError`, ...), so a network
client and an in-process caller see the same failure vocabulary.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Optional

#: Protocol identifier every frame carries; version bumps are additive
#: (a v2 daemon keeps answering v1 frames).
PROTOCOL = "repro.serve/v1"

#: Hard payload ceiling: a 1,000-pin batch answer with alternatives is
#: well under 2 MiB; anything near this is a malformed or hostile
#: frame, not traffic.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Cap on pins per ``query_batch`` frame (clients chunk above this).
MAX_BATCH_PINS = 10_000

_HEADER = struct.Struct(">I")

#: Stable error codes of the ``error`` envelope.
E_BAD_REQUEST = "bad_request"
E_UNSUPPORTED_VERSION = "unsupported_version"
E_MALFORMED_FRAME = "malformed_frame"
E_OVERSIZED_FRAME = "oversized_frame"
E_UNKNOWN_OP = "unknown_op"
E_UNKNOWN_DESIGN = "unknown_design"
E_UNKNOWN_INSTANCE = "unknown_instance"
E_UNKNOWN_PIN = "unknown_pin"
E_OVERLOADED = "overloaded"
E_SHUTTING_DOWN = "shutting_down"
E_SERVER_ERROR = "server_error"


class ProtocolError(Exception):
    """Base class of wire-level failures; carries the envelope code."""

    code = E_SERVER_ERROR

    def __init__(self, message: str, code: str = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class FrameError(ProtocolError):
    """The byte stream is not a well-formed frame; close after reply."""

    code = E_MALFORMED_FRAME


class BadRequest(ProtocolError):
    """The frame decoded but is not a valid request."""

    code = E_BAD_REQUEST


# -- addresses ----------------------------------------------------------------


def parse_address(text: str) -> tuple:
    """Parse an endpoint into ``("unix", path)``/``("tcp", host, port)``.

    Accepted forms: ``unix:/run/pao.sock``, a bare filesystem path
    (anything containing ``/``, or any colon-free token -- a bare
    host without a port is never a valid endpoint), ``tcp:host:port``
    and ``host:port``.
    """
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return ("unix", path)
    if text.startswith("tcp:"):
        text = text[len("tcp:"):]
    elif "/" in text or ":" not in text:
        if not text:
            raise ValueError("empty address")
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cannot parse address {text!r}: expected unix:PATH, a "
            "filesystem path, or HOST:PORT"
        )
    try:
        return ("tcp", host, int(port))
    except ValueError:
        raise ValueError(
            f"cannot parse address {text!r}: port {port!r} is not an "
            "integer"
        ) from None


# -- frame codec --------------------------------------------------------------


def encode_frame(obj: dict) -> bytes:
    """Serialize one message into its length-prefixed wire form."""
    payload = json.dumps(
        obj, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit",
            code=E_OVERSIZED_FRAME,
        )
    return _HEADER.pack(len(payload)) + payload


def write_frame(wfile, obj: dict) -> None:
    """Encode ``obj`` and write it to a binary file-like object."""
    wfile.write(encode_frame(obj))
    wfile.flush()


def read_frame_ex(rfile) -> tuple:
    """Read one frame, returning ``(obj, wire_bytes)``.

    ``obj`` is None on a clean EOF at a frame boundary (the peer
    closed between requests); ``wire_bytes`` counts header plus
    payload as read off the stream (the access log's ``bytes_in``).
    Raises :class:`FrameError` on a truncated, oversized or
    non-JSON-object payload.
    """
    header = rfile.read(_HEADER.size)
    if not header:
        return None, 0
    if len(header) < _HEADER.size:
        raise FrameError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit",
            code=E_OVERSIZED_FRAME,
        )
    payload = b""
    while len(payload) < length:
        chunk = rfile.read(length - len(payload))
        if not chunk:
            raise FrameError(
                f"truncated payload: got {len(payload)} of {length} bytes"
            )
        payload += chunk
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("payload is not a JSON object")
    return obj, _HEADER.size + length


def read_frame(rfile) -> Optional[dict]:
    """Read one frame (see :func:`read_frame_ex`); byte count dropped."""
    obj, _ = read_frame_ex(rfile)
    return obj


# -- trace context ------------------------------------------------------------
#
# Trace propagation is additive within v1: a tracing client stamps a
# compact ``trace`` object into the request frame and a telemetry
# server echoes its server-side span buffer back under the same key
# in the response.  :func:`parse_request` reads only the fields it
# knows, so a v1 server without telemetry ignores the request stamp,
# and a v1 client without tracing ignores the response spans -- old
# and new peers interoperate in both directions.

#: Frame key carrying the trace context (requests) / spans (responses).
TRACE_FIELD = "trace"


def stamp_trace(frame: dict, trace_id: str) -> dict:
    """Stamp a client trace context into a request frame."""
    frame[TRACE_FIELD] = {"id": trace_id}
    return frame


def frame_trace_id(frame: dict) -> Optional[str]:
    """Extract the trace id from a frame, or None if absent/invalid."""
    context = frame.get(TRACE_FIELD)
    if isinstance(context, dict):
        trace_id = context.get("id")
        if isinstance(trace_id, str) and trace_id:
            return trace_id
    return None


# -- typed requests -----------------------------------------------------------


@dataclass
class Request:
    """Base request: correlation id plus optional session name."""

    op = None
    req_id: int = 0

    def to_wire(self) -> dict:
        """Render this request as a frame object."""
        body = {"v": PROTOCOL, "id": self.req_id, "op": self.op}
        body.update(self._fields())
        return body

    def _fields(self) -> dict:
        return {}


@dataclass
class LoadDesignRequest(Request):
    """Load a LEF/DEF pair into a named session (server-side paths)."""

    op = "load_design"
    design: str = ""
    lef: str = ""
    def_path: str = ""
    cache_dir: Optional[str] = None
    jobs: int = 1

    def _fields(self) -> dict:
        return {
            "design": self.design,
            "lef": self.lef,
            "def": self.def_path,
            "cache_dir": self.cache_dir,
            "jobs": self.jobs,
        }


@dataclass
class QueryRequest(Request):
    """Answer one instance pin."""

    op = "query"
    design: Optional[str] = None
    instance: str = ""
    pin: str = ""

    def _fields(self) -> dict:
        return {
            "design": self.design,
            "instance": self.instance,
            "pin": self.pin,
        }


@dataclass
class QueryBatchRequest(Request):
    """Answer many instance pins in one frame (one snapshot)."""

    op = "query_batch"
    design: Optional[str] = None
    pins: list = field(default_factory=list)

    def _fields(self) -> dict:
        return {
            "design": self.design,
            "pins": [[inst, pin] for inst, pin in self.pins],
        }


@dataclass
class MoveInstanceRequest(Request):
    """Move an instance; routed through ``IncrementalPinAccess``."""

    op = "move_instance"
    design: Optional[str] = None
    instance: str = ""
    x: int = 0
    y: int = 0

    def _fields(self) -> dict:
        return {
            "design": self.design,
            "instance": self.instance,
            "x": self.x,
            "y": self.y,
        }


@dataclass
class StatsRequest(Request):
    """Server + per-session statistics."""

    op = "stats"


@dataclass
class HealthRequest(Request):
    """Liveness probe; never touches a session."""

    op = "health"


@dataclass
class MetricsRequest(Request):
    """Prometheus text exposition of the server registry."""

    op = "metrics"


@dataclass
class ShutdownRequest(Request):
    """Ask the daemon to drain and exit."""

    op = "shutdown"


_REQUEST_TYPES = {
    cls.op: cls
    for cls in (
        LoadDesignRequest,
        QueryRequest,
        QueryBatchRequest,
        MoveInstanceRequest,
        StatsRequest,
        HealthRequest,
        MetricsRequest,
        ShutdownRequest,
    )
}


def _require_str(obj: dict, key: str, allow_none: bool = False):
    value = obj.get(key)
    if value is None and allow_none:
        return None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {key!r} must be a non-empty string")
    return value


def _require_int(obj: dict, key: str, default=None) -> int:
    value = obj.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {key!r} must be an integer")
    return value


def parse_request(obj: dict) -> Request:
    """Map a decoded frame onto its typed request, validating fields."""
    version = obj.get("v")
    if version != PROTOCOL:
        raise BadRequest(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL})",
            code=E_UNSUPPORTED_VERSION,
        )
    req_id = obj.get("id", 0)
    if isinstance(req_id, bool) or not isinstance(req_id, int):
        raise BadRequest("field 'id' must be an integer")
    op = obj.get("op")
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise BadRequest(f"unknown op {op!r}", code=E_UNKNOWN_OP)
    if cls is LoadDesignRequest:
        return LoadDesignRequest(
            req_id=req_id,
            design=_require_str(obj, "design"),
            lef=_require_str(obj, "lef"),
            def_path=_require_str(obj, "def"),
            cache_dir=_require_str(obj, "cache_dir", allow_none=True),
            jobs=_require_int(obj, "jobs", default=1),
        )
    if cls is QueryRequest:
        return QueryRequest(
            req_id=req_id,
            design=_require_str(obj, "design", allow_none=True),
            instance=_require_str(obj, "instance"),
            pin=_require_str(obj, "pin"),
        )
    if cls is QueryBatchRequest:
        pins = obj.get("pins")
        if not isinstance(pins, list):
            raise BadRequest("field 'pins' must be a list")
        if len(pins) > MAX_BATCH_PINS:
            raise BadRequest(
                f"batch of {len(pins)} pins exceeds the "
                f"{MAX_BATCH_PINS}-pin limit"
            )
        parsed = []
        for item in pins:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not all(isinstance(part, str) and part for part in item)
            ):
                raise BadRequest(
                    "each batch entry must be an [instance, pin] pair "
                    "of non-empty strings"
                )
            parsed.append((item[0], item[1]))
        return QueryBatchRequest(
            req_id=req_id,
            design=_require_str(obj, "design", allow_none=True),
            pins=parsed,
        )
    if cls is MoveInstanceRequest:
        return MoveInstanceRequest(
            req_id=req_id,
            design=_require_str(obj, "design", allow_none=True),
            instance=_require_str(obj, "instance"),
            x=_require_int(obj, "x"),
            y=_require_int(obj, "y"),
        )
    return cls(req_id=req_id)


# -- response envelopes -------------------------------------------------------


def ok_envelope(req_id: int, result: dict) -> dict:
    """Build a success response frame."""
    return {"v": PROTOCOL, "id": req_id, "ok": True, "result": result}


def error_envelope(req_id: int, code: str, message: str) -> dict:
    """Build an error response frame."""
    return {
        "v": PROTOCOL,
        "id": req_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# -- answer serialization -----------------------------------------------------


def ap_to_wire(ap) -> Optional[dict]:
    """Render an :class:`~repro.core.apgen.AccessPoint` for the wire."""
    if ap is None:
        return None
    return {
        "x": ap.x,
        "y": ap.y,
        "layer": ap.layer_name,
        "pref_type": int(ap.pref_type),
        "nonpref_type": int(ap.nonpref_type),
        "vias": list(ap.valid_vias),
        "planar": [str(d) for d in ap.planar_dirs],
    }


def ap_from_wire(wire: Optional[dict]):
    """Reconstruct an :class:`~repro.core.apgen.AccessPoint` from the wire.

    Exact inverse of :func:`ap_to_wire`: ``ap_to_wire(ap_from_wire(w))
    == w`` for every well-formed payload, which is what lets a remote
    consumer (the comparator's serve-backed routing flow) assert
    bit-identity against an in-process oracle.
    """
    if wire is None:
        return None
    from repro.core.apgen import AccessPoint
    from repro.core.coords import CoordType

    return AccessPoint(
        x=wire["x"],
        y=wire["y"],
        layer_name=wire["layer"],
        pref_type=CoordType(wire["pref_type"]),
        nonpref_type=CoordType(wire["nonpref_type"]),
        valid_vias=list(wire["vias"]),
        planar_dirs=list(wire["planar"]),
    )


def answer_to_wire(answer, generation: int) -> dict:
    """Render a :class:`~repro.core.oracle.PinAccessAnswer`.

    ``generation`` stamps which published snapshot produced the
    answer; every answer of one batch carries the same generation (the
    torn-read test's observable).
    """
    return {
        "instance": answer.instance_name,
        "pin": answer.pin_name,
        "generation": generation,
        "accessible": answer.accessible,
        "selected": ap_to_wire(answer.selected),
        "alternatives": [ap_to_wire(ap) for ap in answer.alternatives],
    }
