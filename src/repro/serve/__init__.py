"""repro.serve: the pin access oracle as a long-lived service.

The paper's framing is an *oracle* -- analyze once, answer "where can
I land on this pin, legally?" forever after.  In-process that is
:class:`~repro.core.oracle.PinAccessOracle`; this package is the same
contract across a socket, so placement-optimization loops (the
paper's Experiment 2 motivation) query one warm, analyzed design
instead of each paying full import + analysis cost:

* :mod:`repro.serve.protocol` -- the versioned, length-prefixed JSON
  wire protocol (``repro.serve/v1``) with typed requests and stable
  error codes.
* :mod:`repro.serve.session` -- one served design: warm incremental
  analysis behind immutable published snapshots (lock-free reads,
  serialized edits, atomic generation swaps).
* :mod:`repro.serve.server` -- the threaded TCP/Unix-socket daemon:
  backpressure, timeouts, graceful drain, Prometheus metrics, and
  the optional :class:`~repro.serve.server.ServeTelemetry` bundle
  (per-op RED windows, SLO evaluation, access log, wire tracing).
* :mod:`repro.serve.httpexport` -- the stdlib HTTP sidecar exposing
  ``/metrics``, ``/healthz`` and ``/slo.json`` to plain scrapers.
* :mod:`repro.serve.client` -- the blocking client library behind the
  ``repro serve`` / ``repro query`` / ``repro top`` CLI subcommands;
  with ``trace=True`` each request stitches client and server spans
  into one Chrome-tracing track.
"""

from repro.serve.client import ConnectionFailed, OracleClient, ServerError
from repro.serve.httpexport import HttpExport
from repro.serve.protocol import (
    PROTOCOL,
    BadRequest,
    FrameError,
    ProtocolError,
    parse_address,
)
from repro.serve.server import (
    OracleServer,
    ServeTelemetry,
    render_server_metrics,
)
from repro.serve.session import DesignSession, Snapshot

__all__ = [
    "PROTOCOL",
    "BadRequest",
    "ConnectionFailed",
    "DesignSession",
    "FrameError",
    "HttpExport",
    "OracleClient",
    "OracleServer",
    "ProtocolError",
    "ServeTelemetry",
    "ServerError",
    "Snapshot",
    "parse_address",
    "render_server_metrics",
]
