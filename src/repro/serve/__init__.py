"""repro.serve: the pin access oracle as a long-lived service.

The paper's framing is an *oracle* -- analyze once, answer "where can
I land on this pin, legally?" forever after.  In-process that is
:class:`~repro.core.oracle.PinAccessOracle`; this package is the same
contract across a socket, so placement-optimization loops (the
paper's Experiment 2 motivation) query one warm, analyzed design
instead of each paying full import + analysis cost:

* :mod:`repro.serve.protocol` -- the versioned, length-prefixed JSON
  wire protocol (``repro.serve/v1``) with typed requests and stable
  error codes.
* :mod:`repro.serve.session` -- one served design: warm incremental
  analysis behind immutable published snapshots (lock-free reads,
  serialized edits, atomic generation swaps).
* :mod:`repro.serve.server` -- the threaded TCP/Unix-socket daemon:
  backpressure, timeouts, graceful drain, Prometheus metrics.
* :mod:`repro.serve.client` -- the blocking client library behind the
  ``repro serve`` / ``repro query`` CLI subcommands.
"""

from repro.serve.client import ConnectionFailed, OracleClient, ServerError
from repro.serve.protocol import (
    PROTOCOL,
    BadRequest,
    FrameError,
    ProtocolError,
    parse_address,
)
from repro.serve.server import OracleServer
from repro.serve.session import DesignSession, Snapshot

__all__ = [
    "PROTOCOL",
    "BadRequest",
    "ConnectionFailed",
    "DesignSession",
    "FrameError",
    "OracleClient",
    "OracleServer",
    "ProtocolError",
    "ServerError",
    "Snapshot",
    "parse_address",
]
