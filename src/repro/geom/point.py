"""Integer 2-D points."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True, slots=True)
class Point:
    """An immutable integer point in DBU.

    Points order lexicographically by ``(x, y)``, which gives the
    left-to-right, bottom-to-top ordering used throughout the pin access
    flow (pin ordering, deterministic iteration).
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"({self.x}, {self.y})"


def manhattan_distance(a: Point, b: Point) -> int:
    """Return the L1 (Manhattan) distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)
