"""DEF placement orientations and the master-to-design transform.

A component in DEF is placed with one of eight orientations.  The
transform maps a point in *master* coordinates (origin at the master's
lower-left corner) to *design* coordinates such that the transformed
bounding box's lower-left lands on the placement location, which is the
DEF convention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geom.point import Point
from repro.geom.rect import Rect


class Orientation(enum.Enum):
    """DEF component orientations (LEF/DEF 5.8 names in comments)."""

    R0 = "N"      # north
    R90 = "W"     # west
    R180 = "S"    # south
    R270 = "E"    # east
    MY = "FN"     # flipped north  (mirror about the y axis)
    MX = "FS"     # flipped south  (mirror about the x axis)
    MX90 = "FW"   # flipped west
    MY90 = "FE"   # flipped east

    @staticmethod
    def from_def_name(name: str) -> "Orientation":
        """Parse a DEF orientation keyword (N, S, W, E, FN, FS, FW, FE)."""
        for orient in Orientation:
            if orient.value == name:
                return orient
        raise ValueError(f"unknown DEF orientation {name!r}")

    @property
    def def_name(self) -> str:
        """Return the DEF keyword for this orientation."""
        return self.value

    @property
    def swaps_axes(self) -> bool:
        """Return True if width and height exchange under this orientation."""
        return self in (
            Orientation.R90,
            Orientation.R270,
            Orientation.MX90,
            Orientation.MY90,
        )


@dataclass(frozen=True)
class Transform:
    """Maps master coordinates to design coordinates.

    ``offset`` is the DEF placement point; ``width``/``height`` are the
    master's dimensions (pre-orientation).
    """

    offset: Point
    orient: Orientation
    width: int
    height: int

    def apply_point(self, p: Point) -> Point:
        """Transform a master-space point into design space."""
        x, y = p.x, p.y
        w, h = self.width, self.height
        o = self.orient
        if o is Orientation.R0:
            tx, ty = x, y
        elif o is Orientation.R180:
            tx, ty = w - x, h - y
        elif o is Orientation.R90:
            tx, ty = h - y, x
        elif o is Orientation.R270:
            tx, ty = y, w - x
        elif o is Orientation.MY:
            tx, ty = w - x, y
        elif o is Orientation.MX:
            tx, ty = x, h - y
        elif o is Orientation.MX90:
            tx, ty = y, x
        elif o is Orientation.MY90:
            tx, ty = h - y, w - x
        else:  # pragma: no cover - enum is closed
            raise AssertionError(o)
        return Point(tx + self.offset.x, ty + self.offset.y)

    def apply_rect(self, r: Rect) -> Rect:
        """Transform a master-space rect into design space."""
        a = self.apply_point(Point(r.xlo, r.ylo))
        b = self.apply_point(Point(r.xhi, r.yhi))
        return Rect.from_points(a, b)

    @property
    def placed_width(self) -> int:
        """Return the design-space width of the placed master."""
        return self.height if self.orient.swaps_axes else self.width

    @property
    def placed_height(self) -> int:
        """Return the design-space height of the placed master."""
        return self.width if self.orient.swaps_axes else self.height

    def bbox(self) -> Rect:
        """Return the design-space bounding box of the placed master."""
        return Rect(
            self.offset.x,
            self.offset.y,
            self.offset.x + self.placed_width,
            self.offset.y + self.placed_height,
        )
