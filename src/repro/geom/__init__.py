"""Manhattan geometry substrate for the PAO reproduction.

All coordinates are integers in database units (DBU); by convention
1000 DBU = 1 micron, matching DEF.  Every shape in the library is
rectilinear: points, axis-aligned rectangles, and rectilinear polygons
represented as unions of rectangles.

The package provides:

* :class:`Point` -- immutable 2-D integer point.
* :class:`Interval` -- closed 1-D integer interval.
* :class:`Rect` -- axis-aligned rectangle with the full set of
  intersection / bloat / distance predicates used by the DRC engine.
* :class:`RectilinearPolygon` / :func:`merge_rects` -- union-of-rects
  polygon with boundary extraction (needed for min-step checks).
* :func:`maximal_rectangles` -- all maximal rectangles of a rectilinear
  polygon (needed for shape-center coordinate generation, paper Sec. II-C).
* :class:`Orientation` / :class:`Transform` -- DEF placement orientations
  (R0/R90/R180/R270/MX/MY/MX90/MY90) applied to points and rects.
* :class:`GridIndex` -- bucketed spatial index used for region queries.
"""

from repro.geom.point import Point, manhattan_distance
from repro.geom.interval import Interval
from repro.geom.rect import Rect
from repro.geom.polygon import RectilinearPolygon, merge_rects, boundary_edges
from repro.geom.maxrect import maximal_rectangles
from repro.geom.transform import Orientation, Transform
from repro.geom.spatial import GridIndex

__all__ = [
    "Point",
    "manhattan_distance",
    "Interval",
    "Rect",
    "RectilinearPolygon",
    "merge_rects",
    "boundary_edges",
    "maximal_rectangles",
    "Orientation",
    "Transform",
    "GridIndex",
]
