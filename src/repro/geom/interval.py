"""Closed 1-D integer intervals.

Intervals are the workhorse of Manhattan DRC: parallel run length,
span overlap and projection distance are all interval computations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lo {self.lo} > hi {self.hi}")

    @property
    def length(self) -> int:
        """Return ``hi - lo`` (zero for a degenerate point interval)."""
        return self.hi - self.lo

    @property
    def center(self) -> int:
        """Return the midpoint, rounded toward ``lo``."""
        return (self.lo + self.hi) // 2

    def contains(self, value: int) -> bool:
        """Return True if ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return True if ``other`` lies entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return True if the closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def overlap_length(self, other: "Interval") -> int:
        """Return the length of the overlap, or a negative gap distance.

        A positive value is the parallel run length of two shapes whose
        spans are these intervals; a negative value is minus the gap
        between them; zero means the intervals abut or touch at a point.
        """
        return min(self.hi, other.hi) - max(self.lo, other.lo)

    def distance(self, other: "Interval") -> int:
        """Return the gap between the intervals (0 if they overlap/touch)."""
        return max(0, max(self.lo, other.lo) - min(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection; raises ValueError if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            raise ValueError(f"intervals {self} and {other} are disjoint")
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def bloated(self, amount: int) -> "Interval":
        """Return the interval grown by ``amount`` on both ends."""
        return Interval(self.lo - amount, self.hi + amount)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def union_intervals(intervals: list) -> list:
    """Merge a list of :class:`Interval` into disjoint sorted intervals.

    Touching intervals (``a.hi == b.lo``) are merged, matching the
    closed-interval semantics used for track spans and coverage tests.
    """
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if iv.lo <= last.hi:
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return merged
