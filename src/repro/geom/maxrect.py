"""Maximal rectangle enumeration for rectilinear polygons.

The paper's *shape-center* coordinate type (Sec. II-C) is defined on
"the maximum rectangles of the polygon(s) (all overlapping rectangles
that are maximal in area)".  A rectangle is *maximal* if it lies inside
the polygon and cannot be grown in any of the four directions without
leaving it.
"""

from __future__ import annotations

from repro.geom.polygon import RectilinearPolygon
from repro.geom.rect import Rect


def maximal_rectangles(poly: RectilinearPolygon) -> list:
    """Return every maximal rectangle of ``poly``.

    The algorithm enumerates candidate y windows from the polygon's
    horizontal cut lines; for each window it intersects the covered x
    intervals of all slabs spanning the window, then keeps the result
    only if the window cannot be extended up or down.  Pin shapes have
    a handful of rectangles, so the O(#cuts^2 * #slabs) cost is
    negligible.
    """
    slabs = poly.merged
    ys = sorted({r.ylo for r in slabs} | {r.yhi for r in slabs})
    out = []
    for a in range(len(ys) - 1):
        for b in range(a + 1, len(ys)):
            ylo, yhi = ys[a], ys[b]
            xiv = _covered_x(slabs, ylo, yhi)
            for xlo, xhi in xiv:
                candidate = Rect(xlo, ylo, xhi, yhi)
                if _is_maximal(slabs, candidate, ys):
                    out.append(candidate)
    out.sort()
    return out


def _covered_x(slabs: list, ylo: int, yhi: int) -> list:
    """Return x intervals covered across the whole window [ylo, yhi]."""
    rows = []
    yprev = ylo
    # The window is covered iff every elementary slab band inside it is.
    bands = sorted({s.ylo for s in slabs} | {s.yhi for s in slabs})
    bands = [y for y in bands if ylo <= y <= yhi]
    if not bands or bands[0] != ylo or bands[-1] != yhi:
        return []
    for b0, b1 in zip(bands, bands[1:]):
        mid = (b0 + b1) / 2.0
        ivs = sorted(
            (s.xlo, s.xhi) for s in slabs if s.ylo < mid < s.yhi
        )
        if not ivs:
            return []
        rows.append(ivs)
        yprev = b1
    # Intersect the per-band interval sets.
    current = rows[0]
    for row in rows[1:]:
        current = _intersect_interval_lists(current, row)
        if not current:
            return []
    return current


def _intersect_interval_lists(a: list, b: list) -> list:
    """Intersect two sorted disjoint (lo, hi) interval lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _is_maximal(slabs: list, candidate: Rect, ys: list) -> bool:
    """Return True if ``candidate`` cannot be grown in any direction."""
    # Horizontal growth is impossible by construction (intervals are
    # maximal), so only check vertical extension by one elementary band.
    below = [y for y in ys if y < candidate.ylo]
    above = [y for y in ys if y > candidate.yhi]
    if below:
        ext = _covered_x(slabs, below[-1], candidate.yhi)
        if any(lo <= candidate.xlo and candidate.xhi <= hi for lo, hi in ext):
            return False
    if above:
        ext = _covered_x(slabs, candidate.ylo, above[0])
        if any(lo <= candidate.xlo and candidate.xhi <= hi for lo, hi in ext):
            return False
    return True
