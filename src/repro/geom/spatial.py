"""Bucketed spatial index for region queries.

The DRC engine and the router both need "give me every shape whose
bounding box intersects this window" queries over tens of thousands of
rectangles.  A uniform grid of buckets is simple, deterministic and
fast for the IC layout case where shapes are small relative to the die.
"""

from __future__ import annotations

from repro.geom.rect import Rect


class GridIndex:
    """A uniform-grid spatial index mapping rects to arbitrary payloads.

    ``bucket`` is the grid pitch in DBU.  Payloads are returned in
    insertion order (deduplicated), which keeps every query
    deterministic.
    """

    def __init__(self, bucket: int = 10000):
        if bucket <= 0:
            raise ValueError("bucket size must be positive")
        self._bucket = bucket
        self._cells = {}
        self._items = []  # (rect, payload) in insertion order

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, rect: Rect, payload) -> None:
        """Index ``payload`` under ``rect``."""
        idx = len(self._items)
        self._items.append((rect, payload))
        for key in self._keys(rect):
            self._cells.setdefault(key, []).append(idx)

    def query(self, window: Rect) -> list:
        """Return payloads whose rect intersects ``window`` (closed)."""
        seen = set()
        hits = []
        for key in self._keys(window):
            for idx in self._cells.get(key, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                rect, payload = self._items[idx]
                if rect.intersects(window):
                    hits.append((rect, payload))
        hits.sort(key=lambda pair: pair[0])
        return [payload for _, payload in hits]

    def query_pairs(self, window: Rect) -> list:
        """Like :meth:`query` but returns ``(rect, payload)`` pairs."""
        seen = set()
        hits = []
        for key in self._keys(window):
            for idx in self._cells.get(key, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                rect, payload = self._items[idx]
                if rect.intersects(window):
                    hits.append((rect, payload))
        hits.sort(key=lambda pair: pair[0])
        return hits

    def all_items(self) -> list:
        """Return every ``(rect, payload)`` pair in insertion order."""
        return list(self._items)

    def _keys(self, rect: Rect):
        b = self._bucket
        for ix in range(rect.xlo // b, rect.xhi // b + 1):
            for iy in range(rect.ylo // b, rect.yhi // b + 1):
                yield (ix, iy)
