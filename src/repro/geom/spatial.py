"""Bucketed spatial index for region queries.

The DRC engine and the router both need "give me every shape whose
bounding box intersects this window" queries over tens of thousands of
rectangles.  A uniform grid of buckets is simple, deterministic and
fast for the IC layout case where shapes are small relative to the die.
"""

from __future__ import annotations

from repro.geom.rect import Rect
from repro.perf.profile import tick


class GridIndex:
    """A uniform-grid spatial index mapping rects to arbitrary payloads.

    ``bucket`` is the grid pitch in DBU.  Queries return hits sorted
    by rectangle (ties broken by insertion order), which keeps every
    query deterministic.

    The sort order is precomputed: inserts mark the index dirty and
    the first query after a batch of inserts ranks all items once by
    rectangle.  Queries then dedup + order by plain integer rank --
    the per-query ``O(h log h)`` comparison sort over ``Rect``
    dataclasses (field-by-field tuple comparisons, the old hot spot)
    becomes an integer sort.  The build-then-query-heavily usage
    pattern of DRC contexts amortizes the ranking to nothing.
    """

    def __init__(self, bucket: int = 10000):
        if bucket <= 0:
            raise ValueError("bucket size must be positive")
        self._bucket = bucket
        self._cells = {}
        self._items = []  # (rect, payload) in insertion order
        self._order = None  # item indices sorted by (rect, insertion)
        self._rank = None   # inverse permutation of _order

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, rect: Rect, payload) -> None:
        """Index ``payload`` under ``rect``."""
        idx = len(self._items)
        self._items.append((rect, payload))
        self._order = None
        for key in self._keys(rect):
            self._cells.setdefault(key, []).append(idx)

    def query(self, window: Rect) -> list:
        """Return payloads whose rect intersects ``window`` (closed)."""
        return [payload for _, payload in self.query_pairs(window)]

    def query_pairs(self, window: Rect) -> list:
        """Return ``(rect, payload)`` pairs intersecting ``window``."""
        tick("grid.query")
        if self._order is None:
            self._build_order()
        items = self._items
        rank = self._rank
        seen = set()
        ranks = []
        for key in self._keys(window):
            for idx in self._cells.get(key, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                if items[idx][0].intersects(window):
                    ranks.append(rank[idx])
        ranks.sort()
        order = self._order
        return [items[order[r]] for r in ranks]

    def _build_order(self) -> None:
        items = self._items
        # sorted() is stable, so equal rects keep insertion order --
        # exactly the tie-break the old per-query pair sort produced.
        self._order = sorted(
            range(len(items)), key=lambda i: items[i][0]
        )
        rank = [0] * len(items)
        for position, idx in enumerate(self._order):
            rank[idx] = position
        self._rank = rank

    def all_items(self) -> list:
        """Return every ``(rect, payload)`` pair in insertion order."""
        return list(self._items)

    def _keys(self, rect: Rect):
        b = self._bucket
        for ix in range(rect.xlo // b, rect.xhi // b + 1):
            for iy in range(rect.ylo // b, rect.yhi // b + 1):
                yield (ix, iy)
