"""Axis-aligned integer rectangles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.interval import Interval
from repro.geom.point import Point


@dataclass(frozen=True, order=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Degenerate rectangles (zero width or height) are permitted; they
    appear as track segments and via cut centerlines.  All DRC distance
    predicates treat rectangles as closed sets, matching LEF/DEF
    conventions where abutting shapes are connected.
    """

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"malformed rect ({self.xlo}, {self.ylo}, "
                f"{self.xhi}, {self.yhi})"
            )

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Return the bounding rectangle of two corner points."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def centered_at(x: int, y: int, width: int, height: int) -> "Rect":
        """Return a ``width x height`` rect centered at ``(x, y)``.

        Odd sizes round the low side down, which matches how via
        enclosures with odd overhang land on an integer grid.
        """
        return Rect(
            x - width // 2,
            y - height // 2,
            x - width // 2 + width,
            y - height // 2 + height,
        )

    # -- accessors --------------------------------------------------------

    @property
    def width(self) -> int:
        """Return the x extent."""
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        """Return the y extent."""
        return self.yhi - self.ylo

    @property
    def min_dim(self) -> int:
        """Return the smaller of width and height (the DRC 'width')."""
        return min(self.width, self.height)

    @property
    def max_dim(self) -> int:
        """Return the larger of width and height."""
        return max(self.width, self.height)

    @property
    def area(self) -> int:
        """Return width * height."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Return the center point (rounded toward the low corner)."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    @property
    def xspan(self) -> Interval:
        """Return the x interval."""
        return Interval(self.xlo, self.xhi)

    @property
    def yspan(self) -> Interval:
        """Return the y interval."""
        return Interval(self.ylo, self.yhi)

    def corners(self) -> list:
        """Return the four corner points, counterclockwise from low-left."""
        return [
            Point(self.xlo, self.ylo),
            Point(self.xhi, self.ylo),
            Point(self.xhi, self.yhi),
            Point(self.xlo, self.yhi),
        ]

    # -- predicates -------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Return True if ``p`` is inside or on the boundary."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """Return True if ``other`` lies entirely inside this rect."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True if the closed rectangles share at least a point."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """Return True if the open interiors intersect (area overlap)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    # -- construction of derived rects -------------------------------------

    def intersection(self, other: "Rect") -> "Rect":
        """Return the intersection rect; raises ValueError if disjoint."""
        if not self.intersects(other):
            raise ValueError(f"rects {self} and {other} do not intersect")
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def hull(self, other: "Rect") -> "Rect":
        """Return the smallest rect containing both."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def bloated(self, amount: int) -> "Rect":
        """Return the rect grown (or shrunk, if negative) by ``amount``."""
        return Rect(
            self.xlo - amount,
            self.ylo - amount,
            self.xhi + amount,
            self.yhi + amount,
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a copy moved by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    # -- metric -------------------------------------------------------------

    def distance(self, other: "Rect") -> int:
        """Return the Euclidean-free Manhattan-style DRC distance.

        For rectangles with overlapping spans in one axis this is the
        gap in the other axis; for diagonally separated rectangles it
        is the Euclidean corner-to-corner distance rounded down, which
        is how LEF spacing is measured for corner-to-corner cases.
        """
        dx = self.xspan.distance(other.xspan)
        dy = self.yspan.distance(other.yspan)
        if dx and dy:
            return int((dx * dx + dy * dy) ** 0.5)
        return max(dx, dy)

    def prl(self, other: "Rect") -> int:
        """Return the parallel run length between two rects.

        The PRL is the larger of the two span overlaps; a negative
        value means the rects are diagonal to each other.  This is the
        quantity looked up in LEF ``SPACINGTABLE PARALLELRUNLENGTH``.
        """
        return max(
            self.xspan.overlap_length(other.xspan),
            self.yspan.overlap_length(other.yspan),
        )

    def __str__(self) -> str:
        return f"({self.xlo}, {self.ylo}) - ({self.xhi}, {self.yhi})"
