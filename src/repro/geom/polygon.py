"""Rectilinear polygons as unions of rectangles.

Pin shapes in LEF are given as one or more (possibly overlapping)
rectangles per layer.  The DRC engine needs two derived views:

* a *disjoint decomposition* (:func:`merge_rects`) for area and coverage
  computations, and
* the *outer boundary* (:func:`boundary_edges`) as ordered edge loops,
  which is what min-step checking walks (paper Figure 3: a via
  enclosure that partially overhangs a pin shape creates short boundary
  edges, i.e. min-step violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.interval import Interval, union_intervals
from repro.geom.point import Point
from repro.geom.rect import Rect


def merge_rects(rects: list) -> list:
    """Decompose the union of ``rects`` into disjoint horizontal slabs.

    Returns a list of non-overlapping :class:`Rect` whose union equals
    the union of the inputs.  Slabs are maximal in x and split at every
    distinct y coordinate of the input, sorted bottom-to-top then
    left-to-right, so the output is deterministic.
    """
    if not rects:
        return []
    ys = sorted({r.ylo for r in rects} | {r.yhi for r in rects})
    slabs = []
    for ylo, yhi in zip(ys, ys[1:]):
        ymid = (ylo + yhi) / 2.0
        xivs = [
            Interval(r.xlo, r.xhi)
            for r in rects
            if r.ylo < ymid < r.yhi
        ]
        for iv in union_intervals(xivs):
            slabs.append(Rect(iv.lo, ylo, iv.hi, yhi))
    return _coalesce_slabs(slabs)


def _coalesce_slabs(slabs: list) -> list:
    """Vertically merge slabs that share identical x spans and abut in y."""
    by_xspan = {}
    for slab in slabs:
        by_xspan.setdefault((slab.xlo, slab.xhi), []).append(slab)
    merged = []
    for (xlo, xhi), group in by_xspan.items():
        group.sort(key=lambda r: r.ylo)
        current = group[0]
        for nxt in group[1:]:
            if nxt.ylo == current.yhi:
                current = Rect(xlo, current.ylo, xhi, nxt.yhi)
            else:
                merged.append(current)
                current = nxt
        merged.append(current)
    merged.sort(key=lambda r: (r.ylo, r.xlo))
    return merged


@dataclass
class _Edge:
    """A directed boundary edge with the interior on its left."""

    start: Point
    end: Point


def boundary_edges(rects: list) -> list:
    """Return the boundary loops of the union of ``rects``.

    Each loop is a list of :class:`Point` vertices in order, with the
    polygon interior on the left of the direction of travel (outer
    loops counterclockwise, hole loops clockwise).  Consecutive
    collinear edges are merged, so every returned edge is a genuine
    boundary edge with a corner at each end — exactly what min-step
    checking needs.
    """
    if not rects:
        return []
    xs = sorted({r.xlo for r in rects} | {r.xhi for r in rects})
    ys = sorted({r.ylo for r in rects} | {r.yhi for r in rects})

    def covered(i: int, j: int) -> bool:
        """Return True if elementary cell (i, j) is inside the union."""
        if i < 0 or j < 0 or i >= len(xs) - 1 or j >= len(ys) - 1:
            return False
        cx = (xs[i] + xs[i + 1]) / 2.0
        cy = (ys[j] + ys[j + 1]) / 2.0
        return any(r.xlo < cx < r.xhi and r.ylo < cy < r.yhi for r in rects)

    cover = [
        [covered(i, j) for j in range(len(ys) - 1)] for i in range(len(xs) - 1)
    ]

    segments = []
    # Horizontal boundary segments along y = ys[j].
    for i in range(len(xs) - 1):
        for j in range(len(ys)):
            above = cover[i][j] if j < len(ys) - 1 else False
            below = cover[i][j - 1] if j > 0 else False
            if above and not below:
                segments.append(
                    _Edge(Point(xs[i], ys[j]), Point(xs[i + 1], ys[j]))
                )
            elif below and not above:
                segments.append(
                    _Edge(Point(xs[i + 1], ys[j]), Point(xs[i], ys[j]))
                )
    # Vertical boundary segments along x = xs[i].
    for i in range(len(xs)):
        for j in range(len(ys) - 1):
            right = cover[i][j] if i < len(xs) - 1 else False
            left = cover[i - 1][j] if i > 0 else False
            if left and not right:
                segments.append(
                    _Edge(Point(xs[i], ys[j]), Point(xs[i], ys[j + 1]))
                )
            elif right and not left:
                segments.append(
                    _Edge(Point(xs[i], ys[j + 1]), Point(xs[i], ys[j]))
                )

    return _stitch_loops(segments)


def _stitch_loops(segments: list) -> list:
    """Stitch directed segments into closed vertex loops."""
    outgoing = {}
    for seg in segments:
        outgoing.setdefault(seg.start, []).append(seg)
    loops = []
    used = set()
    for seg in segments:
        if id(seg) in used:
            continue
        loop = [seg.start]
        current = seg
        while True:
            used.add(id(current))
            loop.append(current.end)
            if current.end == loop[0]:
                break
            candidates = [
                s for s in outgoing.get(current.end, []) if id(s) not in used
            ]
            if not candidates:
                break
            # At a degenerate 4-way corner prefer the sharpest left turn so
            # distinct loops never get cross-stitched.
            current = min(
                candidates, key=lambda s: _turn_key(current, s)
            )
        loops.append(_merge_collinear(loop))
    return loops


def _turn_key(incoming: _Edge, outgoing: _Edge) -> int:
    """Rank outgoing edges: left turn < straight < right turn."""
    din = (_sign(incoming.end.x - incoming.start.x),
           _sign(incoming.end.y - incoming.start.y))
    dout = (_sign(outgoing.end.x - outgoing.start.x),
            _sign(outgoing.end.y - outgoing.start.y))
    cross = din[0] * dout[1] - din[1] * dout[0]
    # cross > 0 is a left turn (interior stays left), 0 straight, < 0 right.
    return -cross


def _sign(v: int) -> int:
    if v > 0:
        return 1
    if v < 0:
        return -1
    return 0


def _merge_collinear(loop: list) -> list:
    """Drop intermediate vertices on straight runs; loop is closed."""
    if len(loop) < 3:
        return loop
    pts = loop[:-1]  # drop the duplicated closing vertex
    merged = []
    n = len(pts)
    for k in range(n):
        prev_pt = pts[k - 1]
        cur = pts[k]
        nxt = pts[(k + 1) % n]
        collinear = (prev_pt.x == cur.x == nxt.x) or (
            prev_pt.y == cur.y == nxt.y
        )
        if not collinear:
            merged.append(cur)
    return merged


@dataclass
class RectilinearPolygon:
    """The union of a set of rectangles, with cached derived views.

    This is the shape model for pins and merged metal: LEF pins supply
    overlapping rectangles; the polygon exposes the disjoint
    decomposition, union area, bounding box, point membership and
    boundary loops.
    """

    rects: list
    _merged: list = field(default=None, repr=False, compare=False)
    _loops: list = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.rects:
            raise ValueError("polygon requires at least one rect")

    @property
    def merged(self) -> list:
        """Return the disjoint slab decomposition (cached)."""
        if self._merged is None:
            self._merged = merge_rects(self.rects)
        return self._merged

    @property
    def loops(self) -> list:
        """Return the boundary loops (cached)."""
        if self._loops is None:
            self._loops = boundary_edges(self.rects)
        return self._loops

    @property
    def bbox(self) -> Rect:
        """Return the bounding rectangle of the union."""
        r = self.rects[0]
        xlo, ylo, xhi, yhi = r.xlo, r.ylo, r.xhi, r.yhi
        for r in self.rects[1:]:
            xlo = min(xlo, r.xlo)
            ylo = min(ylo, r.ylo)
            xhi = max(xhi, r.xhi)
            yhi = max(yhi, r.yhi)
        return Rect(xlo, ylo, xhi, yhi)

    @property
    def area(self) -> int:
        """Return the union area."""
        return sum(r.area for r in self.merged)

    def contains_point(self, p: Point) -> bool:
        """Return True if ``p`` lies inside or on the union boundary."""
        return any(r.contains_point(p) for r in self.rects)

    def contains_rect(self, rect: Rect) -> bool:
        """Return True if ``rect`` lies entirely inside the union.

        Checked against the slab decomposition: the part of ``rect``
        not yet covered must shrink to nothing.
        """
        remaining = [rect]
        for slab in self.merged:
            nxt = []
            for piece in remaining:
                if not piece.intersects(slab):
                    nxt.append(piece)
                    continue
                nxt.extend(_subtract(piece, slab))
            remaining = nxt
            if not remaining:
                return True
        return not remaining

    def is_single_rect(self) -> bool:
        """Return True if the union is exactly one rectangle."""
        return len(self.merged) == 1


def _subtract(piece: Rect, hole: Rect) -> list:
    """Return ``piece`` minus ``hole`` as up to four rects."""
    out = []
    inter = piece.intersection(hole)
    if inter.ylo > piece.ylo:
        out.append(Rect(piece.xlo, piece.ylo, piece.xhi, inter.ylo))
    if inter.yhi < piece.yhi:
        out.append(Rect(piece.xlo, inter.yhi, piece.xhi, piece.yhi))
    if inter.xlo > piece.xlo:
        out.append(Rect(piece.xlo, inter.ylo, inter.xlo, inter.yhi))
    if inter.xhi < piece.xhi:
        out.append(Rect(inter.xhi, inter.ylo, piece.xhi, inter.yhi))
    return [r for r in out if r.width > 0 and r.height > 0]
