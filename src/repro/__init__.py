"""PAO: a pin access oracle for detailed routing.

A full reproduction of Kahng, Wang and Xu, *The Tao of PAO: Anatomy of
a Pin Access Oracle for Detailed Routing* (DAC 2020): the three-step
dynamic-programming pin access analysis framework (PAAF), every
substrate it depends on (Manhattan geometry, technology/design
database, LEF/DEF I/O, a TritonRoute-style DRC engine, a track-graph
detailed router), a synthetic ISPD-2018-like benchmark suite, and the
legacy baseline it is compared against.

Quickstart::

    from repro import build_testcase, PinAccessFramework

    design = build_testcase("ispd18_test1", scale=0.01)
    result = PinAccessFramework(design).run()
    print(result.total_access_points, "access points,",
          len(result.failed_pins()), "failed pins")
"""

from repro.core import (
    AccessPattern,
    AccessPoint,
    CoordType,
    IncrementalPinAccess,
    LegacyPinAccess,
    PaafConfig,
    PinAccessFramework,
    PinAccessOracle,
    PinAccessResult,
    evaluate_failed_pins,
    unique_instances,
)
from repro.bench import build_testcase, build_aes14, ISPD18_TESTCASES
from repro.db import CellMaster, Design, Instance, MasterPin, Net, Row
from repro.drc import DrcEngine, ShapeContext, Violation
from repro.geom import Orientation, Point, Rect
from repro.lefdef import parse_def, parse_lef, write_def, write_lef
from repro.route import DetailedRouter, count_route_drcs
from repro.tech import Technology, make_node

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "AccessPoint",
    "CoordType",
    "IncrementalPinAccess",
    "LegacyPinAccess",
    "PaafConfig",
    "PinAccessFramework",
    "PinAccessOracle",
    "PinAccessResult",
    "evaluate_failed_pins",
    "unique_instances",
    "build_testcase",
    "build_aes14",
    "ISPD18_TESTCASES",
    "CellMaster",
    "Design",
    "Instance",
    "MasterPin",
    "Net",
    "Row",
    "DrcEngine",
    "ShapeContext",
    "Violation",
    "Orientation",
    "Point",
    "Rect",
    "parse_def",
    "parse_lef",
    "write_def",
    "write_lef",
    "DetailedRouter",
    "count_route_drcs",
    "Technology",
    "make_node",
    "__version__",
]
