"""A* search over the routing grid."""

from __future__ import annotations

import heapq

WIRE_COST = 1
VIA_COST = 4


def astar_route(
    grid,
    sources: set,
    targets: set,
    net_name: str,
    bounds: tuple = None,
    max_expansions: int = 200000,
) -> list:
    """Find a node path from any source to any target.

    ``sources``/``targets`` are sets of grid nodes.  ``bounds`` is an
    optional ``(ilo, jlo, ihi, jhi)`` search window (grid indices);
    nodes outside it are not expanded.  Returns the node path
    (source..target inclusive) or None when no path exists within the
    expansion budget.
    """
    if not sources or not targets:
        return None
    target_points = [grid.point_of(t) for t in targets]
    target_set = set(targets)

    def heuristic(node):
        x, y = grid.point_of(node)
        best = min(
            abs(x - tx) + abs(y - ty) for tx, ty in target_points
        )
        # Scale distance to track steps so the heuristic stays
        # admissible against WIRE_COST-per-step edges.
        step = min(
            grid.xs[1] - grid.xs[0] if len(grid.xs) > 1 else 1,
            grid.ys[1] - grid.ys[0] if len(grid.ys) > 1 else 1,
        )
        return WIRE_COST * best // max(1, step)

    open_heap = []
    best_cost = {}
    came_from = {}
    counter = 0
    for s in sources:
        heapq.heappush(open_heap, (heuristic(s), counter, s))
        counter += 1
        best_cost[s] = 0

    expansions = 0
    while open_heap:
        _, _, node = heapq.heappop(open_heap)
        if node in target_set:
            return _reconstruct(came_from, node)
        expansions += 1
        if expansions > max_expansions:
            return None
        node_cost = best_cost[node]
        for neighbor, kind in grid.neighbors(node):
            if bounds is not None and not _inside(neighbor, bounds):
                continue
            if not grid.is_free(neighbor, net_name):
                continue
            if kind == "via":
                lower = node if node[0] < neighbor[0] else neighbor
                if not grid.via_allowed(lower, net_name):
                    continue
                edge = VIA_COST
            else:
                edge = WIRE_COST
            cost = node_cost + edge
            if cost < best_cost.get(neighbor, float("inf")):
                best_cost[neighbor] = cost
                came_from[neighbor] = node
                heapq.heappush(
                    open_heap, (cost + heuristic(neighbor), counter, neighbor)
                )
                counter += 1
    return None


def _inside(node, bounds) -> bool:
    _, i, j = node
    ilo, jlo, ihi, jhi = bounds
    return ilo <= i <= ihi and jlo <= j <= jhi


def _reconstruct(came_from, node) -> list:
    path = [node]
    while node in came_from:
        node = came_from[node]
        path.append(node)
    path.reverse()
    return path
