"""Detailed routing substrate for Experiment 3.

The paper's Experiment 3 integrates PAAF into TritonRoute and compares
the final routed design's DRC count against Dr. CU 2.0 (Figure 8).
Neither router is reproducible line-for-line in this scope, so this
package provides a track-graph A* detailed router that is held
constant across comparisons -- only the *pin access strategy* changes:

* ``pao`` mode consumes the access map selected by
  :class:`~repro.core.PinAccessFramework` (validated vias, pattern
  compatibility), and
* ``drcu`` mode consumes a Dr. CU-style access map (on-track crossing
  points with no design-rule-aware via model), produced by
  :class:`~repro.core.LegacyPinAccess`.

The routed layout is then scored by the same DRC engine, reproducing
the experiment's shape: orders of magnitude fewer DRCs with
access-aware routing.
"""

from repro.route.grid import RoutingGrid
from repro.route.astar import astar_route
from repro.route.router import DetailedRouter, RoutingResult, count_route_drcs

__all__ = [
    "RoutingGrid",
    "astar_route",
    "DetailedRouter",
    "RoutingResult",
    "count_route_drcs",
]
