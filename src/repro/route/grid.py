"""The routing grid: a 3-D track graph over M2..M6.

Nodes are intersections of vertical-layer tracks (x coordinates) with
horizontal-layer tracks (y coordinates), replicated across the routing
layers.  A node is addressed ``(l, i, j)`` where ``l`` is the layer
index within the grid's layer list and ``i``/``j`` index the x/y
coordinate arrays.  Edges run along each layer's preferred direction;
vias connect vertically adjacent layers at the same (i, j).
"""

from __future__ import annotations

import bisect

from repro.db.design import Design
from repro.tech.layer import RoutingDirection


class RoutingGrid:
    """Track graph geometry and occupancy for one design."""

    def __init__(self, design: Design, layer_names: list = None):
        self.design = design
        tech = design.tech
        if layer_names is None:
            layer_names = [
                l.name
                for l in tech.routing_layers()
                if l.name not in ("M1",)
            ][:5]  # M2..M6
        self.layers = [tech.layer(name) for name in layer_names]
        self._layer_index = {l.name: k for k, l in enumerate(self.layers)}

        self.xs = self._axis_coords(RoutingDirection.VERTICAL)
        self.ys = self._axis_coords(RoutingDirection.HORIZONTAL)
        if not self.xs or not self.ys:
            raise ValueError("design has no track patterns for the grid")
        # node -> net name
        self.occupancy = {}
        # cut-layer exclusion: (cut level, i, j) -> net name, bloated to
        # neighbors so foreign vias never land at adjacent track nodes
        # (cut spacing is larger than one track gap minus a cut width).
        self.via_occupancy = {}

    def _axis_coords(self, direction) -> list:
        coords = set()
        for layer in self.layers:
            if layer.direction is not direction:
                continue
            for pattern in self.design.track_patterns_on(layer.name):
                if pattern.direction is direction:
                    coords.update(pattern.coordinates())
        return sorted(coords)

    # -- geometry ------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Return the number of grid layers."""
        return len(self.layers)

    def layer_of(self, l: int):
        """Return the Layer object at grid level ``l``."""
        return self.layers[l]

    def level_of(self, layer_name: str) -> int:
        """Return the grid level of ``layer_name``."""
        return self._layer_index[layer_name]

    def point_of(self, node: tuple) -> tuple:
        """Return the (x, y) of node ``(l, i, j)``."""
        _, i, j = node
        return (self.xs[i], self.ys[j])

    def nearest_index(self, x: int, y: int) -> tuple:
        """Return the (i, j) of the grid point nearest (x, y)."""
        return (
            _nearest(self.xs, x),
            _nearest(self.ys, y),
        )

    def neighbors(self, node: tuple) -> list:
        """Yield (neighbor node, move kind) pairs.

        Moves along the layer's preferred direction cost as wire;
        level changes cost as vias.  ``kind`` is ``"wire"`` or
        ``"via"``.
        """
        l, i, j = node
        layer = self.layers[l]
        out = []
        if layer.is_horizontal:
            if i > 0:
                out.append(((l, i - 1, j), "wire"))
            if i < len(self.xs) - 1:
                out.append(((l, i + 1, j), "wire"))
        else:
            if j > 0:
                out.append(((l, i, j - 1), "wire"))
            if j < len(self.ys) - 1:
                out.append(((l, i, j + 1), "wire"))
        if l > 0:
            out.append(((l - 1, i, j), "via"))
        if l < len(self.layers) - 1:
            out.append(((l + 1, i, j), "via"))
        return out

    # -- occupancy -----------------------------------------------------------

    def is_free(self, node: tuple, net_name: str) -> bool:
        """Return True if ``node`` is unoccupied or owned by ``net_name``."""
        owner = self.occupancy.get(node)
        return owner is None or owner == net_name

    def via_allowed(self, lower_node: tuple, net_name: str) -> bool:
        """Return True if a via can be dropped at ``lower_node``.

        Checks the bloated cut exclusion zone, which keeps foreign
        cuts at least two track nodes apart (cut spacing safe).
        """
        l, i, j = lower_node
        owner = self.via_occupancy.get((l, i, j))
        return owner is None or owner == net_name

    def occupy_path(self, path: list, net_name: str) -> None:
        """Claim all nodes of ``path`` (and via exclusions) for a net."""
        for node in path:
            self.occupancy[node] = net_name
        for a, b in zip(path, path[1:]):
            if a[0] != b[0]:
                lower = a if a[0] < b[0] else b
                self._occupy_via(lower, net_name)

    def occupy_via_at(self, lower_node: tuple, net_name: str) -> None:
        """Claim a via exclusion zone at ``lower_node``."""
        self._occupy_via(lower_node, net_name)

    def _occupy_via(self, lower, net_name):
        l, i, j = lower
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                key = (l, i + di, j + dj)
                self.via_occupancy.setdefault(key, net_name)


def _nearest(coords: list, value: int) -> int:
    """Return the index of the coordinate nearest ``value``."""
    pos = bisect.bisect_left(coords, value)
    if pos == 0:
        return 0
    if pos == len(coords):
        return len(coords) - 1
    before = coords[pos - 1]
    after = coords[pos]
    return pos if after - value < value - before else pos - 1
