"""The detailed router and routed-design DRC scoring.

The router is deliberately held constant between comparison modes; it
consumes an *access map* ((instance, pin) -> access point) and connects
each net with track-aligned wires and vias:

1. every terminal enters the grid through its access point's up-via
   plus an escape stub to the nearest track intersection;
2. terminals are joined tree-style with A* over the occupancy-aware
   track graph (routed nets block later nets, node-disjoint).

Scoring re-checks the complete routed layout -- wires, vias, pins --
with the DRC engine, which is how Experiment 3 counts final DRCs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db.design import Design
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.geom.rect import Rect
from repro.route.astar import astar_route
from repro.route.grid import RoutingGrid


@dataclass
class RoutingResult:
    """Routed geometry plus bookkeeping."""

    wires: list = field(default_factory=list)      # (net, layer_name, Rect)
    vias: list = field(default_factory=list)       # (net, via_name, x, y)
    routed_nets: int = 0
    failed_nets: list = field(default_factory=list)
    unconnected_terms: int = 0
    runtime: float = 0.0

    @property
    def total_wirelength(self) -> int:
        """Return summed wire length (DBU)."""
        return sum(max(r.width, r.height) for _, _, r in self.wires)


class DetailedRouter:
    """Routes a design given an access map."""

    def __init__(self, design: Design, grid: RoutingGrid = None):
        self.design = design
        self.tech = design.tech
        self.grid = grid or RoutingGrid(design)

    def route(
        self,
        access_map: dict,
        max_nets: int = None,
        repair_min_area: bool = True,
        io_access: dict = None,
    ) -> RoutingResult:
        """Route every net; returns geometry and statistics.

        ``access_map`` maps (instance name, pin name) to the selected
        :class:`~repro.core.apgen.AccessPoint`; terminals without an
        entry are left unconnected (counted, as a real router would
        report pin access failures).  ``io_access`` optionally maps IO
        pin names to their selected access points: when given, IO
        terminals enter the grid at the chosen point (and a missing
        entry counts as an unconnected terminal); when ``None`` the
        router falls back to tapping every IO pin at its shape center.
        ``repair_min_area`` extends undersized isolated metal after
        routing (real routers patch min-area the same way).
        """
        result = RoutingResult()
        t0 = time.perf_counter()
        nets = list(self.design.nets.values())
        if max_nets is not None:
            nets = nets[:max_nets]
        # Pre-pass: reserve every terminal's grid entry node for its
        # net, so no other net's wire tramples an access point before
        # its owner routes (a real router's pin-blockage modeling).
        terminals_by_net = {}
        for net in nets:
            terminals = self._net_terminals(
                net, access_map, result, io_access
            )
            terminals_by_net[net.name] = terminals
            for access, node in terminals:
                self.grid.occupancy.setdefault(node, net.name)
                self.grid.occupy_via_at(node, net.name)
                self._reserve_offtrack_corridor(access, node, net.name)
        for net in nets:
            self._route_net(net, terminals_by_net[net.name], result)
        if repair_min_area:
            self._repair_min_area(result)
        result.runtime = time.perf_counter() - t0
        return result

    def _repair_min_area(self, result: RoutingResult) -> None:
        """Extend undersized isolated metal components to min area.

        Works per (net, layer) connected component (wires plus via
        enclosures); the longest wire of an undersized component grows
        symmetrically along its layer's preferred direction.
        """
        components = net_layer_components(self.design, result)
        wire_ids = {id(w): k for k, w in enumerate(result.wires)}
        for net_name, layer_name, members in components:
            layer = self.tech.layer(layer_name)
            if layer.min_area is None:
                continue
            area = _union_area(list(rect for _, rect in members))
            if area >= layer.min_area.min_area:
                continue
            deficit = layer.min_area.min_area - area
            grow = -(-deficit // max(1, layer.width)) + 2
            half = grow // 2 + 1
            die = self.design.die_area
            wires = [m for m in members if m[0] is not None]
            if wires:
                entry, rect = max(wires, key=lambda m: m[1].max_dim)
            else:
                # A bare via-enclosure island (the terminal landed
                # exactly on a grid node): patch metal over it, as a
                # real router's min-area fixer does.
                entry, rect = None, members[0][1]
            if layer.is_horizontal:
                extended = Rect(
                    max(die.xlo, rect.xlo - half),
                    rect.ylo,
                    min(die.xhi, rect.xhi + half),
                    rect.yhi,
                )
            else:
                extended = Rect(
                    rect.xlo,
                    max(die.ylo, rect.ylo - half),
                    rect.xhi,
                    min(die.yhi, rect.yhi + half),
                )
            if entry is None:
                result.wires.append((net_name, layer_name, extended))
            else:
                result.wires[wire_ids[id(entry)]] = (
                    net_name,
                    layer_name,
                    extended,
                )

    # -- internals ---------------------------------------------------------

    def _route_net(self, net, terminals, result) -> None:
        if len(terminals) < 2:
            return
        entry_nodes = []
        for ap, node in terminals:
            entry_nodes.append(node)
        bounds = self._search_bounds(entry_nodes, margin=12)

        tree = {terminals[0][1]}
        pending = [t for t in terminals[1:]]
        success = True
        for ap, node in pending:
            if node in tree:
                continue
            path = astar_route(self.grid, tree, {node}, net.name, bounds)
            if path is None:
                bounds_wide = self._search_bounds(entry_nodes, margin=40)
                path = astar_route(
                    self.grid, tree, {node}, net.name, bounds_wide
                )
            if path is None:
                success = False
                continue
            self.grid.occupy_path(path, net.name)
            self._emit_path(net.name, path, result)
            tree.update(path)
        for ap, node in terminals:
            self._emit_terminal(net.name, ap, node, result)
        if success:
            result.routed_nets += 1
        else:
            result.failed_nets.append(net.name)

    def _net_terminals(self, net, access_map, result, io_access=None) -> list:
        terminals = []
        seen_nodes = set()
        for inst_name, pin_name in net.terms:
            ap = access_map.get((inst_name, pin_name))
            if ap is None or not ap.has_via_access:
                result.unconnected_terms += 1
                continue
            # The terminal enters the grid on the access via's top
            # layer: M2 for standard-cell pins, higher for macro pins
            # (e.g. M4 above an M3 macro pin).
            via = self.tech.via(ap.primary_via)
            try:
                entry_level = self.grid.level_of(via.top_layer)
            except KeyError:
                result.unconnected_terms += 1
                continue
            node = self._entry_node(
                ap.x, ap.y, net.name, seen_nodes, entry_level
            )
            if node is None:
                result.unconnected_terms += 1
                continue
            seen_nodes.add(node)
            terminals.append((ap, node))
        for io_name in net.io_pins:
            io_pin = self.design.io_pins.get(io_name)
            if io_pin is None:
                continue
            if io_access is not None:
                # Flow-selected IO entry: the access analysis picked
                # the tap point; a pin it could not cover is a real
                # open, reported like any other access failure.
                io_ap = io_access.get(io_name)
                if io_ap is None:
                    result.unconnected_terms += 1
                    continue
                tap_x, tap_y = io_ap.x, io_ap.y
            else:
                center = io_pin.rect.center
                tap_x, tap_y = center.x, center.y
            try:
                io_level = self.grid.level_of(io_pin.layer_name)
            except KeyError:
                continue
            node = self._entry_node(
                tap_x, tap_y, net.name, seen_nodes, io_level
            )
            if node is not None:
                seen_nodes.add(node)
                terminals.append((_IoAccess(io_pin, tap_x, tap_y), node))
        return terminals

    def _entry_node(self, x, y, net_name, seen_nodes, entry_level=0):
        """Pick the nearest free (or own) grid node for a terminal.

        The nearest intersection may already be reserved by another
        net's terminal; spiral out over the immediate neighborhood.
        """
        i0, j0 = self.grid.nearest_index(x, y)
        best = None
        for di, dj in (
            (0, 0), (0, 1), (0, -1), (1, 0), (-1, 0),
            (1, 1), (1, -1), (-1, 1), (-1, -1),
            (0, 2), (0, -2), (2, 0), (-2, 0),
        ):
            i, j = i0 + di, j0 + dj
            if not (0 <= i < len(self.grid.xs) and 0 <= j < len(self.grid.ys)):
                continue
            node = (entry_level, i, j)
            if node in seen_nodes:
                continue
            if self.grid.is_free(node, net_name):
                best = node
                break
        return best

    def _reserve_offtrack_corridor(self, access, node, net_name) -> None:
        """Block the neighboring track when an AP sits off-track.

        An off-track access point's via enclosure reaches into the
        corridor of the adjacent track; a foreign wire routed there
        would violate spacing/EOL against it, so the adjacent node
        column (row, for horizontal entry layers) is reserved too.
        """
        if isinstance(access, _IoAccess):
            return
        l, i, j = node
        layer = self.grid.layer_of(l)
        # Interaction reach: enclosure half-extent + spacing + half wire.
        via = self.tech.via(access.primary_via)
        if layer.is_vertical:
            reach = (
                max(-via.top_enc.xlo, via.top_enc.xhi)
                + layer.min_spacing
                + layer.width // 2
            )
            for di in (-1, 1):
                ii = i + di
                if 0 <= ii < len(self.grid.xs) and abs(
                    self.grid.xs[ii] - access.x
                ) < reach:
                    # The enclosure is tall: block the corridor across
                    # the rows it spans.
                    for dj in (-1, 0, 1):
                        jj = j + dj
                        if 0 <= jj < len(self.grid.ys):
                            self.grid.occupancy.setdefault(
                                (l, ii, jj), net_name
                            )
        else:
            reach = (
                max(-via.top_enc.ylo, via.top_enc.yhi)
                + layer.min_spacing
                + layer.width // 2
            )
            for dj in (-1, 1):
                jj = j + dj
                if 0 <= jj < len(self.grid.ys) and abs(
                    self.grid.ys[jj] - access.y
                ) < reach:
                    for di in (-1, 0, 1):
                        ii = i + di
                        if 0 <= ii < len(self.grid.xs):
                            self.grid.occupancy.setdefault(
                                (l, ii, jj), net_name
                            )

    def _search_bounds(self, nodes, margin: int) -> tuple:
        ilo = min(n[1] for n in nodes) - margin
        ihi = max(n[1] for n in nodes) + margin
        jlo = min(n[2] for n in nodes) - margin
        jhi = max(n[2] for n in nodes) + margin
        return (
            max(0, ilo),
            max(0, jlo),
            min(len(self.grid.xs) - 1, ihi),
            min(len(self.grid.ys) - 1, jhi),
        )

    def _emit_path(self, net_name, path, result) -> None:
        """Convert a node path into wire rects and vias."""
        k = 0
        while k < len(path) - 1:
            a = path[k]
            b = path[k + 1]
            if a[0] != b[0]:
                lower = a if a[0] < b[0] else b
                layer = self.grid.layer_of(lower[0])
                via = self.tech.primary_via_from(layer.name)
                x, y = self.grid.point_of(lower)
                result.vias.append((net_name, via.name, x, y))
                k += 1
                continue
            # Extend the straight run as far as it goes.
            end = k + 1
            while (
                end + 1 < len(path)
                and path[end + 1][0] == a[0]
                and self._collinear(path[k], path[end + 1])
            ):
                end += 1
            self._emit_segment(net_name, path[k], path[end], result)
            k = end

    def _collinear(self, a, b) -> bool:
        return a[1] == b[1] or a[2] == b[2]

    def _emit_segment(self, net_name, a, b, result) -> None:
        layer = self.grid.layer_of(a[0])
        half = layer.width // 2
        xa, ya = self.grid.point_of(a)
        xb, yb = self.grid.point_of(b)
        rect = Rect(
            min(xa, xb) - half,
            min(ya, yb) - half,
            max(xa, xb) + half,
            max(ya, yb) + half,
        )
        result.wires.append((net_name, layer.name, rect))

    def _emit_terminal(self, net_name, access, node, result) -> None:
        """Emit the AP up-via (or IO tap) plus the escape stub."""
        gx, gy = self.grid.point_of(node)
        entry_layer = self.grid.layer_of(node[0])
        half = entry_layer.width // 2
        if isinstance(access, _IoAccess):
            sx, sy = access.x, access.y
        else:
            result.vias.append(
                (net_name, access.primary_via, access.x, access.y)
            )
            sx, sy = access.x, access.y
        # L-shaped escape stub on the entry layer: preferred-direction
        # leg first, then the jog.
        if (sx, sy) == (gx, gy):
            return
        if entry_layer.is_vertical:
            if sy != gy:
                result.wires.append(
                    (
                        net_name,
                        entry_layer.name,
                        Rect(
                            sx - half,
                            min(sy, gy) - half,
                            sx + half,
                            max(sy, gy) + half,
                        ),
                    )
                )
            if sx != gx:
                result.wires.append(
                    (
                        net_name,
                        entry_layer.name,
                        Rect(
                            min(sx, gx) - half,
                            gy - half,
                            max(sx, gx) + half,
                            gy + half,
                        ),
                    )
                )
        else:
            if sx != gx:
                result.wires.append(
                    (
                        net_name,
                        entry_layer.name,
                        Rect(
                            min(sx, gx) - half,
                            sy - half,
                            max(sx, gx) + half,
                            sy + half,
                        ),
                    )
                )
            if sy != gy:
                result.wires.append(
                    (
                        net_name,
                        entry_layer.name,
                        Rect(
                            gx - half,
                            min(sy, gy) - half,
                            gx + half,
                            max(sy, gy) + half,
                        ),
                    )
                )
        self.grid.occupancy.setdefault(node, net_name)


class _IoAccess:
    """Terminal adapter for IO pins (no up-via needed).

    ``x``/``y`` is the tap point: the flow-selected access point when
    one was provided, the shape center otherwise.
    """

    def __init__(self, io_pin, x=None, y=None):
        self.io_pin = io_pin
        center = io_pin.rect.center
        self.x = center.x if x is None else x
        self.y = center.y if y is None else y


def net_layer_components(design: Design, result: RoutingResult) -> list:
    """Group routed metal into per-(net, layer) connected components.

    Each member is ``(wire_tuple_or_None, rect)`` -- via enclosures
    join the component geometry but carry ``None`` (they cannot be
    resized).  Used for min-area accounting and repair.
    """
    # The lowest routing layer is the pin layer: enclosures there merge
    # with pin metal (not tracked here), so its min-area is the cell
    # library's responsibility and the layer is excluded.
    lowest = design.tech.routing_layers()[0].name
    groups = {}
    for wire in result.wires:
        net_name, layer_name, rect = wire
        if layer_name == lowest:
            continue
        groups.setdefault((net_name, layer_name), []).append((wire, rect))
    for net_name, via_name, x, y in result.vias:
        via = design.tech.via(via_name)
        if via.bottom_layer != lowest:
            groups.setdefault((net_name, via.bottom_layer), []).append(
                (None, via.bottom_at(x, y))
            )
        groups.setdefault((net_name, via.top_layer), []).append(
            (None, via.top_at(x, y))
        )
    out = []
    for (net_name, layer_name), members in groups.items():
        for component in _connected_components(members):
            out.append((net_name, layer_name, component))
    return out


def _connected_components(members: list) -> list:
    """Split (payload, rect) members into touching components."""
    parent = list(range(len(members)))

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            if members[i][1].intersects(members[j][1]):
                ra, rb = find(i), find(j)
                if ra != rb:
                    parent[ra] = rb
    buckets = {}
    for k in range(len(members)):
        buckets.setdefault(find(k), []).append(members[k])
    return list(buckets.values())


def _union_area(rects: list) -> int:
    from repro.geom.polygon import merge_rects

    return sum(r.area for r in merge_rects(rects))


def count_route_drcs(
    design: Design, result: RoutingResult, scope: str = "pin-access"
) -> list:
    """Score a routed design: return the deduplicated violation list.

    Builds the full context (design shapes + routed wires and vias,
    keyed by net) and re-checks the routed geometry.

    ``scope="pin-access"`` (default) checks the pin-access vias -- the
    up-vias landing on pins -- against everything around them: metal
    spacing and EOL on both enclosure layers, cut spacing, and min-step
    on the merged (pin + enclosure) metal.  This is the comparison
    paper Figure 8 draws between Dr. CU 2.0 and PAAF on the final
    routed design.

    ``scope="full"`` additionally checks every wire segment, which
    includes the wire-vs-wire noise floor of the simplified router
    substrate (identical in both comparison modes).
    """
    if scope not in ("pin-access", "full"):
        raise ValueError(f"unknown scope {scope!r}")
    engine = DrcEngine(design.tech)
    context = ShapeContext.from_design(design)
    for net_name, layer_name, rect in result.wires:
        context.add(layer_name, rect, net_name)
    via_shapes = []
    for net_name, via_name, x, y in result.vias:
        via = design.tech.via(via_name)
        context.add(via.bottom_layer, via.bottom_at(x, y), net_name)
        context.add(via.cut_layer, via.cut_at(x, y), net_name)
        context.add(via.top_layer, via.top_at(x, y), net_name)
        via_shapes.append((net_name, via, x, y))

    violations = []
    lowest = design.tech.routing_layers()[0].name
    if scope == "full":
        for net_name, layer_name, rect in result.wires:
            violations.extend(
                engine.check_metal_rect(
                    layer_name, rect, net_name, context, label=net_name
                )
            )
    for net_name, via, x, y in via_shapes:
        is_pin_via = via.bottom_layer == lowest
        if scope == "pin-access" and not is_pin_via:
            continue
        violations.extend(
            engine.check_via_placement(
                via,
                x,
                y,
                net_name,
                context,
                with_min_step=is_pin_via,
                label=net_name,
            )
        )
    if scope == "full":
        from repro.drc.minarea import check_min_area

        for net_name, layer_name, members in net_layer_components(
            design, result
        ):
            layer = design.tech.layer(layer_name)
            violations.extend(
                check_min_area(
                    layer, [rect for _, rect in members], label=net_name
                )
            )
    return DrcEngine.dedupe(violations)
