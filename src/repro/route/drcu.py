"""Dr. CU 2.0-style comparator mode (paper Experiment 3, Figure 8).

Dr. CU is correct-by-construction for wire-to-wire rules but, as the
paper's Figure 8 shows, its pin accesses on the ISPD-2018 suite leave
DRCs at the via-in-pin landing: the access model is an on-track
crossing point without a design-rule-aware via check.  That is exactly
the legacy strategy implemented by
:class:`~repro.core.baseline.LegacyPinAccess`, so the comparator mode
is: same router, access map from the legacy flow.
"""

from __future__ import annotations

from repro.core.baseline import LegacyPinAccess
from repro.db.design import Design


def drcu_access_map(design: Design) -> dict:
    """Return the Dr. CU-style access map for ``design``."""
    legacy = LegacyPinAccess(design)
    result = legacy.run()
    return legacy.access_map(result)
