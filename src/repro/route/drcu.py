"""Dr. CU 2.0-style comparator mode (paper Experiment 3, Figure 8).

Dr. CU is correct-by-construction for wire-to-wire rules but, as the
paper's Figure 8 shows, its pin accesses on the ISPD-2018 suite leave
DRCs at the via-in-pin landing: the access model is an on-track
crossing point without a design-rule-aware via check.  That is exactly
the legacy strategy implemented by
:class:`~repro.core.baseline.LegacyPinAccess`, so the comparator mode
is: same router, access map from the legacy flow.
"""

from __future__ import annotations

from repro.core.baseline import LegacyPinAccess
from repro.db.design import Design


def drcu_access_map(design: Design) -> dict:
    """Return the Dr. CU-style access map for ``design``."""
    legacy = LegacyPinAccess(design)
    result = legacy.run()
    return legacy.access_map(result)


def drcu_io_access_map(design: Design) -> dict:
    """Return the Dr. CU-style IO pin selection for ``design``.

    IO-pin parity with the PAO flow: the same naive on-track strategy
    the legacy flow uses on cell pins, first point per pin.  IO pins
    the strategy cannot reach (off-grid shapes with no on-track
    crossing) are absent from the map -- the comparator scores that
    coverage gap separately from cell-pin access quality.
    """
    from repro.core.baseline import legacy_io_access

    return {
        name: aps[0]
        for name, aps in legacy_io_access(design).items()
        if aps
    }
