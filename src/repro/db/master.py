"""Cell master (LEF MACRO) records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geom.polygon import RectilinearPolygon
from repro.geom.rect import Rect


class PinUse(enum.Enum):
    """LEF pin USE values the flow distinguishes."""

    SIGNAL = "SIGNAL"
    POWER = "POWER"
    GROUND = "GROUND"
    CLOCK = "CLOCK"


@dataclass
class MasterPin:
    """One pin of a cell master.

    ``shapes`` maps layer name to the list of rects of the pin on that
    layer (master coordinates).  Standard-cell signal pins live on M1
    in the benchmark suites; macro pins may sit higher.
    """

    name: str
    use: PinUse = PinUse.SIGNAL
    shapes: dict = field(default_factory=dict)

    def add_shape(self, layer_name: str, rect: Rect) -> None:
        """Add a rect on ``layer_name``."""
        self.shapes.setdefault(layer_name, []).append(rect)

    def layers(self) -> list:
        """Return the layer names this pin has shapes on, sorted."""
        return sorted(self.shapes)

    def rects_on(self, layer_name: str) -> list:
        """Return the pin rects on ``layer_name`` (empty if none)."""
        return list(self.shapes.get(layer_name, ()))

    def polygon_on(self, layer_name: str) -> RectilinearPolygon:
        """Return the pin shape on ``layer_name`` as a polygon."""
        rects = self.rects_on(layer_name)
        if not rects:
            raise KeyError(f"pin {self.name} has no shape on {layer_name}")
        return RectilinearPolygon(rects)

    @property
    def is_signal(self) -> bool:
        """Return True for signal pins (the ones needing access analysis)."""
        return self.use is PinUse.SIGNAL

    def bbox(self) -> Rect:
        """Return the bounding box over all layers."""
        rects = [r for shapes in self.shapes.values() for r in shapes]
        if not rects:
            raise ValueError(f"pin {self.name} has no shapes")
        box = rects[0]
        for r in rects[1:]:
            box = box.hull(r)
        return box


@dataclass
class Obstruction:
    """A blockage shape (LEF OBS) in master coordinates."""

    layer_name: str
    rect: Rect


@dataclass
class CellMaster:
    """A LEF MACRO: dimensions, pins and obstructions.

    ``is_macro`` distinguishes block macros (Table I's "#Macro cell")
    from standard cells; macros are not clustered in Step 3.
    """

    name: str
    width: int
    height: int
    pins: list = field(default_factory=list)
    obstructions: list = field(default_factory=list)
    site_name: str = ""
    is_macro: bool = False

    def __post_init__(self) -> None:
        self._pins_by_name = {p.name: p for p in self.pins}

    def add_pin(self, pin: MasterPin) -> MasterPin:
        """Register a pin."""
        if pin.name in self._pins_by_name:
            raise ValueError(f"duplicate pin {pin.name} in master {self.name}")
        self.pins.append(pin)
        self._pins_by_name[pin.name] = pin
        return pin

    def add_obstruction(self, obs: Obstruction) -> Obstruction:
        """Register an obstruction shape."""
        self.obstructions.append(obs)
        return obs

    def pin(self, name: str) -> MasterPin:
        """Return the pin named ``name``."""
        try:
            return self._pins_by_name[name]
        except KeyError:
            raise KeyError(
                f"master {self.name} has no pin named {name!r}"
            ) from None

    def signal_pins(self) -> list:
        """Return the signal pins, in declaration order."""
        return [p for p in self.pins if p.is_signal]

    @property
    def bbox(self) -> Rect:
        """Return the master's bounding box (origin at 0,0)."""
        return Rect(0, 0, self.width, self.height)

    def __str__(self) -> str:
        return f"CellMaster({self.name}, {self.width}x{self.height})"
