"""DEF TRACKS records.

A track pattern is an arithmetic progression of routing-track
coordinates on one layer in one direction.  Unique-instance signatures
(paper Sec. II-A) hash the *offsets of the instance origin to every
track pattern*, because those offsets determine which pin access
locations are on-track.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.layer import RoutingDirection


@dataclass(frozen=True)
class TrackPattern:
    """Tracks on ``layer_name``: ``start + i * step`` for i in [0, count).

    ``direction`` is the coordinate axis the values live on: a
    HORIZONTAL pattern fixes *y* coordinates (tracks run horizontally),
    a VERTICAL pattern fixes *x* coordinates.
    """

    layer_name: str
    direction: RoutingDirection
    start: int
    step: int
    count: int

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("track step must be positive")
        if self.count <= 0:
            raise ValueError("track count must be positive")

    @property
    def end(self) -> int:
        """Return the last track coordinate."""
        return self.start + (self.count - 1) * self.step

    def coordinates(self) -> list:
        """Return all track coordinates."""
        return [self.start + i * self.step for i in range(self.count)]

    def coords_in(self, lo: int, hi: int) -> list:
        """Return the track coordinates within the closed range [lo, hi]."""
        if hi < self.start or lo > self.end:
            return []
        first = max(0, -(-(lo - self.start) // self.step))  # ceil div
        last = min(self.count - 1, (hi - self.start) // self.step)
        return [
            self.start + i * self.step for i in range(first, last + 1)
        ]

    def half_track_coords_in(self, lo: int, hi: int) -> list:
        """Return midpoints between neighboring tracks within [lo, hi]."""
        half = TrackPattern(
            layer_name=self.layer_name,
            direction=self.direction,
            start=self.start + self.step // 2,
            step=self.step,
            count=max(1, self.count - 1),
        )
        return half.coords_in(lo, hi)

    def offset_of(self, coordinate: int) -> int:
        """Return ``coordinate`` modulo the track grid.

        Two instances whose origins have equal offsets to every track
        pattern see identical on-track geometry, which is exactly the
        unique-instance signature condition.
        """
        return (coordinate - self.start) % self.step
