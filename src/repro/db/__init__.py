"""Design database: cell masters, instances, tracks, rows, nets.

This is the DEF-side substrate.  A :class:`Design` ties a
:class:`~repro.tech.Technology` to placed :class:`Instance` objects of
:class:`CellMaster` definitions, row/site structure, track patterns and
nets -- everything the pin access framework consumes.
"""

from repro.db.master import CellMaster, MasterPin, Obstruction, PinUse
from repro.db.inst import Instance
from repro.db.tracks import TrackPattern
from repro.db.net import IOPin, Net
from repro.db.design import Design, Row

__all__ = [
    "CellMaster",
    "MasterPin",
    "Obstruction",
    "PinUse",
    "Instance",
    "TrackPattern",
    "Net",
    "IOPin",
    "Design",
    "Row",
]
