"""Nets and IO pins (DEF NETS / PINS)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.rect import Rect


@dataclass
class IOPin:
    """A top-level IO pin: a fixed shape on a routing layer."""

    name: str
    layer_name: str
    rect: Rect


@dataclass
class Net:
    """A net connecting instance pins and/or IO pins.

    ``terms`` is a list of ``(instance_name, pin_name)`` tuples;
    ``io_pins`` a list of IO pin names on this net.
    """

    name: str
    terms: list = field(default_factory=list)
    io_pins: list = field(default_factory=list)

    def add_term(self, instance_name: str, pin_name: str) -> None:
        """Attach an instance pin to the net."""
        self.terms.append((instance_name, pin_name))

    def add_io_pin(self, io_pin_name: str) -> None:
        """Attach a top-level IO pin to the net."""
        self.io_pins.append(io_pin_name)

    @property
    def degree(self) -> int:
        """Return the total number of terminals."""
        return len(self.terms) + len(self.io_pins)

    def __str__(self) -> str:
        return f"Net({self.name}, degree={self.degree})"
