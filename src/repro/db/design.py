"""The design container (DEF DESIGN)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.inst import Instance
from repro.db.master import CellMaster
from repro.db.net import IOPin, Net
from repro.db.tracks import TrackPattern
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.spatial import GridIndex
from repro.geom.transform import Orientation
from repro.tech.technology import Technology


@dataclass
class Row:
    """A DEF ROW: ``count`` sites starting at ``origin``.

    ``orient`` applies to every component placed in the row (standard
    row flipping alternates R0 / MX).
    """

    name: str
    origin: Point
    orient: Orientation
    count: int
    site_width: int
    site_height: int

    @property
    def bbox(self) -> Rect:
        """Return the row's bounding box."""
        return Rect(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.count * self.site_width,
            self.origin.y + self.site_height,
        )

    def site_x(self, site_index: int) -> int:
        """Return the x coordinate of site ``site_index``."""
        if not 0 <= site_index < self.count:
            raise IndexError(f"site {site_index} outside row {self.name}")
        return self.origin.x + site_index * self.site_width


class Design:
    """A placed design: technology, masters, instances, rows, tracks, nets.

    The design also owns the per-layer *fixed-shape* spatial indexes
    (pin shapes and obstructions of all placed instances, plus IO
    pins), which are the immovable context the DRC engine checks
    candidate vias against.
    """

    def __init__(self, name: str, tech: Technology):
        self.name = name
        self.tech = tech
        self.die_area = Rect(0, 0, 0, 0)
        self.core_origin = Point(0, 0)
        self.masters = {}
        self.instances = {}
        self.rows = []
        self.track_patterns = []
        self.nets = {}
        self.io_pins = {}
        self._shape_index = None  # layer name -> GridIndex
        self._net_of_term = None

    # -- construction ------------------------------------------------------

    def add_master(self, master: CellMaster) -> CellMaster:
        """Register a cell master."""
        if master.name in self.masters:
            raise ValueError(f"duplicate master {master.name}")
        self.masters[master.name] = master
        return master

    def add_instance(self, inst: Instance) -> Instance:
        """Place an instance; invalidates cached shape indexes."""
        if inst.name in self.instances:
            raise ValueError(f"duplicate instance {inst.name}")
        if inst.master.name not in self.masters:
            self.add_master(inst.master)
        self.instances[inst.name] = inst
        self._shape_index = None
        return inst

    def add_row(self, row: Row) -> Row:
        """Register a placement row."""
        self.rows.append(row)
        return row

    def add_track_pattern(self, pattern: TrackPattern) -> TrackPattern:
        """Register a track pattern."""
        if not self.tech.has_layer(pattern.layer_name):
            raise ValueError(
                f"track pattern on unknown layer {pattern.layer_name}"
            )
        self.track_patterns.append(pattern)
        return pattern

    def add_net(self, net: Net) -> Net:
        """Register a net."""
        if net.name in self.nets:
            raise ValueError(f"duplicate net {net.name}")
        self.nets[net.name] = net
        self._net_of_term = None
        return net

    def add_io_pin(self, pin: IOPin) -> IOPin:
        """Register a top-level IO pin."""
        if pin.name in self.io_pins:
            raise ValueError(f"duplicate IO pin {pin.name}")
        self.io_pins[pin.name] = pin
        self._shape_index = None
        return pin

    # -- queries -----------------------------------------------------------

    def instance(self, name: str) -> Instance:
        """Return the instance named ``name``."""
        try:
            return self.instances[name]
        except KeyError:
            raise KeyError(f"no instance named {name!r}") from None

    def track_patterns_on(self, layer_name: str) -> list:
        """Return the track patterns on ``layer_name``."""
        return [p for p in self.track_patterns if p.layer_name == layer_name]

    def net_of(self, instance_name: str, pin_name: str) -> Net:
        """Return the net attached to an instance pin, or None."""
        if self._net_of_term is None:
            self._net_of_term = {}
            for net in self.nets.values():
                for term in net.terms:
                    self._net_of_term[term] = net
        return self._net_of_term.get((instance_name, pin_name))

    def connected_pins(self) -> list:
        """Return all net-attached instance pins as (inst, pin) pairs.

        This is the population that Table III counts as "Total #Pins":
        every instance pin with a net attached must receive a DRC-clean
        access point.
        """
        out = []
        for net in self.nets.values():
            for inst_name, pin_name in net.terms:
                inst = self.instances.get(inst_name)
                if inst is not None:
                    out.append((inst, inst.master.pin(pin_name)))
        return out

    def shape_index(self, layer_name: str) -> GridIndex:
        """Return the fixed-shape index for ``layer_name``.

        Each payload is ``(kind, owner, pin_or_none)`` where kind is
        one of ``"pin"``, ``"obs"``, ``"io"``; owner is the instance
        (or IO pin) and pin the :class:`MasterPin` for pin shapes.
        Indexes are built lazily and invalidated by placement edits.
        """
        if self._shape_index is None:
            self._build_shape_index()
        if layer_name not in self._shape_index:
            if self.tech.site_width:
                bucket = max(1, self.tech.site_width * 8)
            else:
                bucket = 10000
            self._shape_index[layer_name] = GridIndex(bucket=bucket)
        return self._shape_index[layer_name]

    def _build_shape_index(self) -> None:
        if self.tech.site_width:
            bucket = max(1, self.tech.site_width * 8)
        else:
            bucket = 10000
        index = {}

        def index_for(layer_name: str) -> GridIndex:
            if layer_name not in index:
                index[layer_name] = GridIndex(bucket=bucket)
            return index[layer_name]

        for inst in self.instances.values():
            for pin, layer, rect in inst.all_pin_shapes():
                index_for(layer).insert(rect, ("pin", inst, pin))
            for layer, rect in inst.obstruction_rects():
                index_for(layer).insert(rect, ("obs", inst, None))
        for io_pin in self.io_pins.values():
            index_for(io_pin.layer_name).insert(
                io_pin.rect, ("io", io_pin, None)
            )
        self._shape_index = index

    def invalidate_shape_index(self) -> None:
        """Force shape indexes to rebuild (after moving instances)."""
        self._shape_index = None

    def row_clusters(self) -> list:
        """Group instances into per-row contiguous clusters.

        Returns a list of clusters; each cluster is a list of
        :class:`Instance` sorted left-to-right with no empty site
        between consecutive members (paper Sec. III-C: "each continuous
        chunk of instances (no empty site in between) forms a
        cluster").  Macros and unplaced-row instances form singleton
        clusters.

        A multi-height instance is a member of *every* row its bounding
        box covers, so its boundary conflicts against neighbors in the
        upper rows are seen too; the pattern selector keeps its choice
        consistent across those clusters.
        """
        site_h = self.tech.site_height or 0
        by_row_y = {}
        singletons = []
        for inst in self.instances.values():
            if inst.master.is_macro:
                singletons.append([inst])
                continue
            rows_covered = 1
            if site_h > 0:
                rows_covered = max(1, inst.bbox.height // site_h)
            for k in range(rows_covered):
                by_row_y.setdefault(
                    inst.location.y + k * site_h, []
                ).append(inst)
        clusters = []
        for y in sorted(by_row_y):
            insts = sorted(by_row_y[y], key=lambda i: i.location.x)
            current = [insts[0]]
            for inst in insts[1:]:
                prev = current[-1]
                if inst.location.x <= prev.location.x + prev.bbox.width:
                    current.append(inst)
                else:
                    clusters.append(current)
                    current = [inst]
            clusters.append(current)
        clusters.extend(singletons)
        return clusters

    # -- statistics ----------------------------------------------------------

    def stats(self) -> dict:
        """Return the Table I-style summary of this design."""
        std = sum(
            1 for i in self.instances.values() if not i.master.is_macro
        )
        macro = sum(1 for i in self.instances.values() if i.master.is_macro)
        die = self.die_area
        return {
            "name": self.name,
            "num_std_cells": std,
            "num_macros": macro,
            "num_nets": len(self.nets),
            "num_io_pins": len(self.io_pins),
            "num_layers": len(self.tech.routing_layers()),
            "die_mm": (
                self.tech.microns(die.width) / 1000.0,
                self.tech.microns(die.height) / 1000.0,
            ),
            "node": self.tech.name,
        }

    def __str__(self) -> str:
        return (
            f"Design({self.name}, {len(self.instances)} instances, "
            f"{len(self.nets)} nets)"
        )
