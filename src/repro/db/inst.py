"""Placed instances (DEF COMPONENTS)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.master import CellMaster
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.transform import Orientation, Transform


@dataclass
class Instance:
    """A placed component.

    ``location`` is the DEF placement point (lower-left of the placed
    bounding box); ``orient`` the DEF orientation.
    """

    name: str
    master: CellMaster
    location: Point
    orient: Orientation = Orientation.R0

    @property
    def transform(self) -> Transform:
        """Return the master-to-design transform for this placement."""
        return Transform(
            offset=self.location,
            orient=self.orient,
            width=self.master.width,
            height=self.master.height,
        )

    @property
    def bbox(self) -> Rect:
        """Return the placed bounding box in design coordinates."""
        return self.transform.bbox()

    def pin_rects(self, pin_name: str) -> dict:
        """Return design-space pin rects, keyed by layer name."""
        xf = self.transform
        pin = self.master.pin(pin_name)
        return {
            layer: [xf.apply_rect(r) for r in rects]
            for layer, rects in pin.shapes.items()
        }

    def all_pin_shapes(self) -> list:
        """Return (pin, layer_name, design-space rect) for all pins."""
        xf = self.transform
        out = []
        for pin in self.master.pins:
            for layer, rects in pin.shapes.items():
                for r in rects:
                    out.append((pin, layer, xf.apply_rect(r)))
        return out

    def obstruction_rects(self) -> list:
        """Return (layer_name, design-space rect) for all obstructions."""
        xf = self.transform
        return [
            (obs.layer_name, xf.apply_rect(obs.rect))
            for obs in self.master.obstructions
        ]

    def __str__(self) -> str:
        return (
            f"Instance({self.name}, {self.master.name}, "
            f"{self.location}, {self.orient.def_name})"
        )
