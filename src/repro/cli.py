"""Command-line interface: ``python -m repro <command>``.

The deployment surface a downstream user drives:

* ``generate`` -- emit a synthetic testcase as LEF + DEF.
* ``analyze``  -- run pin access analysis on a LEF/DEF pair and report
  the paper's Experiment 1/2 metrics.
* ``route``    -- route a LEF/DEF pair with PAAF or legacy access and
  report routed pin-access DRCs (Experiment 3).
* ``render``   -- draw the pin access view of a LEF/DEF pair as SVG.
* ``qa``       -- golden-result regression gates: ``snapshot``,
  ``check``, ``accept`` and ``diff`` over the committed corpus.
* ``sweep``    -- manifest-driven DSE sweeps: ``run`` a YAML/JSON
  spec into a resumable run directory, ``status`` it, and ``report``
  the trend with a regression gate against goldens and
  ``BENCH_*.json`` baselines.
* ``compare``  -- router-in-the-loop comparator (Experiment 3,
  Figures 8-9): ``run`` a case matrix through the in-process PAO,
  serve-backed PAO and legacy Dr. CU-style access flows, then
  ``report`` the DRC/opens/wirelength deltas gated against the
  committed ``goldens/compare`` corpus.
* ``serve``    -- host the analyzed design as a long-lived daemon
  (the ``repro.serve/v1`` protocol over TCP or a Unix socket), with
  optional request telemetry: per-op RED windows, SLO evaluation,
  access logging, slow-request trace spooling and an HTTP metrics
  sidecar.
* ``query``    -- client for a running daemon: pin queries, placement
  edits, stats/health/metrics scrapes and graceful shutdown;
  ``--timing`` prints the traced per-phase breakdown of each query.
* ``top``      -- live terminal dashboard over a running daemon:
  per-op QPS and latency quantiles, SLO state, session table.

User-facing failures (unreadable inputs, bad option values) exit
non-zero with a one-line message; tracebacks are reserved for bugs.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import build_testcase
from repro.core import (
    LegacyPinAccess,
    PaafConfig,
    PinAccessFramework,
    evaluate_failed_pins,
    unique_instances,
)
from repro.lefdef import parse_def, parse_lef, write_def, write_lef
from repro.report import format_table
from repro.route import DetailedRouter, count_route_drcs
from repro.route.drcu import drcu_access_map
from repro.viz import render_pin_access, render_routing


class CliError(Exception):
    """A user-facing failure: print the message, exit 2, no traceback."""


def main(argv: list = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    try:
        # argparse reports its own errors (unknown subcommand, an
        # invalid --paircheck-mode choice, ...) then raises SystemExit;
        # surface that as a return code so embedders never see a
        # traceback.
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAO: pin access oracle for detailed routing",
    )
    sub = parser.add_subparsers(dest="command")

    gen = sub.add_parser("generate", help="emit a testcase as LEF + DEF")
    gen.add_argument("testcase", help="e.g. ispd18_test1")
    gen.add_argument("--scale", type=float, default=0.01)
    gen.add_argument("--lef", required=True, help="output LEF path")
    gen.add_argument("--def", dest="def_path", required=True,
                     help="output DEF path")
    gen.set_defaults(handler=_cmd_generate)

    ana = sub.add_parser("analyze", help="run pin access analysis")
    _add_io_args(ana)
    ana.add_argument("--no-bca", action="store_true",
                     help="disable boundary-conflict awareness")
    ana.add_argument("--baseline", action="store_true",
                     help="run the legacy TrRte-style flow instead")
    ana.add_argument("--list-failed", action="store_true",
                     help="print each failed pin")
    ana.add_argument("-j", "--jobs", type=_job_count, default=1,
                     help="worker processes for steps 1-3 (0 = all cores)")
    ana.add_argument("--cache-dir",
                     help="persistent AP/pattern cache directory")
    ana.add_argument("--no-cache", action="store_true",
                     help="bypass the AP cache for this run")
    ana.add_argument("--profile", action="store_true",
                     help="collect hot-path counters into the stats")
    ana.add_argument("--paircheck-mode",
                     choices=("kernel", "engine", "verify"),
                     default="kernel",
                     help="via-pair check backend: precompiled kernel "
                          "tables, the DRC engine, or both cross-checked "
                          "(results are identical for all three)")
    ana.add_argument("--apcheck-mode",
                     choices=("array", "engine", "verify"),
                     default="array",
                     help="Step 1/3 candidate-check backend: compiled "
                          "occupancy tables, the DRC engine, or both "
                          "cross-checked (results are identical for "
                          "all three)")
    ana.add_argument("--stats-json",
                     help="write timings/stats JSON here ('-' for stdout)")
    ana.add_argument("--trace", action="store_true",
                     help="record structured spans (summary in stats)")
    ana.add_argument("--trace-out",
                     help="write the span tree as Chrome-trace JSON "
                          "(implies --trace)")
    ana.add_argument("--metrics-out",
                     help="write the merged metrics registry in "
                          "Prometheus text format (implies --profile)")
    ana.add_argument("--explain", metavar="JSONL",
                     help="write the decision-event stream "
                          "(repro.obs.events/v1 JSONL) for "
                          "'repro explain'")
    ana.set_defaults(handler=_cmd_analyze)

    exp = sub.add_parser(
        "explain",
        help="narrate why one instance pin got its access (obs events)",
    )
    _add_io_args(exp)
    exp.add_argument("target", metavar="INST/PIN",
                     help="instance and pin, e.g. u42/A")
    exp.add_argument("--events",
                     help="replay a saved repro.obs.events/v1 JSONL "
                          "stream instead of re-running the analysis")
    exp.add_argument("-j", "--jobs", type=_job_count, default=1,
                     help="worker processes when re-running (0 = all "
                          "cores)")
    exp.set_defaults(handler=_cmd_explain)

    rte = sub.add_parser("route", help="route and score pin-access DRCs")
    _add_io_args(rte)
    rte.add_argument("--access", choices=("pao", "legacy"), default="pao")
    rte.add_argument("--scope", choices=("pin-access", "full"),
                     default="pin-access")
    rte.add_argument("--svg", help="write the routed view to this SVG path")
    rte.add_argument("-j", "--jobs", type=_job_count, default=1,
                     help="analysis worker processes (0 = all cores)")
    rte.add_argument("--cache-dir",
                     help="persistent AP/pattern cache root (same cache "
                          "the other commands honor)")
    rte.add_argument("--apcheck-mode",
                     choices=("array", "engine", "verify"),
                     default="array",
                     help="Step 1/3 candidate backend")
    rte.add_argument("--paircheck-mode",
                     choices=("kernel", "engine", "verify"),
                     default="kernel",
                     help="via-pair backend")
    rte.set_defaults(handler=_cmd_route)

    ren = sub.add_parser("render", help="render the pin access view")
    _add_io_args(ren)
    ren.add_argument("--svg", required=True, help="output SVG path")
    ren.add_argument("--width", type=int, default=1000)
    ren.set_defaults(handler=_cmd_render)

    ste = sub.add_parser(
        "suite", help="reproduce the paper's Tables I-III on the suite"
    )
    ste.add_argument("--scale", type=float, default=0.004)
    ste.add_argument(
        "--testcases",
        nargs="*",
        default=None,
        help="subset of testcase names (default: all ten)",
    )
    ste.set_defaults(handler=_cmd_suite)

    srv = sub.add_parser(
        "serve",
        help="host a design as a long-lived pin access daemon",
    )
    _add_io_args(srv)
    srv.add_argument("--design", help="session name (default: design name)")
    _add_endpoint_args(srv)
    srv.add_argument("--cache-dir",
                     help="persistent AP cache: restart = cache load, "
                          "not re-analysis")
    srv.add_argument("-j", "--jobs", type=_job_count, default=1,
                     help="worker processes for the initial analysis "
                          "(0 = all cores)")
    srv.add_argument("--max-clients", type=int, default=32,
                     help="concurrent connection cap (excess get an "
                          "'overloaded' error)")
    srv.add_argument("--request-timeout", type=float, default=30.0,
                     help="per-connection idle/read timeout in seconds")
    srv.add_argument("--drain-seconds", type=float, default=5.0,
                     help="grace period for in-flight requests on "
                          "shutdown")
    srv.add_argument("--no-load", action="store_true",
                     help="refuse client load_design requests")
    srv.add_argument("--apcheck-mode",
                     choices=("array", "engine", "verify"),
                     default="array",
                     help="Step 1/3 candidate backend for the hosted "
                          "analyses")
    srv.add_argument("--telemetry", action="store_true",
                     help="enable request telemetry: per-op RED "
                          "windows, SLO evaluation in 'health', wire "
                          "trace propagation")
    srv.add_argument("--slo", dest="slo_path", metavar="JSON",
                     help="objective table (JSON list of {name, op, "
                          "signal, threshold}); implies --telemetry")
    srv.add_argument("--access-log", dest="access_log", metavar="JSONL",
                     help="write the repro.serve.access/v1 request "
                          "log here; implies --telemetry")
    srv.add_argument("--access-log-sample", type=int, default=1,
                     metavar="N",
                     help="head-sample: log every Nth ok-and-fast "
                          "request (errors and slow requests always "
                          "log; default 1 = everything)")
    srv.add_argument("--slow-ms", type=float, default=100.0,
                     help="always-log latency threshold in ms; slow "
                          "requests also spool their trace")
    srv.add_argument("--spool-dir",
                     help="dump slow-request Chrome traces here "
                          "(requires --access-log)")
    srv.add_argument("--http-port", type=int, metavar="PORT",
                     help="HTTP export sidecar port (/metrics, "
                          "/healthz, /slo.json); implies --telemetry")
    srv.add_argument("--http-host", default="127.0.0.1",
                     help="HTTP sidecar bind host (default loopback)")
    srv.set_defaults(handler=_cmd_serve)

    qry = sub.add_parser(
        "query",
        help="query a running pin access daemon",
    )
    qry.add_argument("targets", nargs="*", metavar="INST/PIN",
                     help="instance pins to query, e.g. u42/A")
    _add_endpoint_args(qry)
    qry.add_argument("--design", help="session name (optional when the "
                                      "daemon hosts exactly one)")
    qry.add_argument("--move", nargs=3, metavar=("INST", "X", "Y"),
                     help="move an instance before querying")
    qry.add_argument("--stats", action="store_true",
                     help="print server + session statistics")
    qry.add_argument("--health", action="store_true",
                     help="print the liveness probe")
    qry.add_argument("--metrics", action="store_true",
                     help="print the Prometheus metrics exposition")
    qry.add_argument("--shutdown", action="store_true",
                     help="ask the daemon to drain and exit")
    qry.add_argument("--timing", action="store_true",
                     help="trace each single-pin query and print the "
                          "dial/serialize/wait/parse/server breakdown")
    qry.add_argument("--json", dest="as_json", action="store_true",
                     help="print raw wire payloads as JSON")
    qry.add_argument("--timeout", type=float, default=30.0,
                     help="request timeout in seconds")
    qry.set_defaults(handler=_cmd_query)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running daemon",
    )
    top.add_argument("address", metavar="ADDRESS",
                     help="daemon endpoint: unix:PATH, a socket path, "
                          "or HOST:PORT")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (default 0 = until "
                          "interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append refreshes instead of clearing the "
                          "screen")
    top.add_argument("--timeout", type=float, default=30.0,
                     help="request timeout in seconds")
    top.set_defaults(handler=_cmd_top)

    qa = sub.add_parser(
        "qa",
        help="golden-result regression gates (snapshot/check/accept/diff)",
    )
    qa.set_defaults(handler=_cmd_qa_help, qa_parser=qa)
    qa_sub = qa.add_subparsers(dest="qa_command")

    snap = qa_sub.add_parser(
        "snapshot", help="run one generated case and record it as a golden"
    )
    snap.add_argument("testcase", help="e.g. ispd18_test1")
    snap.add_argument("--scale", type=float, default=0.004)
    _add_qa_run_args(snap)
    snap.set_defaults(handler=_cmd_qa_snapshot)

    chk = qa_sub.add_parser(
        "check", help="re-run every golden case and gate the results"
    )
    _add_qa_check_args(chk)
    chk.set_defaults(handler=_cmd_qa_check, qa_accept=False)

    acc = qa_sub.add_parser(
        "accept", help="re-run and overwrite drifting golden records"
    )
    _add_qa_check_args(acc)
    acc.set_defaults(handler=_cmd_qa_check, qa_accept=True)

    dif = qa_sub.add_parser(
        "diff", help="print the full human-readable drift vs the goldens"
    )
    _add_qa_run_args(dif)
    dif.add_argument("--cases", nargs="*", default=None,
                     help="subset of golden case ids (default: all)")
    dif.set_defaults(handler=_cmd_qa_diff)

    swp = sub.add_parser(
        "sweep",
        help="manifest-driven DSE sweeps with a trend/regression gate",
    )
    swp.set_defaults(handler=_cmd_sweep_help, sweep_parser=swp)
    swp_sub = swp.add_subparsers(dest="sweep_command")

    srun = swp_sub.add_parser(
        "run", help="execute a sweep spec into a resumable run directory"
    )
    srun.add_argument("spec", help="sweep spec path (.yaml subset or .json)")
    srun.add_argument("--dir", dest="run_dir",
                      help="run directory (default: sweep-runs/<name>)")
    srun.add_argument("--workers", type=int,
                      help="concurrent point processes (default: spec "
                           "option or 2)")
    srun.add_argument("--timeout", type=float,
                      help="per-point timeout in seconds (default: spec "
                           "option or 1800)")
    srun.set_defaults(handler=_cmd_sweep_run)

    sst = swp_sub.add_parser(
        "status", help="summarize a sweep run directory point by point"
    )
    sst.add_argument("run_dir", help="sweep run directory")
    sst.add_argument("--json", dest="as_json", action="store_true",
                     help="print the status payload as JSON")
    sst.set_defaults(handler=_cmd_sweep_status)

    srep = swp_sub.add_parser(
        "report",
        help="aggregate a run's envelopes into a gated trend report",
    )
    srep.add_argument("run_dir", help="sweep run directory (or a "
                                      "directory of bench envelopes)")
    srep.add_argument("--against", action="append", default=[],
                      metavar="BENCH.json",
                      help="baseline history to gate against "
                           "(repeatable)")
    srep.add_argument("--goldens", default="goldens",
                      help="golden corpus for fingerprint/metric "
                           "checks (default: goldens)")
    srep.add_argument("--no-goldens", action="store_true",
                      help="skip the golden comparison")
    srep.add_argument("--tolerances",
                      help="JSON file of regression tolerances "
                           "({key: {abs, rel}}, '_perf_default' for "
                           "the perf fallback)")
    srep.add_argument("--md", dest="md_path",
                      help="write the markdown trend report here")
    srep.add_argument("--json", dest="json_path",
                      help="write the report JSON here")
    srep.add_argument("--fail-on-regress", action="store_true",
                      help="exit non-zero when any check regresses")
    srep.set_defaults(handler=_cmd_sweep_report)

    cmp = sub.add_parser(
        "compare",
        help="router-in-the-loop access-flow comparator (Experiment 3)",
    )
    cmp.set_defaults(handler=_cmd_compare_help, compare_parser=cmp)
    cmp_sub = cmp.add_subparsers(dest="compare_command")

    crun = cmp_sub.add_parser(
        "run",
        help="route a case matrix through the access flows into a "
             "resumable run directory",
    )
    crun.add_argument("cases", nargs="*", metavar="CASE[@SCALE]",
                      help="cases like ispd18_test1@0.004 or "
                           "pinzoo_hostile (scale defaults to 1)")
    crun.add_argument("--matrix", choices=("golden", "smoke"),
                      help="prepend a committed case matrix (the "
                           "golden corpus or the CI smoke subset)")
    crun.add_argument("--flows", nargs="+",
                      choices=("pao", "serve", "legacy"),
                      default=["pao", "serve", "legacy"],
                      help="access flows to run (default: all three)")
    crun.add_argument("--dir", dest="run_dir",
                      help="run directory (default: compare-runs/<matrix "
                           "or 'run'>)")
    crun.add_argument("-j", "--jobs", type=_job_count, default=1,
                      help="concurrent (case, flow) worker processes "
                           "(0 = all cores)")
    crun.add_argument("--timeout", type=float, default=1800.0,
                      help="per-flow timeout in seconds (default 1800)")
    crun.add_argument("--cache-dir",
                      help="persistent AP/pattern cache root (default: "
                           "<run dir>/apcache, shared across flows)")
    crun.add_argument("--force", action="store_true",
                      help="re-execute cached (case, flow) results")
    crun.set_defaults(handler=_cmd_compare_run)

    crep = cmp_sub.add_parser(
        "report",
        help="gate a comparator run against goldens and invariants",
    )
    crep.add_argument("run_dir", help="comparator run directory")
    crep.add_argument("--goldens", default="goldens/compare",
                      help="compare golden corpus directory "
                           "(default: goldens/compare)")
    crep.add_argument("--no-goldens", action="store_true",
                      help="skip the golden comparison")
    crep.add_argument("--accept", action="store_true",
                      help="write the run's numbers as goldens instead "
                           "of gating")
    crep.add_argument("--md", dest="md_path",
                      help="write the markdown report here")
    crep.add_argument("--json", dest="json_path",
                      help="write the report JSON here")
    crep.add_argument("--fail-on-regress", action="store_true",
                      help="exit non-zero on any gate failure")
    crep.set_defaults(handler=_cmd_compare_report)

    return parser


def _add_qa_run_args(sub_parser) -> None:
    sub_parser.add_argument("--goldens", default="goldens",
                            help="golden corpus directory (default: goldens)")
    sub_parser.add_argument("-j", "--jobs", type=_job_count, default=1,
                            help="worker processes (0 = all cores); any "
                                 "value must reproduce the same fingerprint")
    sub_parser.add_argument("--paircheck-mode",
                            choices=("kernel", "engine", "verify"),
                            default="kernel",
                            help="via-pair backend; any choice must "
                                 "reproduce the same fingerprint")
    sub_parser.add_argument("--apcheck-mode",
                            choices=("array", "engine", "verify"),
                            default="array",
                            help="Step 1/3 candidate backend; any choice "
                                 "must reproduce the same fingerprint")


def _add_qa_check_args(sub_parser) -> None:
    _add_qa_run_args(sub_parser)
    sub_parser.add_argument("--cases", nargs="*", default=None,
                            help="subset of golden case ids (default: all)")
    sub_parser.add_argument("--tolerances",
                            help="JSON file of per-metric regression "
                                 "tolerances ({metric: {abs, rel}})")
    sub_parser.add_argument("--json", dest="json_path",
                            help="write the check report JSON here "
                                 "(the CI artifact)")
    sub_parser.add_argument("--max-diff-lines", type=int, default=20,
                            help="cap per-case diff lines in check output")


def _job_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            "jobs must be >= 0 (0 means all cores)"
        )
    return value


def _add_io_args(sub_parser) -> None:
    sub_parser.add_argument("--lef", required=True, help="input LEF path")
    sub_parser.add_argument("--def", dest="def_path", required=True,
                            help="input DEF path")


def _add_endpoint_args(sub_parser) -> None:
    sub_parser.add_argument("--socket", dest="socket_path",
                            help="Unix domain socket path")
    sub_parser.add_argument("--host", default="127.0.0.1",
                            help="TCP bind/connect host (with --port)")
    sub_parser.add_argument("--port", type=int,
                            help="TCP port (mutually exclusive with "
                                 "--socket)")


def _endpoint(args) -> tuple:
    """Resolve --socket / --host+--port into a serve address tuple."""
    if args.socket_path and args.port is not None:
        raise CliError("--socket and --port are mutually exclusive")
    if args.socket_path:
        return ("unix", args.socket_path)
    if args.port is not None:
        return ("tcp", args.host, args.port)
    raise CliError("an endpoint is required: --socket PATH or --port N")


def _load(args):
    lef_text = _read_input(args.lef, "--lef")
    def_text = _read_input(args.def_path, "--def")
    tech, masters = parse_lef(lef_text)
    return parse_def(def_text, tech, masters)


def _read_input(path: str, flag: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        # A missing or unreadable input is a usage error, not a bug:
        # fail with the reason, not a traceback.
        raise CliError(f"cannot read {flag} {path!r}: {exc}") from exc


# -- commands -----------------------------------------------------------------


def _cmd_generate(args) -> int:
    design = build_testcase(args.testcase, scale=args.scale)
    with open(args.lef, "w") as handle:
        handle.write(write_lef(design.tech, list(design.masters.values())))
    with open(args.def_path, "w") as handle:
        handle.write(write_def(design))
    stats = design.stats()
    print(
        f"wrote {args.lef} and {args.def_path}: "
        f"{stats['num_std_cells']} std cells, {stats['num_macros']} macros, "
        f"{stats['num_nets']} nets ({stats['node']})"
    )
    return 0


def _cmd_analyze(args) -> int:
    design = _load(args)
    if args.baseline:
        flow = LegacyPinAccess(design)
        result = flow.run()
        access_map = flow.access_map(result)
        label = "legacy (TrRte-style)"
    else:
        config = PaafConfig(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            profile=args.profile,
            paircheck_mode=args.paircheck_mode,
            apcheck_mode=args.apcheck_mode,
            trace=args.trace,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            explain=args.explain or False,
        )
        if args.no_bca:
            config = config.without_bca()
        try:
            framework = PinAccessFramework(design, config)
        except OSError as exc:
            print(
                f"error: cannot use cache dir {args.cache_dir!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        result = framework.run(use_cache=not args.no_cache)
        access_map = result.access_map()
        label = "PAAF" + (" w/o BCA" if args.no_bca else " w/ BCA")
    failed = evaluate_failed_pins(design, access_map)
    rows = [
        ["flow", label],
        ["unique instances", len(unique_instances(design))],
        ["access points", result.total_access_points],
        ["dirty access points", result.count_dirty_aps()],
        ["connected pins", len(design.connected_pins())],
        ["failed pins", len(failed)],
        ["runtime (s)", f"{result.timings['total']:.2f}"],
    ]
    if design.io_pins and not args.baseline:
        from repro.core import IoPinAccess

        io_access = IoPinAccess(design).run()
        io_failed = sum(1 for aps in io_access.values() if not aps)
        rows.append(["IO pins", len(design.io_pins)])
        rows.append(["IO pins without access", io_failed])
    print(format_table(["metric", "value"], rows,
                       title=f"Pin access analysis: {design.name}"))
    if args.list_failed:
        for inst_name, pin_name in failed:
            print(f"FAILED {inst_name}/{pin_name}")
    if args.stats_json:
        _dump_stats(args.stats_json, design, label, result, len(failed))
    if not args.baseline:
        for path in (args.trace_out, args.metrics_out, args.explain):
            if path:
                print(f"wrote {path}")
    return 0 if not failed else 1


def _dump_stats(path, design, label, result, num_failed) -> None:
    """Write the run's timings/stats payload as JSON (the bench feed)."""
    import json

    payload = {
        "design": design.name,
        "flow": label,
        "timings": dict(getattr(result, "timings", {})),
        "stats": getattr(result, "stats", {}),
        "metrics": {
            "access_points": result.total_access_points,
            "failed_pins": num_failed,
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {path}")


def _cmd_explain(args) -> int:
    """Narrate one pin's access decisions from the obs event stream."""
    from repro.obs.events import read_jsonl
    from repro.obs.explain import explain_pin

    if "/" not in args.target:
        raise CliError(
            f"target must be INSTANCE/PIN, got {args.target!r}"
        )
    inst_name, pin_name = args.target.split("/", 1)
    design = _load(args)
    if args.events:
        try:
            events = read_jsonl(args.events)
        except (OSError, ValueError) as exc:
            raise CliError(
                f"cannot read --events {args.events!r}: {exc}"
            ) from exc
    else:
        # A fresh uncached run: cached Steps 1-2 would skip candidate
        # generation and leave the Step 1 story empty.
        config = PaafConfig(jobs=args.jobs, explain=True)
        result = PinAccessFramework(design, config).run()
        events = result.events.events
    try:
        print(explain_pin(design, events, inst_name, pin_name))
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    return 0


def _cmd_route(args) -> int:
    design = _load(args)
    if args.access == "pao":
        config = PaafConfig(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            apcheck_mode=args.apcheck_mode,
            paircheck_mode=args.paircheck_mode,
        )
        try:
            access_map = PinAccessFramework(design, config).run().access_map()
        except OSError as exc:
            raise CliError(
                f"cannot use cache dir {args.cache_dir!r}: {exc}"
            ) from exc
    else:
        access_map = drcu_access_map(design)
    result = DetailedRouter(design).route(access_map)
    drcs = count_route_drcs(design, result, scope=args.scope)
    print(
        f"{design.name}: routed {result.routed_nets} nets "
        f"({len(result.failed_nets)} failed, "
        f"{result.unconnected_terms} unconnected terminals); "
        f"{len(drcs)} {args.scope} DRCs"
    )
    if args.svg:
        with open(args.svg, "w") as handle:
            handle.write(render_routing(design, result, drcs))
        print(f"wrote {args.svg}")
    return 0


def _cmd_serve(args) -> int:
    """Analyze a design and host it as a pin access daemon."""
    from repro.serve import DesignSession, HttpExport, OracleServer

    design = _load(args)
    config = PaafConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        apcheck_mode=args.apcheck_mode,
    )
    try:
        session = DesignSession(
            args.design or design.name, design, config
        )
    except OSError as exc:
        raise CliError(
            f"cannot use cache dir {args.cache_dir!r}: {exc}"
        ) from exc
    cache = session.inc.framework.cache
    warmth = (
        f", apcache entries={cache.entry_count()}"
        if cache is not None
        else ""
    )
    telemetry = _build_telemetry(args)
    server = OracleServer(
        _endpoint(args),
        max_clients=args.max_clients,
        request_timeout=args.request_timeout,
        drain_seconds=args.drain_seconds,
        allow_load=not args.no_load,
        telemetry=telemetry,
    )
    server.add_session(session)
    try:
        server.start()
    except OSError as exc:
        raise CliError(f"cannot bind {_endpoint(args)!r}: {exc}") from exc
    http = None
    if args.http_port is not None:
        try:
            http = HttpExport(
                server, host=args.http_host, port=args.http_port
            ).start()
        except OSError as exc:
            server.stop(drain=False)
            raise CliError(
                f"cannot bind HTTP sidecar "
                f"{args.http_host}:{args.http_port}: {exc}"
            ) from exc
    server.install_signal_handlers()
    extras = []
    if telemetry is not None:
        extras.append("telemetry on")
    if args.access_log:
        extras.append(f"access log {args.access_log}")
    if http is not None:
        extras.append(f"http {http.host}:{http.port}")
    suffix = f" [{'; '.join(extras)}]" if extras else ""
    print(
        f"serving {session.name!r} on {_format_endpoint(server)} "
        f"(analyze {session.analyze_seconds:.2f}s{warmth}){suffix}; "
        "SIGTERM or 'repro query --shutdown' drains",
        flush=True,
    )
    server.serve_forever()
    if http is not None:
        http.stop()
    print("drained, exiting")
    return 0


def _build_telemetry(args):
    """Resolve the serve telemetry flags into a ServeTelemetry or None.

    ``--slo``, ``--access-log`` and ``--http-port`` each imply
    ``--telemetry``; with none of them the daemon runs untelemetered
    (the zero-overhead default).
    """
    import json

    from repro.obs.accesslog import AccessLog
    from repro.obs.slo import DEFAULT_OBJECTIVES, objectives_from_json
    from repro.serve import ServeTelemetry

    enabled = (
        args.telemetry
        or args.slo_path
        or args.access_log
        or args.http_port is not None
    )
    if not enabled:
        if args.spool_dir:
            raise CliError("--spool-dir requires --access-log")
        return None
    objectives = DEFAULT_OBJECTIVES
    if args.slo_path:
        try:
            with open(args.slo_path) as handle:
                objectives = objectives_from_json(json.load(handle))
        except (OSError, ValueError) as exc:
            raise CliError(
                f"cannot read --slo {args.slo_path!r}: {exc}"
            ) from exc
    access_log = None
    if args.access_log:
        if args.access_log_sample < 1:
            raise CliError("--access-log-sample must be >= 1")
        try:
            access_log = AccessLog(
                args.access_log,
                sample_every=args.access_log_sample,
                slow_ms=args.slow_ms,
                spool_dir=args.spool_dir,
            )
        except OSError as exc:
            raise CliError(
                f"cannot open --access-log {args.access_log!r}: {exc}"
            ) from exc
    elif args.spool_dir:
        raise CliError("--spool-dir requires --access-log")
    return ServeTelemetry(objectives=objectives, access_log=access_log)


def _format_endpoint(server) -> str:
    bound = server.bound_address
    if bound[0] == "unix":
        return f"unix:{bound[1]}"
    return f"{bound[1]}:{bound[2]}"


def _cmd_query(args) -> int:
    """Talk to a running pin access daemon."""
    import json

    from repro.serve import ConnectionFailed, OracleClient, ServerError

    actions = any(
        (args.targets, args.move, args.stats, args.health,
         args.metrics, args.shutdown)
    )
    if not actions:
        raise CliError(
            "nothing to do: give INST/PIN targets or one of --move/"
            "--stats/--health/--metrics/--shutdown"
        )
    targets = []
    for target in args.targets:
        if "/" not in target:
            raise CliError(
                f"target must be INSTANCE/PIN, got {target!r}"
            )
        targets.append(tuple(target.split("/", 1)))
    try:
        with OracleClient(
            _endpoint(args), timeout=args.timeout, trace=args.timing
        ) as client:
            return _run_query_actions(args, client, targets, json)
    except ConnectionFailed as exc:
        raise CliError(str(exc)) from exc
    except (ServerError, KeyError) as exc:
        raise CliError(str(exc)) from exc
    except ConnectionError as exc:
        raise CliError(f"connection lost: {exc}") from exc


def _run_query_actions(args, client, targets, json) -> int:
    inaccessible = 0
    if args.health:
        payload = client.health()
        if args.as_json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(
                f"status={payload['status']} "
                f"protocol={payload['protocol']} "
                f"sessions={','.join(payload['sessions']) or '-'} "
                f"uptime={payload['uptime_seconds']}s"
            )
    if args.move:
        inst, x_text, y_text = args.move
        try:
            x, y = int(x_text), int(y_text)
        except ValueError:
            raise CliError(
                f"--move coordinates must be integers, got "
                f"{x_text!r} {y_text!r}"
            ) from None
        payload = client.move_instance(inst, x, y, design=args.design)
        if args.as_json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(
                f"moved {inst} -> ({x}, {y}); generation "
                f"{payload['generation']} in "
                f"{payload['update_seconds']}s"
            )
    if targets and args.timing:
        # One traced single-pin request per target so each gets its
        # own client-side phase breakdown.
        answers = []
        timings = []
        for inst, pin in targets:
            answer = client.query(inst, pin, design=args.design)
            answers.append(answer)
            timings.append(dict(client.last_timing))
        if args.as_json:
            payload = [
                {"answer": answer, "timing": timing}
                for answer, timing in zip(answers, timings)
            ]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for answer, timing in zip(answers, timings):
                print(_format_answer(answer))
                print(_format_timing(timing))
        inaccessible = sum(
            1 for a in answers if not a["accessible"]
        )
    elif targets:
        answers = client.query_batch(targets, design=args.design)
        if args.as_json:
            print(json.dumps(answers, indent=2, sort_keys=True))
        else:
            for answer in answers:
                print(_format_answer(answer))
        inaccessible = sum(
            1 for a in answers if not a["accessible"]
        )
    if args.stats:
        payload = client.stats()
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.metrics:
        print(client.metrics(), end="")
    if args.shutdown:
        client.shutdown()
        print("daemon draining")
    return 1 if inaccessible else 0


def _format_timing(timing: dict) -> str:
    """One-line human rendering of a traced request's phase split."""
    parts = []
    for key in ("dial_ms", "serialize_ms", "wait_ms", "server_ms",
                "parse_ms", "total_ms"):
        value = timing.get(key)
        label = key[:-3]
        parts.append(
            f"{label}={value:.3f}ms" if value is not None
            else f"{label}=-"
        )
    return f"  timing [{timing['trace']}]: " + " ".join(parts)


def _format_answer(answer: dict) -> str:
    name = f"{answer['instance']}/{answer['pin']}"
    selected = answer["selected"]
    alts = len(answer["alternatives"])
    if selected is None:
        return f"{name}: no access ({alts} alternatives)"
    via = selected["vias"][0] if selected["vias"] else "planar"
    return (
        f"{name}: ({selected['x']}, {selected['y']}) "
        f"{selected['layer']} via={via} "
        f"[{alts} alternatives, gen {answer['generation']}]"
    )


def _cmd_top(args) -> int:
    """Live terminal dashboard: poll stats/health, render, repeat."""
    import time as _time

    from repro.serve import (
        ConnectionFailed,
        OracleClient,
        ServerError,
        parse_address,
    )

    try:
        address = parse_address(args.address)
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if args.interval <= 0:
        raise CliError("--interval must be > 0")
    refreshes = 0
    try:
        with OracleClient(address, timeout=args.timeout) as client:
            while True:
                stats = client.stats()
                health = client.health()
                if not args.no_clear and sys.stdout.isatty():
                    # Clear screen + home, the classic top(1) refresh.
                    print("\x1b[2J\x1b[H", end="")
                print(_render_top(args.address, stats, health),
                      flush=True)
                refreshes += 1
                if args.iterations and refreshes >= args.iterations:
                    return 0
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ConnectionFailed as exc:
        raise CliError(str(exc)) from exc
    except (ServerError, KeyError) as exc:
        raise CliError(str(exc)) from exc
    except ConnectionError as exc:
        raise CliError(f"connection lost: {exc}") from exc


def _render_top(address: str, stats: dict, health: dict) -> str:
    """Render one dashboard frame from stats + health payloads."""
    lines = []
    slo = health.get("slo")
    state = slo["state"] if slo else "n/a"
    lines.append(
        f"pao top {address} -- status={health['status']} "
        f"slo={state} uptime={health['uptime_seconds']}s"
    )
    if slo and slo.get("breached"):
        lines.append("  breached: " + ", ".join(slo["breached"]))
    red = stats.get("red") or {}
    if red:
        rows = [
            [
                op,
                snap["count"],
                snap["errors"],
                f"{snap['qps']:.1f}",
                _top_ms(snap.get("p50_ms")),
                _top_ms(snap.get("p95_ms")),
                _top_ms(snap.get("p99_ms")),
            ]
            for op, snap in sorted(red.items())
        ]
        lines.append(format_table(
            ["op", "count", "errors", "qps", "p50 ms", "p95 ms",
             "p99 ms"],
            rows, title="Per-op RED (sliding window)"))
    else:
        lines.append(
            "  (no RED telemetry; start the daemon with --telemetry)"
        )
    sessions = stats.get("sessions") or {}
    if sessions:
        rows = [
            [
                name,
                row["generation"],
                row["served_pins"],
                row["moves"],
                row.get("cache_entries", "-"),
            ]
            for name, row in sorted(sessions.items())
        ]
        lines.append(format_table(
            ["session", "gen", "answers", "moves", "cache"],
            rows, title="Sessions"))
    return "\n".join(lines)


def _top_ms(value) -> str:
    return f"{value:.3f}" if value is not None else "-"


def _cmd_suite(args) -> int:
    import time

    from repro.bench.ispd18 import ISPD18_TESTCASES
    from repro.report import (
        render_table1,
        render_table2,
        render_table3,
        table2_row,
        table3_row,
    )

    names = args.testcases or [s.name for s in ISPD18_TESTCASES]
    designs = [build_testcase(name, scale=args.scale) for name in names]
    print(render_table1(designs))
    print()

    rows2 = []
    rows3 = []
    for design in designs:
        t0 = time.perf_counter()
        baseline = LegacyPinAccess(design)
        baseline_result = baseline.run()
        baseline_failed = evaluate_failed_pins(
            design, baseline.access_map(baseline_result)
        )
        baseline_time = time.perf_counter() - t0

        paaf_step1 = PinAccessFramework(design).run_step1()
        rows2.append(
            table2_row(
                design.name,
                len(unique_instances(design)),
                baseline_result.total_access_points,
                paaf_step1.total_access_points,
                baseline_result.count_dirty_aps(),
                paaf_step1.count_dirty_aps(),
                baseline_time,
                paaf_step1.timings["step1"],
            )
        )

        t0 = time.perf_counter()
        nobca = PinAccessFramework(
            design, PaafConfig().without_bca()
        ).run()
        nobca_failed = evaluate_failed_pins(design, nobca.access_map())
        nobca_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        bca = PinAccessFramework(design).run()
        bca_failed = evaluate_failed_pins(design, bca.access_map())
        bca_time = time.perf_counter() - t0
        rows3.append(
            table3_row(
                design.name,
                len(design.connected_pins()),
                len(baseline_failed),
                len(nobca_failed),
                len(bca_failed),
                baseline_time,
                nobca_time,
                bca_time,
            )
        )
    print(render_table2(rows2))
    print()
    print(render_table3(rows3))
    return 0


def _cmd_qa_help(args) -> int:
    args.qa_parser.print_help()
    return 2


def _cmd_qa_snapshot(args) -> int:
    from repro.qa import golden

    record = golden.snapshot_case(
        args.testcase,
        args.scale,
        jobs=args.jobs,
        paircheck_mode=args.paircheck_mode,
        apcheck_mode=args.apcheck_mode,
    )
    path = golden.golden_path(args.goldens, args.testcase, args.scale)
    golden.write_golden(path, record)
    from repro.report import render_qa_metrics

    print(render_qa_metrics(record["metrics"]))
    digest = record["fingerprint"]["digest"]
    print(f"wrote {path} (digest {digest[:16]}...)")
    return 0


def _cmd_qa_check(args) -> int:
    import json

    from repro.qa import golden

    tolerances = None
    if args.tolerances:
        try:
            with open(args.tolerances) as handle:
                tolerances = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CliError(
                f"cannot read --tolerances {args.tolerances!r}: {exc}"
            ) from exc
    try:
        code, report = golden.check_goldens(
            args.goldens,
            cases=args.cases,
            jobs=args.jobs,
            paircheck_mode=args.paircheck_mode,
            apcheck_mode=args.apcheck_mode,
            tolerances=tolerances,
            accept=args.qa_accept,
            max_diff_lines=args.max_diff_lines,
        )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    from repro.report import render_qa_check

    print(render_qa_check(report))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    return code


def _cmd_qa_diff(args) -> int:
    from repro.qa import golden
    from repro.qa.fingerprint import canonical_result

    try:
        paths = golden.list_goldens(args.goldens, args.cases)
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if not paths:
        print(f"no golden records under {args.goldens}")
        return 1
    drifted = False
    for path in paths:
        record = golden.load_golden(path)
        case = record["case"]
        result, _ = golden.run_case(
            case["testcase"],
            case["scale"],
            jobs=args.jobs,
            paircheck_mode=args.paircheck_mode,
            apcheck_mode=args.apcheck_mode,
        )
        lines = golden.diff_canonical(
            record["canonical"], canonical_result(result)
        )
        cid = golden.case_id(case["testcase"], case["scale"])
        if lines:
            drifted = True
            print(f"{cid}: {len(lines)} difference(s)")
            for line in lines:
                print(f"  {line}")
        else:
            print(f"{cid}: identical")
    return 1 if drifted else 0


def _cmd_sweep_help(args) -> int:
    args.sweep_parser.print_help()
    return 2


def _cmd_sweep_run(args) -> int:
    import os

    from repro.sweep import SpecError, load_spec, run_sweep

    try:
        spec = load_spec(args.spec)
    except OSError as exc:
        raise CliError(f"cannot read spec {args.spec!r}: {exc}") from exc
    except SpecError as exc:
        raise CliError(str(exc)) from exc
    run_dir = args.run_dir or os.path.join("sweep-runs", spec.name)
    try:
        summary = run_sweep(
            spec,
            run_dir,
            workers=args.workers,
            point_timeout_s=args.timeout,
            out=print,
        )
    except OSError as exc:
        raise CliError(f"cannot use run dir {run_dir!r}: {exc}") from exc
    print(
        f"sweep {spec.name!r}: {len(summary['done'])} done, "
        f"{len(summary['skipped'])} cached, "
        f"{len(summary['failed'])} failed, "
        f"{len(summary['timeout'])} timed out "
        f"({summary['wall_s']:.2f}s, {run_dir})"
    )
    return 0 if not (summary["failed"] or summary["timeout"]) else 1


def _cmd_sweep_status(args) -> int:
    import json

    from repro.report import format_table
    from repro.sweep import sweep_status

    status = sweep_status(args.run_dir)
    if not status["points"]:
        raise CliError(f"no sweep points under {args.run_dir!r}")
    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        rows = [
            [
                point["key"],
                point["state"],
                "-" if point["wall_s"] is None
                else f"{point['wall_s']:.2f}",
                point.get("error") or "",
            ]
            for point in status["points"]
        ]
        title = f"Sweep status: {status['name'] or args.run_dir}"
        print(format_table(["point", "state", "wall (s)", "error"],
                           rows, title=title))
        counts = ", ".join(
            f"{count} {state}"
            for state, count in sorted(status["counts"].items())
        )
        print(counts)
    incomplete = sum(
        count
        for state, count in status["counts"].items()
        if state != "done"
    )
    return 0 if not incomplete else 1


def _cmd_sweep_report(args) -> int:
    import json
    import os

    from repro.qa.metrics import migrate_bench_entry
    from repro.sweep import build_report, load_rows, render_markdown

    rows = load_rows(args.run_dir)
    if not rows:
        raise CliError(f"no sweep envelopes under {args.run_dir!r}")
    baselines = []
    for path in args.against:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CliError(
                f"cannot read --against {path!r}: {exc}"
            ) from exc
        entries = payload if isinstance(payload, list) else [payload]
        if not entries:
            raise CliError(f"--against {path!r} holds no entries")
        baselines.append(
            (os.path.basename(path),
             [migrate_bench_entry(e) for e in entries])
        )
    tolerances = None
    if args.tolerances:
        try:
            with open(args.tolerances) as handle:
                tolerances = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CliError(
                f"cannot read --tolerances {args.tolerances!r}: {exc}"
            ) from exc
    report = build_report(
        rows,
        baselines=baselines,
        goldens_dir=None if args.no_goldens else args.goldens,
        tolerances=tolerances,
    )
    markdown = render_markdown(
        report, title=f"Sweep trend report: {args.run_dir}"
    )
    print(markdown, end="")
    if args.md_path:
        with open(args.md_path, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.md_path}")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    if report["regressions"]:
        print(f"regressions: {len(report['regressions'])}")
        if args.fail_on_regress:
            return 1
    return 0


def _cmd_compare_help(args) -> int:
    args.compare_parser.print_help()
    return 2


def _cmd_compare_run(args) -> int:
    import os

    from repro.compare import (
        GOLDEN_MATRIX,
        SMOKE_MATRIX,
        parse_case,
        run_compare,
    )

    cases = []
    if args.matrix == "golden":
        cases.extend(GOLDEN_MATRIX)
    elif args.matrix == "smoke":
        cases.extend(SMOKE_MATRIX)
    for text in args.cases:
        try:
            cases.append(parse_case(text))
        except ValueError as exc:
            raise CliError(f"bad case {text!r}: {exc}") from exc
    # Dedupe while preserving order (a matrix plus explicit repeats).
    seen, unique = set(), []
    for case in cases:
        if case.case_id not in seen:
            seen.add(case.case_id)
            unique.append(case)
    if not unique:
        raise CliError("no cases: pass CASE[@SCALE] args or --matrix")
    run_dir = args.run_dir or os.path.join(
        "compare-runs", args.matrix or "run"
    )
    jobs = args.jobs or os.cpu_count() or 1
    summary = run_compare(
        unique,
        args.flows,
        run_dir,
        jobs=jobs,
        flow_timeout_s=args.timeout,
        cache_dir=args.cache_dir,
        force=args.force,
    )
    counts = summary["counts"]
    print(
        f"compare: {counts.get('done', 0)} done, "
        f"{counts.get('cached', 0)} cached, "
        f"{counts.get('failed', 0)} failed, "
        f"{counts.get('timeout', 0)} timeout -> {run_dir}"
    )
    bad = counts.get("failed", 0) + counts.get("timeout", 0)
    return 0 if bad == 0 else 1


def _cmd_compare_report(args) -> int:
    import json

    from repro.compare import build_report, render_markdown, write_goldens

    goldens_dir = None if args.no_goldens else args.goldens
    report = build_report(args.run_dir, goldens_dir=goldens_dir)
    if not report["cases"]:
        raise CliError(f"no comparator cases under {args.run_dir!r}")
    if args.accept:
        if args.no_goldens:
            raise CliError("--accept conflicts with --no-goldens")
        written = write_goldens(report, args.goldens)
        for path in written:
            print(f"accepted {path}")
        incomplete = [
            case["case"] for case in report["cases"]
            if not case["complete"]
        ]
        if incomplete:
            print(f"skipped incomplete: {', '.join(incomplete)}")
            return 1
        return 0
    markdown = render_markdown(report)
    print(markdown, end="")
    if args.md_path:
        with open(args.md_path, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.md_path}")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    if report["failures"]:
        print(f"failures: {len(report['failures'])}")
        if args.fail_on_regress:
            return 1
    return 0


def _cmd_render(args) -> int:
    design = _load(args)
    access_map = PinAccessFramework(design).run().access_map()
    with open(args.svg, "w") as handle:
        handle.write(
            render_pin_access(design, access_map, pixel_width=args.width)
        )
    print(f"wrote {args.svg}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
