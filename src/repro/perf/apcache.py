"""Persistent access point / pattern cache (warm-start Steps 1-2).

Cell libraries change far less often than placements: the Step 1/2
output of a unique instance depends only on its signature (master,
orientation, track offset class) and on the technology + config the
framework ran with.  This cache stores that output on disk, keyed by

* a **fingerprint** over the technology, the track grid and every
  result-affecting :class:`~repro.core.config.PaafConfig` field
  (perf-only knobs -- ``jobs``, ``cache_dir``, ``profile`` -- are
  excluded so they never invalidate entries), and
* the **unique-instance signature**.

Entries are stored *relative to the representative's origin*, which is
exactly the coordinate class the signature guarantees: any later
representative with the same signature sees the same geometry up to
translation, so a cached entry re-translates to its origin.  A warm
run therefore skips Step 1 and Step 2 entirely; a config or tech
change lands in a different fingerprint directory and misses cleanly.

The on-disk format is one pickle per signature under
``<cache_dir>/<fingerprint prefix>/<signature hash>.pkl``, written
atomically (temp file + rename) so concurrent runs never observe a
torn entry.  Corrupt or unreadable entries count as misses.

Every entry additionally records the cache **fingerprint** it was
written under and a **content digest** (the qa layer's canonical
digest of the entry's APs and patterns).  Both are re-checked on
load: an entry that unpickles fine but no longer matches -- bit rot,
a file copied between fingerprint directories or signature slots, a
stale generation -- is flagged via the ``apcache.stale`` counter and
degrades to a miss instead of silently corrupting a warm run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile

from repro.qa.fingerprint import entry_digest

CACHE_FORMAT_VERSION = 2

# Knobs that change how the flow executes but never what it computes.
# ``paircheck_mode`` qualifies because the pair kernel is provably
# equivalent to the engine (verify mode raises on any divergence), so
# switching backends must keep hitting the same cache entries.
PERF_ONLY_FIELDS = frozenset(
    {
        "jobs",
        "cache_dir",
        "profile",
        "paircheck_mode",
        # ``apcheck_mode`` likewise: the array kernel is provably
        # equivalent to the engine path (verify mode raises on any
        # divergence), so the backend choice must not split the cache.
        "apcheck_mode",
        # Observability knobs: telemetry only, results are identical
        # with any combination enabled.
        "trace",
        "trace_out",
        "metrics_out",
        "explain",
    }
)

# Sibling file of the per-signature entries holding the pair kernel's
# forbidden-displacement tables for this fingerprint's technology.
PAIR_TABLE_FILE = "pairkernel.pkl"

# And the array kernel's compiled per-cell occupancy tables (Step 1
# candidate validation + Step 3 via-vs-instance checks), keyed by
# (master, orientation) so they are valid for any placement.
ARRAY_TABLE_FILE = "arraykernel.pkl"


def paaf_fingerprint(design, config) -> str:
    """Hash everything Steps 1-2 results depend on besides the signature.

    The track component uses each pattern's full (layer, direction,
    start, step, count) tuple: the signature's per-pattern offset class
    covers the common case, but absolute track extents can clip
    candidate coordinates near the die edge, so the conservative
    fingerprint keeps entries design-grid-specific.
    """
    relevant = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.name not in PERF_ONLY_FIELDS
    }
    tracks = tuple(
        (p.layer_name, str(p.direction), p.start, p.step, p.count)
        for p in design.track_patterns
    )
    payload = pickle.dumps(
        (CACHE_FORMAT_VERSION, design.tech, sorted(relevant.items()), tracks),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def perf_mode_key(config) -> str:
    """Hash the perf knobs the result fingerprint deliberately ignores.

    Two runs sharing a :func:`paaf_fingerprint` compute identical
    results but may execute very differently (``jobs``,
    ``paircheck_mode``, ``apcheck_mode``).  Sweep run directories key
    on fingerprint *plus* this, so perf variants of one configuration
    keep separate timing envelopes while still sharing the AP cache.
    Output paths and telemetry toggles are excluded: they never
    change what a measurement means.
    """
    modes = (config.jobs, config.paircheck_mode, config.apcheck_mode)
    return hashlib.sha256(repr(modes).encode("utf-8")).hexdigest()


def signature_key(signature) -> str:
    """Return a stable filename-safe key for a unique-instance signature."""
    master, orient, offsets = signature
    orient_name = getattr(orient, "name", None) or str(orient)
    text = f"{master}|{orient_name}|{tuple(offsets)!r}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class AccessCache:
    """Disk-backed Step 1/2 results, origin-relative per signature."""

    def __init__(self, cache_dir: str, fingerprint: str):
        self.fingerprint = fingerprint
        self.root = os.path.join(cache_dir, fingerprint[:16])
        # Fail at construction, not mid-flow, if the directory is
        # unusable (e.g. cache_dir names an existing regular file).
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.stale = 0

    # -- lookup ------------------------------------------------------------

    def load(self, ui):
        """Return ``(aps_by_pin, patterns)`` for ``ui``, or None on miss.

        Results are translated into the representative's design
        coordinates and pattern access points are re-linked to the
        ``aps_by_pin`` objects, matching what a fresh Step 1 + 2 run
        produces.
        """
        path = self._path(ui.signature)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # A torn or corrupt entry can make pickle raise nearly
            # anything (UnpicklingError, EOFError, ValueError, ...).
            # A cache must degrade to a miss, never crash the flow.
            self.misses += 1
            return None
        if not isinstance(entry, dict) or (
            entry.get("version") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        if not self._entry_intact(entry):
            # Unpickles fine but is not the entry we wrote: stale
            # generation, cross-fingerprint copy, or tampered payload.
            self.stale += 1
            self.misses += 1
            return None
        origin = ui.representative.location
        aps_by_pin = {
            pin: [ap.translated(origin.x, origin.y) for ap in aps]
            for pin, aps in entry["aps_by_pin"].items()
        }
        linked = {
            (pin, ap.x, ap.y): ap
            for pin, aps in aps_by_pin.items()
            for ap in aps
        }
        patterns = [
            _shift_pattern(p, origin.x, origin.y, linked)
            for p in entry["patterns"]
        ]
        self.hits += 1
        return aps_by_pin, patterns

    def store(self, ui, aps_by_pin, patterns) -> None:
        """Persist one unique instance's Step 1/2 output."""
        origin = ui.representative.location
        rel_aps = {
            pin: [ap.translated(-origin.x, -origin.y) for ap in aps]
            for pin, aps in aps_by_pin.items()
        }
        rel_patterns = [
            _shift_pattern(p, -origin.x, -origin.y) for p in patterns
        ]
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "signature": ui.signature,
            "fingerprint": self.fingerprint,
            "content_digest": entry_digest(rel_aps, rel_patterns),
            "aps_by_pin": rel_aps,
            "patterns": rel_patterns,
        }
        path = self._path(ui.signature)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=4)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return
        self.stores += 1

    def stats(self) -> dict:
        """Return hit/miss/store counters for ``PinAccessResult.stats``."""
        return {
            "apcache.hit": self.hits,
            "apcache.miss": self.misses,
            "apcache.store": self.stores,
            "apcache.stale": self.stale,
        }

    def entry_count(self) -> int:
        """Count the persisted per-signature entries under this root.

        The ``repro serve`` daemon reports this at startup so an
        operator can tell a warm start (restart ≈ cache load) from a
        cold analysis at a glance.
        """
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".pkl")
                and name not in (PAIR_TABLE_FILE, ARRAY_TABLE_FILE)
            )
        except OSError:
            return 0

    # -- pair kernel tables --------------------------------------------------

    def load_pair_tables(self):
        """Return the persisted pair-kernel tables, or None on miss.

        The tables depend only on the technology and the rule set,
        both covered by the fingerprint this cache is rooted under, so
        a warm run adopts them wholesale and skips kernel construction.
        """
        path = os.path.join(self.root, PAIR_TABLE_FILE)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Same degradation contract as per-signature entries: a
            # torn or stale file is a miss, never a crash.
            return None
        if not isinstance(entry, dict) or (
            entry.get("version") != CACHE_FORMAT_VERSION
        ):
            return None
        if entry.get("fingerprint") != self.fingerprint:
            # A table file carried over from another tech/config
            # generation: rebuild rather than trust it.
            return None
        tables = entry.get("tables")
        return tables if isinstance(tables, dict) else None

    def store_pair_tables(self, tables: dict) -> None:
        """Persist the pair-kernel tables atomically."""
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "tables": tables,
        }
        path = os.path.join(self.root, PAIR_TABLE_FILE)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=4)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # -- array kernel tables -------------------------------------------------

    def load_array_tables(self):
        """Return the persisted array-kernel tables, or None on miss.

        Same contract as :meth:`load_pair_tables`: the compiled
        per-cell tables depend on the technology and the cell
        library's geometry, both under this cache's fingerprint, so a
        warm run adopts them wholesale and skips compilation.
        """
        path = os.path.join(self.root, ARRAY_TABLE_FILE)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Same degradation contract as per-signature entries: a
            # torn or stale file is a miss, never a crash.
            return None
        if not isinstance(entry, dict) or (
            entry.get("version") != CACHE_FORMAT_VERSION
        ):
            return None
        if entry.get("fingerprint") != self.fingerprint:
            return None
        tables = entry.get("tables")
        return tables if isinstance(tables, dict) else None

    def store_array_tables(self, tables: dict) -> None:
        """Persist the array-kernel tables atomically."""
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "tables": tables,
        }
        path = os.path.join(self.root, ARRAY_TABLE_FILE)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=4)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # -- internals ---------------------------------------------------------

    def _entry_intact(self, entry) -> bool:
        """Check an entry's recorded identity against its payload."""
        if entry.get("fingerprint") != self.fingerprint:
            return False
        try:
            digest = entry_digest(entry["aps_by_pin"], entry["patterns"])
        except Exception:
            # A payload mangled enough to break canonicalization is by
            # definition not intact.
            return False
        return entry.get("content_digest") == digest

    def _path(self, signature) -> str:
        return os.path.join(self.root, signature_key(signature) + ".pkl")


def _shift_pattern(pattern, dx, dy, linked: dict = None):
    """Translate a pattern by ``(dx, dy)``; re-link APs via ``linked``."""
    aps = {}
    for pin, ap in pattern.aps.items():
        moved = ap.translated(dx, dy)
        if linked is not None:
            moved = linked.get((pin, moved.x, moved.y), moved)
        aps[pin] = moved
    violations = [
        (a, b, dataclasses.replace(v, marker=v.marker.translated(dx, dy)))
        for a, b, v in pattern.violations
    ]
    return dataclasses.replace(pattern, aps=aps, violations=violations)
