"""A small deterministic parallel executor.

``parallel_map`` applies a picklable function to a list of tasks and
returns results **in task order**, regardless of completion order.
With ``jobs <= 1`` it runs serially in-process through the exact same
call path (same worker function, same initializer), so a serial run is
the zero-dependency reference the parallel runs must bit-match.

Workers receive shared read-only state (the design, the config)
through the pool initializer once per process instead of once per
task, which is what makes per-unique-instance fan-out cheap: only the
task key and the task's own result cross the process boundary.

If the platform cannot spawn worker processes at all (sandboxed
environments, missing ``/dev/shm``), the executor degrades to the
serial path and records the fallback so callers can surface it in
their stats instead of crashing.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool


def effective_jobs(jobs) -> int:
    """Normalize a jobs knob: None/0/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class ParallelOutcome:
    """Results of a :func:`parallel_map` plus how they were obtained."""

    __slots__ = ("results", "jobs_used", "fellback")

    def __init__(self, results, jobs_used, fellback):
        self.results = results
        self.jobs_used = jobs_used
        self.fellback = fellback


def parallel_map(
    fn,
    tasks,
    jobs: int = 1,
    initializer=None,
    initargs: tuple = (),
) -> ParallelOutcome:
    """Apply ``fn`` to every task, results returned in task order.

    ``jobs <= 1`` runs in-process: the ``initializer`` is invoked
    locally and ``fn`` is called task by task -- the identical code
    path the worker processes execute, which is what guarantees
    serial/parallel result equality.

    With ``jobs > 1``, a :class:`ProcessPoolExecutor` runs the tasks;
    completion is unordered but results are re-ordered by task index
    before returning.  Pool creation failures (platforms without
    process support) degrade to the serial path with
    ``outcome.fellback`` set; task-level exceptions propagate.
    """
    tasks = list(tasks)
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return ParallelOutcome(
            _serial_map(fn, tasks, initializer, initargs), 1, False
        )
    try:
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=initializer,
            initargs=initargs,
        )
    except (OSError, ValueError, PermissionError):
        return ParallelOutcome(
            _serial_map(fn, tasks, initializer, initargs), 1, True
        )
    try:
        results = [None] * len(tasks)
        index_of = {}
        try:
            for idx, task in enumerate(tasks):
                index_of[executor.submit(fn, task)] = idx
            pending = set(index_of)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results[index_of[future]] = future.result()
        except BrokenProcessPool:
            # A worker died (fork refused, OOM-killed, ...): redo the
            # whole map serially rather than returning partial data.
            return ParallelOutcome(
                _serial_map(fn, tasks, initializer, initargs), 1, True
            )
        return ParallelOutcome(results, jobs, False)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _serial_map(fn, tasks, initializer, initargs) -> list:
    if initializer is not None:
        initializer(*initargs)
    return [fn(task) for task in tasks]
