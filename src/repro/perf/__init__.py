"""Performance subsystem: parallel fan-out, persistent caching, profiling.

The paper's framework is embarrassingly parallel at two levels --
Steps 1/2 across unique instances and Step 3 across row clusters --
and its per-unique-instance results are reusable across runs whenever
the unique-instance signature and the tech/config fingerprint match.
This package supplies the three pieces the orchestrator threads
through the flow:

* :mod:`repro.perf.parallel` -- a process-pool ``parallel_map`` with a
  zero-dependency serial fallback and deterministic result ordering.
* :mod:`repro.perf.apcache` -- a disk-backed access point / pattern
  cache keyed by unique-instance signature plus a fingerprint hash.
* :mod:`repro.perf.profile` -- cheap counters and timers aggregated
  into ``PinAccessResult.stats``.
"""

from repro.perf.apcache import AccessCache, paaf_fingerprint, perf_mode_key
from repro.perf.parallel import effective_jobs, parallel_map
from repro.perf.profile import Profiler, active_profiler, tick, timed

__all__ = [
    "AccessCache",
    "paaf_fingerprint",
    "perf_mode_key",
    "parallel_map",
    "effective_jobs",
    "Profiler",
    "active_profiler",
    "tick",
    "timed",
]
