"""Hot-path profiling hooks: cheap counters and wall-time buckets.

The DRC engine, the spatial index and the DP caches call :func:`tick`
on their hot paths.  When no profiler is active (the default) a tick
is a single global load and a falsy test; activating a
:class:`Profiler` turns the same calls into counter increments.  The
framework activates a profiler when ``PaafConfig.profile`` is set and
folds the counts -- together with worker-process snapshots returned by
the parallel tasks -- into ``PinAccessResult.stats``.

This module deliberately imports nothing from the rest of the package
so the lowest layers (``repro.geom``, ``repro.drc``) can depend on it
without cycles.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager


class Profiler:
    """A bag of named counters and accumulated wall-time buckets."""

    __slots__ = ("counters", "timers")

    def __init__(self):
        self.counters = Counter()
        self.timers = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] += n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer bucket ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def time(self, name: str):
        """Context manager accumulating the block's wall time."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, count in snapshot.get("counters", {}).items():
            self.counters[name] += count
        for name, seconds in snapshot.get("timers", {}).items():
            self.add_time(name, seconds)

    def snapshot(self) -> dict:
        """Return a plain-dict copy safe to pickle across processes."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
        }


_ACTIVE = None


def activate(profiler: Profiler = None) -> Profiler:
    """Install ``profiler`` (or a fresh one) as the active profiler."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    return _ACTIVE


def deactivate() -> Profiler:
    """Remove and return the active profiler (None if none)."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler


def active_profiler() -> Profiler:
    """Return the active profiler, or None."""
    return _ACTIVE


def tick(name: str, n: int = 1) -> None:
    """Increment a counter on the active profiler; no-op otherwise."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.counters[name] += n


@contextmanager
def timed(name: str):
    """Time a block into the active profiler; near-free when inactive."""
    profiler = _ACTIVE
    if profiler is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        profiler.add_time(name, time.perf_counter() - t0)


@contextmanager
def profiled(profiler: Profiler = None):
    """Activate a profiler for the block, restoring the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
