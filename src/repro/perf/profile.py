"""Hot-path profiling hooks -- now a thin shim over ``repro.obs``.

Historically this module owned the ``Profiler`` counter/timer bag and
a module-global active slot.  The observability subsystem
(:mod:`repro.obs.metrics`) subsumed it: ``Profiler`` *is* the typed
:class:`~repro.obs.metrics.MetricsRegistry` (same ``counters`` /
``timers`` attributes, same ``incr`` / ``add_time`` / ``time`` /
``merge`` / ``snapshot`` surface, plus gauges and histograms), and
the active slot moved from a module global to a context variable so
nested or concurrent activations -- threads, in-process worker tasks,
the span stack -- cannot cross-contaminate.

Every historical entry point keeps working with identical semantics
(`tick` is still one load and a falsy test when nothing is active);
new code should import from :mod:`repro.obs.metrics` directly.
"""

from __future__ import annotations

from repro.obs.metrics import (
    MetricsRegistry as Profiler,
    activate,
    active_registry as active_profiler,
    collecting as profiled,
    deactivate,
    tick,
    timed,
)

__all__ = [
    "Profiler",
    "activate",
    "active_profiler",
    "deactivate",
    "profiled",
    "tick",
    "timed",
]
