"""Picklable task functions for the parallel pin access pipeline.

A worker process receives the shared read-only state -- the design and
the config -- once through the pool initializer (:func:`init_worker`);
tasks then reference unique instances and row clusters *by index*, so
only small keys and each task's own result cross the process boundary.
Because :func:`repro.core.signature.unique_instances` and
:meth:`repro.db.design.Design.row_clusters` are deterministic, the
worker's index space is identical to the parent's.

The same functions run in-process when ``jobs=1`` (the serial
reference path), which is what makes parallel runs bit-identical to
serial ones by construction.

This module is imported lazily by the framework (after ``repro.core``
has fully initialized) to keep the import graph acyclic.
"""

from __future__ import annotations

import time

from repro.core.apgen import AccessPointGenerator
from repro.core.arraykernel import ArrayKernel
from repro.core.cluster import (
    ClusterPatternSelector,
    ClusterSelectionResult,
    SelectedAccess,
)
from repro.core.patterngen import AccessPatternGenerator
from repro.core.signature import unique_instances
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.drc.pairkernel import PairKernel
from repro.obs.collect import Collector
from repro.obs.trace import span


class WorkerState:
    """Per-process shared state, built once by :func:`init_worker`."""

    __slots__ = (
        "design", "config", "profile", "engine", "kernel", "akernel",
        "_uniques", "_clusters",
    )

    def __init__(self, design, config, profile=False, pair_tables=None,
                 array_tables=None):
        self.design = design
        self.config = config
        self.profile = profile
        self.engine = DrcEngine(design.tech)
        # One pair kernel per process, shared by every task: the
        # parent ships its prebuilt forbidden-displacement tables so
        # workers never recompile them (tables are value-keyed, hence
        # valid in any process).
        self.kernel = PairKernel(
            design.tech,
            mode=config.paircheck_mode,
            engine=self.engine,
            tables=pair_tables,
        )
        # Likewise one array kernel per process: the parent ships its
        # compiled per-cell occupancy tables (keyed by master/orient,
        # hence valid in any process) so Step 1 validation and Step 3
        # boundary checks never recompile them.
        self.akernel = ArrayKernel(
            design,
            mode=config.apcheck_mode,
            engine=self.engine,
            tables=array_tables,
        )
        self._uniques = None
        self._clusters = None

    @property
    def uniques(self):
        if self._uniques is None:
            self._uniques = unique_instances(self.design)
        return self._uniques

    @property
    def clusters(self):
        if self._clusters is None:
            self._clusters = self.design.row_clusters()
        return self._clusters


_STATE = None


def init_worker(design, config, profile=False, pair_tables=None,
                array_tables=None) -> None:
    """Pool initializer: install the shared state in this process."""
    global _STATE
    _STATE = WorkerState(design, config, profile, pair_tables, array_tables)


def compute_unique_access(
    design, engine, config, ui, kernel=None, akernel=None
) -> tuple:
    """Fused Step 1 + Step 2 for one unique instance.

    Returns ``(aps_by_pin, patterns, step1_seconds, step2_seconds)``.
    The two steps share the representative's intra-cell
    :class:`ShapeContext`, which is why they are fused into one task:
    the context is built (and, under process fan-out, shipped) once.
    ``kernel`` is the shared pair kernel and ``akernel`` the shared
    array kernel; each generator builds its own when None.
    """
    rep = ui.representative
    t0 = time.perf_counter()
    context = ShapeContext.from_instance(rep)
    generator = AccessPointGenerator(design, engine, config, akernel=akernel)
    aps_by_pin = {}
    for pin in rep.master.signal_pins():
        aps_by_pin[pin.name] = generator.generate_for_pin(rep, pin, context)
    t1 = time.perf_counter()
    patterns = AccessPatternGenerator(
        design.tech, engine, config, kernel=kernel, akernel=akernel
    ).generate(aps_by_pin, label=rep.name)
    t2 = time.perf_counter()
    return aps_by_pin, patterns, t1 - t0, t2 - t1


def step12_task(index: int) -> tuple:
    """Run fused Step 1 + 2 for unique instance ``index``.

    Returns ``(index, aps_by_pin, patterns, step1_s, step2_s,
    obs_snapshot_or_None)``.  The snapshot is the task's
    :meth:`repro.obs.collect.Collector.snapshot` -- metrics, span
    buffer and decision events -- which the parent merges back in
    deterministic task order.  Entering the task collector shadows
    any parent-context sinks (context-local activation), so the
    ``jobs=1`` in-process path produces exactly the per-task streams
    a worker process would.
    """
    state = _STATE
    ui = state.uniques[index]
    collector = Collector.from_config(state.config, profile=state.profile)
    if not collector.enabled:
        aps_by_pin, patterns, s1, s2 = compute_unique_access(
            state.design, state.engine, state.config, ui,
            state.kernel, state.akernel,
        )
        return index, aps_by_pin, patterns, s1, s2, None
    with collector:
        with span(
            "step12.unique",
            index=index,
            master=ui.master_name,
            rep=ui.representative.name,
            members=len(ui.members),
        ):
            aps_by_pin, patterns, s1, s2 = compute_unique_access(
                state.design, state.engine, state.config, ui,
                state.kernel, state.akernel,
            )
    return index, aps_by_pin, patterns, s1, s2, collector.snapshot()


def step3_task(payload: dict) -> tuple:
    """Run the Step 3 cluster DP over one cluster component.

    ``payload`` carries:

    * ``clusters`` -- global cluster indices of the component, in
      design order.  Clusters sharing an instance (multi-height cells)
      always land in the same component, so the serial pinning
      semantics -- a lower row's choice is kept in upper rows -- are
      preserved inside the task.
    * ``patterns`` -- instance name -> list of candidate
      :class:`AccessPattern` (the unique instance's Step 2 output).
    * ``translations`` -- instance name -> ``(dx, dy)`` from the
      representative's coordinates.
    * ``aps`` -- instance name -> Step 1 ``aps_by_pin`` powering the
      conflict-repair post-pass, or None when BCA is off.

    Returns ``(per_cluster, obs_snapshot_or_None)`` where
    ``per_cluster`` is a list of ``(cluster_index, selections,
    conflicts)`` and each selection is the lean transport triple
    ``(inst_name, pattern_index_or_None, overrides)``.  The snapshot
    carries the task's metrics/spans/events exactly like
    :func:`step12_task`.
    """
    state = _STATE
    collector = Collector.from_config(state.config, profile=state.profile)
    if not collector.enabled:
        return _run_step3_component(state, payload), None
    with collector:
        with span(
            "step3.component",
            clusters=len(payload["clusters"]),
            first=payload["clusters"][0] if payload["clusters"] else None,
        ):
            per_cluster = _run_step3_component(state, payload)
    return per_cluster, collector.snapshot()


def _run_step3_component(state, payload) -> list:
    design = state.design
    config = state.config
    patterns_by_inst = payload["patterns"]
    translations = payload["translations"]
    aps_by_inst = payload.get("aps")

    candidates_by_inst = {}
    for inst_name, patterns in patterns_by_inst.items():
        dx, dy = translations[inst_name]
        inst = design.instance(inst_name)
        candidates_by_inst[inst_name] = [
            SelectedAccess(inst=inst, pattern=p, dx=dx, dy=dy)
            for p in patterns
        ]

    alternatives_fn = None
    if aps_by_inst is not None:

        def alternatives_fn(inst_name, pin_name):
            return aps_by_inst.get(inst_name, {}).get(pin_name, [])

    selector = ClusterPatternSelector(
        design, state.engine, config, kernel=state.kernel,
        akernel=state.akernel,
    )
    result = ClusterSelectionResult()
    per_cluster = []
    for ci in payload["clusters"]:
        cluster = state.clusters[ci]
        before = len(result.conflicts)
        selector.select_cluster(
            cluster, candidates_by_inst, result, alternatives_fn
        )
        selections = []
        for inst in cluster:
            selected = result.selection[inst.name]
            pattern_index = None
            if selected.pattern is not None:
                pattern_index = _index_of_pattern(
                    patterns_by_inst.get(inst.name, ()), selected.pattern
                )
            selections.append(
                (inst.name, pattern_index, dict(selected.overrides))
            )
        per_cluster.append((ci, selections, result.conflicts[before:]))
    return per_cluster


def _index_of_pattern(patterns, pattern) -> int:
    for k, candidate in enumerate(patterns):
        if candidate is pattern:
            return k
    # A pattern that is not one of the shipped candidates cannot be
    # selected by the DP; reaching this is a programming error.
    raise ValueError("selected pattern not among candidates")
