"""Unique instance extraction (paper Sec. II-A).

A unique instance is defined by the signature (cell master,
orientation, offsets to all track patterns).  Instances sharing a
signature see identical on-track / off-track geometry relative to
their origins, so intra-cell pin access analysis runs once per unique
instance and the result translates to every member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.design import Design
from repro.db.inst import Instance
from repro.tech.layer import RoutingDirection


def instance_signature(design: Design, inst: Instance) -> tuple:
    """Return the signature tuple of ``inst``.

    The track-offset component records, for every track pattern in the
    design, the instance origin's offset modulo the track step along
    the pattern's axis (paper Figure 1: same master + orientation but
    different offsets are different unique instances).
    """
    offsets = []
    for pattern in design.track_patterns:
        if pattern.direction is RoutingDirection.HORIZONTAL:
            coordinate = inst.location.y
        else:
            coordinate = inst.location.x
        offsets.append(pattern.offset_of(coordinate))
    return (inst.master.name, inst.orient, tuple(offsets))


@dataclass
class UniqueInstance:
    """One equivalence class of instances with a shared signature.

    ``representative`` is the first member encountered; all analysis
    runs in its design coordinates, and results map to other members by
    pure translation (equal signatures guarantee equal orientation and
    track alignment).
    """

    signature: tuple
    representative: Instance
    members: list = field(default_factory=list)

    @property
    def master_name(self) -> str:
        """Return the cell master name."""
        return self.signature[0]

    def translation_to(self, inst: Instance) -> tuple:
        """Return ``(dx, dy)`` mapping representative coords to ``inst``."""
        if inst.master.name != self.master_name:
            raise ValueError(
                f"instance {inst.name} ({inst.master.name}) does not belong "
                f"to unique instance of {self.master_name}"
            )
        rep = self.representative
        return (
            inst.location.x - rep.location.x,
            inst.location.y - rep.location.y,
        )

    def __str__(self) -> str:
        return (
            f"UniqueInstance({self.master_name}, "
            f"{self.signature[1].def_name}, {len(self.members)} members)"
        )


def unique_instances(design: Design) -> list:
    """Group the design's instances into unique instances.

    Returns :class:`UniqueInstance` objects in first-seen order
    (instance insertion order), which keeps the whole flow
    deterministic.
    """
    by_signature = {}
    ordered = []
    for inst in design.instances.values():
        sig = instance_signature(design, inst)
        ui = by_signature.get(sig)
        if ui is None:
            ui = UniqueInstance(signature=sig, representative=inst)
            by_signature[sig] = ui
            ordered.append(ui)
        ui.members.append(inst)
    return ordered
