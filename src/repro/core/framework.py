"""The pin access framework orchestrator and its result object.

``PinAccessFramework.run()`` performs the paper's three-step,
multi-level flow: Step 1 (pin-based access point generation) and
Step 2 (access pattern generation) per unique instance, then Step 3
(cluster-based pattern selection) per concrete instance.  The result
carries everything the paper's experiments report: AP counts per
unique instance (Table II), selected access per instance pin and
failed-pin accounting (Table III), and per-step runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.apgen import AccessPointGenerator
from repro.core.cluster import (
    ClusterPatternSelector,
    ClusterSelectionResult,
    SelectedAccess,
)
from repro.core.config import PaafConfig
from repro.core.patterngen import AccessPatternGenerator
from repro.core.signature import UniqueInstance, unique_instances
from repro.db.design import Design
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine


@dataclass
class UniqueInstanceAccess:
    """Step 1 + Step 2 output for one unique instance."""

    unique_instance: UniqueInstance
    aps_by_pin: dict = field(default_factory=dict)
    patterns: list = field(default_factory=list)

    @property
    def total_aps(self) -> int:
        """Return the number of access points over all pins."""
        return sum(len(aps) for aps in self.aps_by_pin.values())


@dataclass
class PinAccessResult:
    """Aggregated output of the framework.

    ``timings`` keeps the paper's per-step wall clocks (``step1``,
    ``step2``, ``step3``, ``total``); ``stats`` carries the
    observability payload -- cache hit/miss counters, parallel
    fan-out info, pair-kernel table counters and (when profiling or
    tracing is on) the merged ``metrics.*`` / ``obs.*`` summaries --
    and is what ``--stats-json`` dumps.  Every stats key follows the
    ``domain.sub.name`` contract of
    :func:`repro.obs.metrics.stats_name_violations`.

    ``metrics`` / ``trace`` / ``events`` hold the live observability
    sinks of the run (a
    :class:`~repro.obs.metrics.MetricsRegistry`, a
    :class:`~repro.obs.trace.Tracer` and an
    :class:`~repro.obs.events.EventLog`) when the matching
    ``PaafConfig`` knobs are set, else None.
    """

    design: Design
    config: PaafConfig
    unique_accesses: list = field(default_factory=list)
    selection: ClusterSelectionResult = None
    timings: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    metrics: object = None
    trace: object = None
    events: object = None

    # -- identity hooks (repro.qa) ------------------------------------------
    #
    # Result ordering is stable by construction: ``unique_accesses``
    # follows ``unique_instances(design)`` order, Step 3 merges
    # per-cluster outputs back in design cluster order, and
    # ``failed_pins`` walks ``design.connected_pins()``.  The qa layer
    # leans on that to canonicalize and digest results.

    def canonical(self) -> dict:
        """Return the sorted plain-JSON form of this result.

        See :func:`repro.qa.fingerprint.canonical_result`; this is the
        payload golden records store and ``repro qa diff`` walks.
        """
        from repro.qa.fingerprint import canonical_result

        return canonical_result(self)

    def fingerprint(self):
        """Digest this result (combined + per-step sub-digests).

        The digest is invariant under every perf knob (``jobs``,
        ``paircheck_mode``, cache state) -- the identity contract
        ``repro qa check`` enforces against the golden corpus.
        """
        from repro.qa.fingerprint import result_fingerprint

        return result_fingerprint(self)

    # -- Experiment 1 metrics (unique-instance level) -----------------------

    @property
    def num_unique_instances(self) -> int:
        """Return the number of unique instances analyzed."""
        return len(self.unique_accesses)

    @property
    def total_access_points(self) -> int:
        """Return the total #APs over all unique instance pins."""
        return sum(ua.total_aps for ua in self.unique_accesses)

    def count_dirty_aps(self, engine: DrcEngine = None) -> int:
        """Re-validate every AP and count the dirty ones.

        This is the Table II "#Dirty APs" metric: an access point is
        dirty when its primary via placement has DRCs in the owning
        unique instance's intra-cell context.  PAAF validates during
        generation, so this returns 0 by construction; the method
        exists to *prove* it with an independent pass (and to score the
        baseline, which skips validation).
        """
        engine = engine or DrcEngine(self.design.tech)
        dirty = 0
        for ua in self.unique_accesses:
            rep = ua.unique_instance.representative
            context = ShapeContext.from_instance(rep)
            for pin_name, aps in ua.aps_by_pin.items():
                net_key = (rep.name, pin_name)
                for ap in aps:
                    if not ap.has_via_access:
                        continue
                    via = self.design.tech.via(ap.primary_via)
                    if engine.check_via_placement(
                        via, ap.x, ap.y, net_key, context
                    ):
                        dirty += 1
        return dirty

    # -- Experiment 2 metrics (instance level) -------------------------------

    def access_map(self) -> dict:
        """Return (inst name, pin name) -> selected AP in design coords."""
        out = {}
        if self.selection is None:
            return out
        for inst_name, selected in self.selection.selection.items():
            for pin_name, ap in selected.access_points().items():
                out[(inst_name, pin_name)] = ap
        return out

    def failed_pins(self) -> list:
        """Return connected pins without a DRC-clean access point.

        A pin fails when it has no access point at all, is not covered
        by the selected pattern, sits in a dirty pattern pair, or is
        party to a residual inter-cell boundary conflict.
        """
        failed = []
        conflict_pins = (
            self.selection.conflicting_pins() if self.selection else set()
        )
        ua_of_inst = self._unique_access_by_instance()
        for inst, pin in self.design.connected_pins():
            key = (inst.name, pin.name)
            ua = ua_of_inst.get(inst.name)
            if ua is None or not ua.aps_by_pin.get(pin.name):
                failed.append(key)
                continue
            selected = (
                self.selection.selection.get(inst.name)
                if self.selection
                else None
            )
            if selected is None or selected.pattern is None:
                failed.append(key)
                continue
            if pin.name not in selected.pattern.aps:
                failed.append(key)
                continue
            if any(
                pin.name in (pin_a, pin_b)
                for pin_a, pin_b, _ in selected.pattern.violations
            ):
                failed.append(key)
                continue
            if key in conflict_pins:
                failed.append(key)
        return failed

    def _unique_access_by_instance(self) -> dict:
        out = {}
        for ua in self.unique_accesses:
            for member in ua.unique_instance.members:
                out[member.name] = ua
        return out


class PinAccessFramework:
    """The paper's complete pin access analysis framework (PAAF).

    ``run()`` fans Steps 1 + 2 out as one fused task per unique
    instance and Step 3 as one task per row-cluster *component*
    (clusters linked by shared multi-height instances), over
    ``config.jobs`` worker processes.  ``jobs=1`` executes the very
    same task functions in-process, so parallel results are
    bit-identical to serial ones by construction.  With
    ``config.cache_dir`` set, per-unique-instance results persist
    across runs keyed by signature + tech/config fingerprint.
    """

    def __init__(
        self, design: Design, config: PaafConfig = None, cache=None
    ):
        from repro.drc.pairkernel import PairKernel

        self.design = design
        self.config = config or PaafConfig()
        self.engine = DrcEngine(design.tech)
        if cache is None and self.config.cache_dir:
            from repro.perf.apcache import AccessCache, paaf_fingerprint

            cache = AccessCache(
                self.config.cache_dir,
                paaf_fingerprint(design, self.config),
            )
        self.cache = cache
        # One translation-invariant pair kernel for the whole flow:
        # Step 2 compatibility, Step 3 boundary conflicts, the
        # incremental analyzer and every worker process share its
        # forbidden-displacement tables.
        self.kernel = PairKernel(
            design.tech,
            mode=self.config.paircheck_mode,
            engine=self.engine,
        )
        # And one array kernel for the per-cell workloads: Step 1
        # candidate validation and Step 3 via-vs-instance checks share
        # its compiled occupancy tables the same way.
        from repro.core.arraykernel import ArrayKernel

        self.akernel = ArrayKernel(
            design,
            mode=self.config.apcheck_mode,
            engine=self.engine,
        )

    def run(self, jobs: int = None, use_cache: bool = True) -> PinAccessResult:
        """Run all three steps and return the populated result.

        ``jobs`` overrides ``config.jobs`` for this run (``0`` means
        all cores); ``use_cache=False`` bypasses the persistent cache
        for both lookup and store (the CLI's ``--no-cache``).

        Observability (all perf-only -- results are bit-identical with
        any combination enabled): ``config.profile``/``metrics_out``
        collect the merged metrics registry, ``trace``/``trace_out``
        record the stitched span tree, ``explain`` the decision-event
        stream; :meth:`repro.obs.collect.Collector.finish` attaches
        them to the result and writes the configured output files.
        """
        from repro.obs import trace as obs_trace
        from repro.obs.collect import Collector

        jobs = self.config.jobs if jobs is None else jobs
        result = PinAccessResult(design=self.design, config=self.config)
        collector = Collector.from_config(self.config)
        with collector:
            t0 = time.perf_counter()
            with obs_trace.span("paaf.run", design=self.design.name):
                with obs_trace.span("paaf.kernel.prepare"):
                    self._prepare_kernel(use_cache)
                with obs_trace.span("paaf.step12") as span12:
                    step1_s, step2_s = self._run_step12(
                        result,
                        jobs,
                        use_cache,
                        collector,
                        span12["id"] if span12 else None,
                    )
                t2 = time.perf_counter()
                with obs_trace.span("paaf.step3") as span3:
                    self._run_step3_components(
                        result,
                        jobs,
                        collector,
                        span3["id"] if span3 else None,
                    )
                t3 = time.perf_counter()
        if self.cache is not None and use_cache and self.kernel.built:
            self.cache.store_pair_tables(self.kernel.tables)
        if self.cache is not None and use_cache and self.akernel.built:
            self.cache.store_array_tables(self.akernel.tables)
        result.stats.update(self.kernel.stats())
        result.stats.update(self.akernel.stats())
        result.timings["step1"] = step1_s
        result.timings["step2"] = step2_s
        result.timings["step3"] = t3 - t2
        result.timings["total"] = t3 - t0
        if self.cache is not None and use_cache:
            result.stats.update(self.cache.stats())
        if collector.registry is not None:
            registry = collector.registry
            registry.set_gauge("paaf.jobs", jobs)
            for name in (
                "paaf.unique_instances",
                "paaf.step12_tasks",
                "paaf.clusters",
                "paaf.cluster_components",
            ):
                if name in result.stats:
                    registry.set_gauge(name, result.stats[name])
        collector.finish(result, self.config)
        return result

    def run_step1(self, result: PinAccessResult = None) -> PinAccessResult:
        """Step 1: pin-based access point generation per unique instance."""
        if result is None:
            result = PinAccessResult(design=self.design, config=self.config)
            t0 = time.perf_counter()
            self._step1(result)
            result.timings["step1"] = time.perf_counter() - t0
            result.timings["total"] = result.timings["step1"]
            return result
        self._step1(result)
        return result

    def run_step2(self, result: PinAccessResult) -> PinAccessResult:
        """Step 2: access pattern generation per unique instance."""
        generator = AccessPatternGenerator(
            self.design.tech, self.engine, self.config,
            kernel=self.kernel, akernel=self.akernel,
        )
        for ua in result.unique_accesses:
            ua.patterns = generator.generate(
                ua.aps_by_pin,
                label=ua.unique_instance.representative.name,
            )
        return result

    def run_step3(self, result: PinAccessResult) -> PinAccessResult:
        """Step 3: cluster-based access pattern selection per instance."""
        candidates_by_inst = {}
        for ua in result.unique_accesses:
            for member in ua.unique_instance.members:
                dx, dy = ua.unique_instance.translation_to(member)
                candidates_by_inst[member.name] = [
                    SelectedAccess(inst=member, pattern=p, dx=dx, dy=dy)
                    for p in ua.patterns
                ]
        aps_of_member = {}
        for ua in result.unique_accesses:
            for member in ua.unique_instance.members:
                aps_of_member[member.name] = ua.aps_by_pin

        def alternatives_fn(inst_name, pin_name):
            return aps_of_member.get(inst_name, {}).get(pin_name, [])

        # The conflict-repair post-pass is a boundary-conflict-aware
        # mechanism; the paper's "w/o BCA" setup runs the bare cluster
        # DP only.
        if not self.config.boundary_conflict_aware:
            alternatives_fn = None
        selector = ClusterPatternSelector(
            self.design, self.engine, self.config,
            kernel=self.kernel, akernel=self.akernel,
        )
        result.selection = selector.select(candidates_by_inst, alternatives_fn)
        return result

    # -- internals ---------------------------------------------------------

    def _prepare_kernel(self, use_cache: bool) -> None:
        """Warm the pair kernel before any fan-out.

        Preloads persisted forbidden-displacement tables from the
        cache (they live under the same tech+config fingerprint as the
        AP entries) and eagerly compiles the rest, so worker processes
        receive the complete table set and never build their own.  In
        ``engine`` mode the kernel is inert and stays empty.
        """
        if self.kernel.mode != "engine":
            if self.cache is not None and use_cache:
                tables = self.cache.load_pair_tables()
                if tables:
                    self.kernel.preload(tables)
            self.kernel.build_all()
        if self.akernel.mode != "engine":
            if self.cache is not None and use_cache:
                tables = self.cache.load_array_tables()
                if tables:
                    self.akernel.preload(tables)
            self.akernel.build_all()

    def _run_step12(
        self,
        result: PinAccessResult,
        jobs: int,
        use_cache: bool,
        collector,
        parent_span=None,
    ) -> tuple:
        """Fused Step 1 + 2: one task per unique instance.

        Cache hits skip task dispatch entirely; misses run through
        :func:`repro.perf.workers.step12_task` (in-process for
        ``jobs=1``, worker processes otherwise) and are stored back.
        Task observability snapshots merge into ``collector`` in task
        order (worker spans re-parent under ``parent_span``, the
        ``paaf.step12`` span).  Returns the summed per-phase seconds
        ``(step1, step2)``.
        """
        from repro.perf import workers
        from repro.perf.parallel import parallel_map

        uis = unique_instances(self.design)
        entries = [None] * len(uis)
        cache = self.cache if use_cache else None
        pending = []
        for index, ui in enumerate(uis):
            hit = cache.load(ui) if cache is not None else None
            if hit is not None:
                entries[index] = hit
            else:
                pending.append(index)
        step1_s = step2_s = 0.0
        if pending:
            outcome = parallel_map(
                workers.step12_task,
                pending,
                jobs=jobs,
                initializer=workers.init_worker,
                initargs=(
                    self.design,
                    self.config,
                    self.config.profile,
                    self.kernel.tables,
                    self.akernel.tables,
                ),
            )
            for index, aps_by_pin, patterns, s1, s2, snap in outcome.results:
                entries[index] = (aps_by_pin, patterns)
                step1_s += s1
                step2_s += s2
                collector.merge_task(snap, parent_span=parent_span)
                if cache is not None:
                    cache.store(uis[index], aps_by_pin, patterns)
            result.stats["parallel.step12_jobs"] = outcome.jobs_used
            if outcome.fellback:
                result.stats["parallel.fallback"] = True
        result.stats["paaf.unique_instances"] = len(uis)
        result.stats["paaf.step12_tasks"] = len(pending)
        for ui, (aps_by_pin, patterns) in zip(uis, entries):
            result.unique_accesses.append(
                UniqueInstanceAccess(
                    unique_instance=ui,
                    aps_by_pin=aps_by_pin,
                    patterns=patterns,
                )
            )
        return step1_s, step2_s

    def _run_step3_components(
        self,
        result: PinAccessResult,
        jobs: int,
        collector,
        parent_span=None,
    ) -> None:
        """Step 3 fanned out across independent cluster components.

        Clusters sharing an instance (multi-height cells span several
        rows) form one component so the serial pinning semantics hold
        inside each task; components are mutually independent.  The
        per-cluster outputs are merged back in design cluster order,
        reproducing the serial selection and conflict ordering; task
        observability snapshots merge into ``collector`` in task
        order, re-parenting worker spans under ``parent_span`` (the
        ``paaf.step3`` span).
        """
        from repro.perf import workers
        from repro.perf.parallel import parallel_map

        clusters = self.design.row_clusters()
        components = _cluster_components(clusters)
        ua_of_inst = {}
        translations = {}
        for ua in result.unique_accesses:
            for member in ua.unique_instance.members:
                ua_of_inst[member.name] = ua
                translations[member.name] = ua.unique_instance.translation_to(
                    member
                )
        bca = self.config.boundary_conflict_aware
        payloads = []
        for component in components:
            names = sorted(
                {inst.name for ci in component for inst in clusters[ci]}
            )
            payloads.append(
                {
                    "clusters": component,
                    "patterns": {
                        name: ua_of_inst[name].patterns for name in names
                    },
                    "translations": {
                        name: translations[name] for name in names
                    },
                    "aps": (
                        {name: ua_of_inst[name].aps_by_pin for name in names}
                        if bca
                        else None
                    ),
                }
            )
        outcome = parallel_map(
            workers.step3_task,
            payloads,
            jobs=jobs,
            initializer=workers.init_worker,
            initargs=(
                self.design,
                self.config,
                self.config.profile,
                self.kernel.tables,
                self.akernel.tables,
            ),
        )
        result.stats["parallel.step3_jobs"] = outcome.jobs_used
        result.stats["paaf.clusters"] = len(clusters)
        result.stats["paaf.cluster_components"] = len(components)
        if outcome.fellback:
            result.stats["parallel.fallback"] = True

        per_cluster = []
        for component_result, snap in outcome.results:
            collector.merge_task(snap, parent_span=parent_span)
            per_cluster.extend(component_result)
        per_cluster.sort(key=lambda item: item[0])

        selection = ClusterSelectionResult()
        built = {}
        for _, selections, conflicts in per_cluster:
            for inst_name, pattern_index, overrides in selections:
                selected = built.get(inst_name)
                if selected is None:
                    if pattern_index is None:
                        # Mirror the serial placeholder for instances
                        # without a selectable pattern.
                        selected = SelectedAccess(
                            inst=self.design.instance(inst_name),
                            pattern=None,
                            dx=0,
                            dy=0,
                        )
                    else:
                        dx, dy = translations[inst_name]
                        selected = SelectedAccess(
                            inst=self.design.instance(inst_name),
                            pattern=ua_of_inst[inst_name].patterns[
                                pattern_index
                            ],
                            dx=dx,
                            dy=dy,
                        )
                    built[inst_name] = selected
                # A pinned multi-height instance reports accumulated
                # overrides from each cluster; the latest snapshot wins.
                selected.overrides = dict(overrides)
                selection.selection[inst_name] = selected
            selection.conflicts.extend(conflicts)
        result.selection = selection

    def _step1(self, result: PinAccessResult) -> None:
        generator = AccessPointGenerator(
            self.design, self.engine, self.config, akernel=self.akernel
        )
        for ui in unique_instances(self.design):
            rep = ui.representative
            context = ShapeContext.from_instance(rep)
            ua = UniqueInstanceAccess(unique_instance=ui)
            for pin in rep.master.signal_pins():
                ua.aps_by_pin[pin.name] = generator.generate_for_pin(
                    rep, pin, context
                )
            result.unique_accesses.append(ua)


def _cluster_components(clusters: list) -> list:
    """Group cluster indices into instance-sharing components.

    Two clusters belong to the same component when they share an
    instance (a multi-height cell is a member of every row it covers).
    Components are returned as sorted index lists, ordered by their
    first cluster, so processing components in order and clusters
    within a component in order reproduces the serial cluster order.
    """
    parent = list(range(len(clusters)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    owner = {}
    for ci, cluster in enumerate(clusters):
        for inst in cluster:
            prev = owner.get(inst.name)
            if prev is None:
                owner[inst.name] = ci
            else:
                parent[find(ci)] = find(prev)
    components = {}
    for ci in range(len(clusters)):
        components.setdefault(find(ci), []).append(ci)
    return sorted(
        (sorted(members) for members in components.values()),
        key=lambda members: members[0],
    )


def evaluate_failed_pins(design: Design, access_map: dict) -> list:
    """Independent scorer: pins whose selected access is not DRC-clean.

    ``access_map`` maps (instance name, pin name) to the selected
    :class:`AccessPoint` in design coordinates.  The scorer builds the
    full-design context *plus every selected via's shapes*, then
    re-checks each pin's via placement; any violation -- a dirty AP,
    an intra-cell conflict or an inter-cell conflict -- fails the pin.
    Connected pins missing from the map fail outright.

    This is the fair Table III metric applied identically to PAAF and
    to the legacy baseline.
    """
    engine = DrcEngine(design.tech)
    context = ShapeContext.from_design(design)
    net_keys = {}
    for (inst_name, pin_name), ap in access_map.items():
        net = design.net_of(inst_name, pin_name)
        net_key = net.name if net is not None else (inst_name, pin_name)
        net_keys[(inst_name, pin_name)] = net_key
        if not ap.has_via_access:
            continue
        via = design.tech.via(ap.primary_via)
        context.add(via.bottom_layer, via.bottom_at(ap.x, ap.y), net_key)
        context.add(via.cut_layer, via.cut_at(ap.x, ap.y), net_key)
        context.add(via.top_layer, via.top_at(ap.x, ap.y), net_key)
    failed = []
    for inst, pin in design.connected_pins():
        key = (inst.name, pin.name)
        ap = access_map.get(key)
        if ap is None:
            failed.append(key)
            continue
        if not ap.has_via_access:
            # Planar-only access: accessible iff a planar direction
            # validated (macro pins); otherwise the pin fails.
            if not ap.planar_dirs:
                failed.append(key)
            continue
        via = design.tech.via(ap.primary_via)
        # Scope the min-step merge to the accessed pin's own shapes:
        # same-net metal of *other* cells merging into the polygon is a
        # router-stage concern, not a pin-access defect.
        own_rects = [
            r
            for rects in inst.pin_rects(pin.name).values()
            for r in rects
        ]
        violations = engine.check_via_placement(
            via,
            ap.x,
            ap.y,
            net_keys[key],
            context,
            min_step_rects=own_rects,
        )
        if violations:
            failed.append(key)
    return failed
