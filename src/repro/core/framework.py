"""The pin access framework orchestrator and its result object.

``PinAccessFramework.run()`` performs the paper's three-step,
multi-level flow: Step 1 (pin-based access point generation) and
Step 2 (access pattern generation) per unique instance, then Step 3
(cluster-based pattern selection) per concrete instance.  The result
carries everything the paper's experiments report: AP counts per
unique instance (Table II), selected access per instance pin and
failed-pin accounting (Table III), and per-step runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.apgen import AccessPointGenerator
from repro.core.cluster import (
    ClusterPatternSelector,
    ClusterSelectionResult,
    SelectedAccess,
)
from repro.core.config import PaafConfig
from repro.core.patterngen import AccessPatternGenerator
from repro.core.signature import UniqueInstance, unique_instances
from repro.db.design import Design
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine


@dataclass
class UniqueInstanceAccess:
    """Step 1 + Step 2 output for one unique instance."""

    unique_instance: UniqueInstance
    aps_by_pin: dict = field(default_factory=dict)
    patterns: list = field(default_factory=list)

    @property
    def total_aps(self) -> int:
        """Return the number of access points over all pins."""
        return sum(len(aps) for aps in self.aps_by_pin.values())


@dataclass
class PinAccessResult:
    """Aggregated output of the framework."""

    design: Design
    config: PaafConfig
    unique_accesses: list = field(default_factory=list)
    selection: ClusterSelectionResult = None
    timings: dict = field(default_factory=dict)

    # -- Experiment 1 metrics (unique-instance level) -----------------------

    @property
    def num_unique_instances(self) -> int:
        """Return the number of unique instances analyzed."""
        return len(self.unique_accesses)

    @property
    def total_access_points(self) -> int:
        """Return the total #APs over all unique instance pins."""
        return sum(ua.total_aps for ua in self.unique_accesses)

    def count_dirty_aps(self, engine: DrcEngine = None) -> int:
        """Re-validate every AP and count the dirty ones.

        This is the Table II "#Dirty APs" metric: an access point is
        dirty when its primary via placement has DRCs in the owning
        unique instance's intra-cell context.  PAAF validates during
        generation, so this returns 0 by construction; the method
        exists to *prove* it with an independent pass (and to score the
        baseline, which skips validation).
        """
        engine = engine or DrcEngine(self.design.tech)
        dirty = 0
        for ua in self.unique_accesses:
            rep = ua.unique_instance.representative
            context = ShapeContext.from_instance(rep)
            for pin_name, aps in ua.aps_by_pin.items():
                net_key = (rep.name, pin_name)
                for ap in aps:
                    if not ap.has_via_access:
                        continue
                    via = self.design.tech.via(ap.primary_via)
                    if engine.check_via_placement(
                        via, ap.x, ap.y, net_key, context
                    ):
                        dirty += 1
        return dirty

    # -- Experiment 2 metrics (instance level) -------------------------------

    def access_map(self) -> dict:
        """Return (inst name, pin name) -> selected AP in design coords."""
        out = {}
        if self.selection is None:
            return out
        for inst_name, selected in self.selection.selection.items():
            for pin_name, ap in selected.access_points().items():
                out[(inst_name, pin_name)] = ap
        return out

    def failed_pins(self) -> list:
        """Return connected pins without a DRC-clean access point.

        A pin fails when it has no access point at all, is not covered
        by the selected pattern, sits in a dirty pattern pair, or is
        party to a residual inter-cell boundary conflict.
        """
        failed = []
        conflict_pins = (
            self.selection.conflicting_pins() if self.selection else set()
        )
        ua_of_inst = self._unique_access_by_instance()
        for inst, pin in self.design.connected_pins():
            key = (inst.name, pin.name)
            ua = ua_of_inst.get(inst.name)
            if ua is None or not ua.aps_by_pin.get(pin.name):
                failed.append(key)
                continue
            selected = (
                self.selection.selection.get(inst.name)
                if self.selection
                else None
            )
            if selected is None or selected.pattern is None:
                failed.append(key)
                continue
            if pin.name not in selected.pattern.aps:
                failed.append(key)
                continue
            if any(
                pin.name in (pin_a, pin_b)
                for pin_a, pin_b, _ in selected.pattern.violations
            ):
                failed.append(key)
                continue
            if key in conflict_pins:
                failed.append(key)
        return failed

    def _unique_access_by_instance(self) -> dict:
        out = {}
        for ua in self.unique_accesses:
            for member in ua.unique_instance.members:
                out[member.name] = ua
        return out


class PinAccessFramework:
    """The paper's complete pin access analysis framework (PAAF)."""

    def __init__(self, design: Design, config: PaafConfig = None):
        self.design = design
        self.config = config or PaafConfig()
        self.engine = DrcEngine(design.tech)

    def run(self) -> PinAccessResult:
        """Run all three steps and return the populated result."""
        result = PinAccessResult(design=self.design, config=self.config)
        t0 = time.perf_counter()
        self.run_step1(result)
        t1 = time.perf_counter()
        self.run_step2(result)
        t2 = time.perf_counter()
        self.run_step3(result)
        t3 = time.perf_counter()
        result.timings["step1"] = t1 - t0
        result.timings["step2"] = t2 - t1
        result.timings["step3"] = t3 - t2
        result.timings["total"] = t3 - t0
        return result

    def run_step1(self, result: PinAccessResult = None) -> PinAccessResult:
        """Step 1: pin-based access point generation per unique instance."""
        if result is None:
            result = PinAccessResult(design=self.design, config=self.config)
            t0 = time.perf_counter()
            self._step1(result)
            result.timings["step1"] = time.perf_counter() - t0
            result.timings["total"] = result.timings["step1"]
            return result
        self._step1(result)
        return result

    def run_step2(self, result: PinAccessResult) -> PinAccessResult:
        """Step 2: access pattern generation per unique instance."""
        generator = AccessPatternGenerator(
            self.design.tech, self.engine, self.config
        )
        for ua in result.unique_accesses:
            ua.patterns = generator.generate(ua.aps_by_pin)
        return result

    def run_step3(self, result: PinAccessResult) -> PinAccessResult:
        """Step 3: cluster-based access pattern selection per instance."""
        candidates_by_inst = {}
        for ua in result.unique_accesses:
            for member in ua.unique_instance.members:
                dx, dy = ua.unique_instance.translation_to(member)
                candidates_by_inst[member.name] = [
                    SelectedAccess(inst=member, pattern=p, dx=dx, dy=dy)
                    for p in ua.patterns
                ]
        aps_of_member = {}
        for ua in result.unique_accesses:
            for member in ua.unique_instance.members:
                aps_of_member[member.name] = ua.aps_by_pin

        def alternatives_fn(inst_name, pin_name):
            return aps_of_member.get(inst_name, {}).get(pin_name, [])

        # The conflict-repair post-pass is a boundary-conflict-aware
        # mechanism; the paper's "w/o BCA" setup runs the bare cluster
        # DP only.
        if not self.config.boundary_conflict_aware:
            alternatives_fn = None
        selector = ClusterPatternSelector(
            self.design, self.engine, self.config
        )
        result.selection = selector.select(candidates_by_inst, alternatives_fn)
        return result

    # -- internals ---------------------------------------------------------

    def _step1(self, result: PinAccessResult) -> None:
        generator = AccessPointGenerator(
            self.design, self.engine, self.config
        )
        for ui in unique_instances(self.design):
            rep = ui.representative
            context = ShapeContext.from_instance(rep)
            ua = UniqueInstanceAccess(unique_instance=ui)
            for pin in rep.master.signal_pins():
                ua.aps_by_pin[pin.name] = generator.generate_for_pin(
                    rep, pin, context
                )
            result.unique_accesses.append(ua)


def evaluate_failed_pins(design: Design, access_map: dict) -> list:
    """Independent scorer: pins whose selected access is not DRC-clean.

    ``access_map`` maps (instance name, pin name) to the selected
    :class:`AccessPoint` in design coordinates.  The scorer builds the
    full-design context *plus every selected via's shapes*, then
    re-checks each pin's via placement; any violation -- a dirty AP,
    an intra-cell conflict or an inter-cell conflict -- fails the pin.
    Connected pins missing from the map fail outright.

    This is the fair Table III metric applied identically to PAAF and
    to the legacy baseline.
    """
    engine = DrcEngine(design.tech)
    context = ShapeContext.from_design(design)
    net_keys = {}
    for (inst_name, pin_name), ap in access_map.items():
        net = design.net_of(inst_name, pin_name)
        net_key = net.name if net is not None else (inst_name, pin_name)
        net_keys[(inst_name, pin_name)] = net_key
        if not ap.has_via_access:
            continue
        via = design.tech.via(ap.primary_via)
        context.add(via.bottom_layer, via.bottom_at(ap.x, ap.y), net_key)
        context.add(via.cut_layer, via.cut_at(ap.x, ap.y), net_key)
        context.add(via.top_layer, via.top_at(ap.x, ap.y), net_key)
    failed = []
    for inst, pin in design.connected_pins():
        key = (inst.name, pin.name)
        ap = access_map.get(key)
        if ap is None:
            failed.append(key)
            continue
        if not ap.has_via_access:
            # Planar-only access: accessible iff a planar direction
            # validated (macro pins); otherwise the pin fails.
            if not ap.planar_dirs:
                failed.append(key)
            continue
        via = design.tech.via(ap.primary_via)
        # Scope the min-step merge to the accessed pin's own shapes:
        # same-net metal of *other* cells merging into the polygon is a
        # router-stage concern, not a pin-access defect.
        own_rects = [
            r
            for rects in inst.pin_rects(pin.name).values()
            for r in rects
        ]
        violations = engine.check_via_placement(
            via,
            ap.x,
            ap.y,
            net_keys[key],
            context,
            min_step_rects=own_rects,
        )
        if violations:
            failed.append(key)
    return failed
