"""Access pattern records (paper Sec. II-B2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessPattern:
    """One access point per pin of a unique instance.

    ``aps`` maps pin name to the chosen :class:`AccessPoint` (in the
    representative instance's design coordinates).  ``cost`` is the DP
    path cost that produced the pattern; ``violations`` records any
    DRCs found by the post-generation full validation (a clean pattern
    has none).
    """

    aps: dict
    cost: int = 0
    violations: list = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """Return True if the full validation found no DRCs."""
        return not self.violations

    def pin_names(self) -> list:
        """Return covered pin names in insertion (pin ordering) order."""
        return list(self.aps)

    def ap_of(self, pin_name: str):
        """Return the access point chosen for ``pin_name``."""
        return self.aps[pin_name]

    def signature(self) -> tuple:
        """Return a hashable identity (pin -> AP location/via) tuple.

        Two DP iterations can converge to the same pattern; the
        generator uses this to drop duplicates.
        """
        return tuple(
            (name, ap.x, ap.y, ap.primary_via) for name, ap in self.aps.items()
        )

    def __str__(self) -> str:
        return (
            f"AccessPattern({len(self.aps)} pins, cost={self.cost}, "
            f"{'clean' if self.is_clean else f'{len(self.violations)} DRCs'})"
        )
