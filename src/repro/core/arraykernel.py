"""Compiled per-cell occupancy tables for Steps 1-3 (the array kernel).

The pair kernel (PR 2) proved that a DRC verdict depending only on a
*relative displacement* can be compiled once into integer tests and
then answered with zero engine calls.  This module extends that idea
from via *pairs* to the two remaining per-candidate engine workloads:

* **Step 1 (Algorithm 1)** -- every candidate access point drops every
  via definition through ``DrcEngine.check_via_placement`` against the
  owning cell's intra-cell context.  The cell's shapes are *fixed* in
  the instance's frame and the via translates, so the whole check (bar
  min-step, below) is again a function of the displacement ``(x - ox,
  y - oy)`` from the instance origin -- and because the origin-relative
  geometry of an instance depends only on ``(master, orientation)``,
  one compiled :class:`CellTables` serves every unique instance of a
  master/orient combination, persists under the AP-cache fingerprint
  next to ``pairkernel.pkl`` and ships to worker processes whole.

* **Step 3 boundary conflicts** -- ``_via_vs_instance_clean`` is the
  same check with ``net_key=None`` and min-step off; it compiles to a
  second table per ``(master, orient, via)``.

The compiled form reuses the pair kernel's verified test records
(metal short + PRL spacing, EOL open boxes, cut spacing with the
identical-rect exemption) with the cell shape as the fixed ``A`` side
and the via enclosure/cut/planar stub as the moving ``B`` side.  On
top of the pointwise ``clean(dx, dy)`` verdict, :class:`SiteTable`
answers **whole candidate rows at once**: for a fixed row displacement
it first merges the active EOL boxes into sorted open *forbidden
intervals* along the moving axis, then rasterizes intervals and the
remaining pointwise tests into one integer **occupancy bitmask** over
the row's candidate coordinates -- Algorithm 1's validation becomes a
vectorized pass per (coordinate-type, rect) batch instead of a
per-candidate engine probe.

Min-step is the one check that is not pairwise (it walks the merged
boundary of the enclosure plus the pin metal it lands on), so it gets
a dedicated exact evaluator (:class:`MinStepTable`): with the node
presets' ``max_edges == 0`` the verdict reduces to "does the merged
outline have any maximal straight boundary run shorter than the rule
length", which a closed-form two-rectangle enumeration answers in the
dominant case and a coordinate-compressed parity sweep (mirroring
``repro.geom.polygon.boundary_edges``) answers in general.  Rules
with ``max_edges > 0`` fall back to the engine's loop walk.

Three modes mirror ``paircheck_mode``:

* ``array``  -- compiled tables only (the fast path, default);
* ``engine`` -- the kernel is inert, callers use the DrcEngine;
* ``verify`` -- compute both and raise :class:`ApCheckMismatch` on any
  divergence (the engine remains the oracle).

:class:`FlatDp` is the Step 2 companion: the layered DP over flat
contiguous cost arrays indexed by (group, ordinal) with precomputed
compatibility bitmasks, replacing per-edge closure calls; it produces
bit-identical choices to :class:`~repro.core.dpgraph.LayeredDpGraph`
(same strict-less relaxation, same first-minimum trace-back).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.coords import candidate_coords
from repro.drc.engine import DrcEngine
from repro.drc.eol import eol_trigger_regions
from repro.drc.minstep import check_min_step
from repro.drc.pairkernel import (
    _BOX,
    _CUT,
    _METAL,
    _metal_test,
    _overlap_box,
    _reach_window,
)
from repro.geom.rect import Rect
from repro.perf.profile import tick

APCHECK_MODES = ("array", "engine", "verify")


class ApCheckMismatch(RuntimeError):
    """An array-kernel verdict diverged from the DRC engine oracle."""


# -- compiled test evaluation -------------------------------------------------
#
# Test records are the pair kernel's formats verbatim (the math is
# pinned by tests/test_drc_pairkernel.py); the evaluators here add the
# row-batched form the pair kernel never needed.


def _metal_clean(test, dx: int, dy: int) -> bool:
    (_, axlo, aylo, axhi, ayhi,
     bxlo, bylo, bxhi, byhi, steps) = test
    ox = min(axhi, bxhi + dx) - max(axlo, bxlo + dx)
    oy = min(ayhi, byhi + dy) - max(aylo, bylo + dy)
    if ox > 0 and oy > 0:
        return False  # metal-short
    prl = ox if ox > oy else oy
    required = steps[0][1]
    for bound, spacing in steps:
        if prl >= bound:
            required = spacing
    gapx = -ox if ox < 0 else 0
    gapy = -oy if oy < 0 else 0
    if gapx > 0 and gapy > 0:
        return gapx * gapx + gapy * gapy >= required * required
    return (gapx if gapx > gapy else gapy) >= required


def _cut_clean(test, dx: int, dy: int) -> bool:
    (_, axlo, aylo, axhi, ayhi,
     bxlo, bylo, bxhi, byhi, spacing, skip) = test
    if skip is not None and dx == skip[0] and dy == skip[1]:
        return True  # the identical same-net cut is exempt
    ox = min(axhi, bxhi + dx) - max(axlo, bxlo + dx)
    oy = min(ayhi, byhi + dy) - max(aylo, bylo + dy)
    if ox > 0 and oy > 0:
        return False  # cut-short
    gapx = -ox if ox < 0 else 0
    gapy = -oy if oy < 0 else 0
    if gapx > 0 and gapy > 0:
        return gapx * gapx + gapy * gapy >= spacing * spacing
    return (gapx if gapx > gapy else gapy) >= spacing


def _merge_open_intervals(intervals: list) -> list:
    """Merge open intervals; endpoints that only touch stay split.

    ``(a, b)`` and ``(b, c)`` do *not* merge -- the point ``b`` is in
    neither, and a candidate sitting exactly on it must stay clean.
    """
    if not intervals:
        return []
    intervals.sort()
    merged = [list(intervals[0])]
    for lo, hi in intervals[1:]:
        if lo < merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1][1] = hi
        else:
            merged.append([lo, hi])
    return [tuple(pair) for pair in merged]


class SiteTable:
    """Compiled displacement tests of one moving shape-set vs one cell.

    ``window`` is the closed quick-reject hull, ``tests`` the tagged
    records and ``spans`` the per-test closed interaction windows
    (parallel to ``tests``) that power the row-batched form.  The
    per-row compilation -- merged forbidden intervals plus leftover
    pointwise tests -- is memoized in ``_rows`` and excluded from
    pickling (it rebuilds lazily in whatever process queries it).
    """

    __slots__ = ("window", "tests", "spans", "_rows", "_packed", "_memo")

    def __init__(self, window, tests, spans):
        self.window = window
        self.tests = tests
        self.spans = spans
        self._rows = {}
        self._packed = None
        self._memo = {}

    def __getstate__(self):
        return (self.window, self.tests, self.spans)

    def __setstate__(self, state):
        self.window, self.tests, self.spans = state
        self._rows = {}
        self._packed = None
        self._memo = {}

    def __eq__(self, other):
        return (
            isinstance(other, SiteTable)
            and self.window == other.window
            and self.tests == other.tests
            and self.spans == other.spans
        )

    def clean(self, dx: int, dy: int) -> bool:
        """Pointwise verdict for displacement ``(dx, dy)``."""
        window = self.window
        if window is None:
            return True
        if (
            dx < window[0]
            or dx > window[1]
            or dy < window[2]
            or dy > window[3]
        ):
            return True
        # Verdicts are pure in the displacement; identical offsets
        # recur across same-pitch placements, so memoize in-window
        # probes (the out-of-window fast path above stays unmemoized).
        memo = self._memo
        verdict = memo.get((dx, dy))
        if verdict is not None:
            return verdict
        packed = self._packed
        if packed is None:
            # Span bounds flattened next to their test: one tuple
            # unpack per iteration instead of a zip plus four
            # subscripts.  Lazy and unpickled-fresh, like ``_rows``.
            packed = self._packed = [
                (s[0], s[1], s[2], s[3], t)
                for t, s in zip(self.tests, self.spans)
            ]
        verdict = True
        for s0, s1, s2, s3, test in packed:
            if dx < s0 or dx > s1 or dy < s2 or dy > s3:
                continue
            kind = test[0]
            if kind == _BOX:
                if test[1] < dx < test[2] and test[3] < dy < test[4]:
                    verdict = False
                    break
            elif kind == _METAL:
                if not _metal_clean(test, dx, dy):
                    verdict = False
                    break
            else:
                if not _cut_clean(test, dx, dy):
                    verdict = False
                    break
        memo[(dx, dy)] = verdict
        return verdict

    def _row(self, fixed_is_y: bool, fixed: int) -> tuple:
        """Return ``(forbidden_intervals, pointwise_tests)`` for a row.

        Filters the table down to the tests whose fixed-axis window
        contains ``fixed``, merges the active EOL boxes into sorted
        open intervals on the moving axis, and keeps the metal/cut
        tests (whose dirty region is not an interval) with their
        moving-axis windows for pointwise evaluation.
        """
        key = (fixed_is_y, fixed)
        row = self._rows.get(key)
        if row is not None:
            return row
        intervals = []
        pointwise = []
        for test, spanw in zip(self.tests, self.spans):
            if fixed_is_y:
                flo, fhi = spanw[2], spanw[3]
                mlo, mhi = spanw[0], spanw[1]
            else:
                flo, fhi = spanw[0], spanw[1]
                mlo, mhi = spanw[2], spanw[3]
            if fixed < flo or fixed > fhi:
                continue
            if test[0] == _BOX:
                # The fixed-axis condition is strict for boxes.
                if fixed_is_y:
                    if test[3] < fixed < test[4]:
                        intervals.append((test[1], test[2]))
                else:
                    if test[1] < fixed < test[2]:
                        intervals.append((test[3], test[4]))
            else:
                pointwise.append((test, mlo, mhi))
        row = (_merge_open_intervals(intervals), pointwise)
        self._rows[key] = row
        return row

    def row_mask(self, fixed_is_y: bool, fixed: int, moving: list) -> int:
        """Occupancy bitmask over one candidate row.

        ``moving`` is the ascending list of candidate displacements on
        the moving axis (x when ``fixed_is_y``); bit ``i`` is set when
        candidate ``moving[i]`` is dirty.
        """
        window = self.window
        if window is None:
            return 0
        if fixed_is_y:
            if fixed < window[2] or fixed > window[3]:
                return 0
        elif fixed < window[0] or fixed > window[1]:
            return 0
        intervals, pointwise = self._row(fixed_is_y, fixed)
        mask = 0
        for lo, hi in intervals:
            i0 = bisect_right(moving, lo)
            i1 = bisect_left(moving, hi)
            if i0 < i1:
                mask |= ((1 << (i1 - i0)) - 1) << i0
        for test, mlo, mhi in pointwise:
            i0 = bisect_left(moving, mlo)
            i1 = bisect_right(moving, mhi)
            if test[0] == _METAL:
                for i in range(i0, i1):
                    if mask >> i & 1:
                        continue
                    d = moving[i]
                    dx, dy = (d, fixed) if fixed_is_y else (fixed, d)
                    if not _metal_clean(test, dx, dy):
                        mask |= 1 << i
            else:
                for i in range(i0, i1):
                    if mask >> i & 1:
                        continue
                    d = moving[i]
                    dx, dy = (d, fixed) if fixed_is_y else (fixed, d)
                    if not _cut_clean(test, dx, dy):
                        mask |= 1 << i
        return mask


_REACH_MEMO = {}


def _steps_reach(steps) -> int:
    """Max spacing of a spacing-table row (memoized by the row tuple).

    The reach depends only on the table row, which repeats across
    every shape of a layer; the memo turns the per-shape scan into a
    dict hit.
    """
    reach = _REACH_MEMO.get(steps)
    if reach is None:
        reach = max(s for _, s in steps)
        _REACH_MEMO[steps] = reach
    return reach


def _compile_metal_tests(tech, shapes_by_layer, layer_name, mrect, regions):
    """Metal/EOL tests of every shape on ``layer_name`` vs one moving rect.

    Returns ``(test, span, fpin)`` entries with the owning pin (None
    for obstructions) kept alongside: the per-pin same-net exemption is
    applied later, at assembly, so one compilation serves every pin of
    the cell plus the ``net_key=None`` Step 3 table.  ``regions``
    memoizes each fixed shape's EOL trigger regions, which depend only
    on ``(layer, shape)`` and not on the moving rect.
    """
    layer = tech.layer(layer_name)
    table = layer.spacing_table
    eol = layer.eol
    out = []
    if table is None and eol is None:
        return out
    moving_regions = ()
    if eol is not None:
        mkey = (layer_name, mrect.xlo, mrect.ylo, mrect.xhi, mrect.yhi)
        moving_regions = regions.get(mkey)
        if moving_regions is None:
            moving_regions = eol_trigger_regions(layer, mrect)
            regions[mkey] = moving_regions
    for frect, fpin in shapes_by_layer.get(layer_name, ()):
        # The (test, span) records depend only on the rect pair, not
        # on the owning pin; with a kernel-shared ``regions`` dict the
        # memo carries across cells (rail and power shapes repeat
        # between masters).
        pkey = (
            layer_name,
            frect.xlo, frect.ylo, frect.xhi, frect.yhi,
            mrect.xlo, mrect.ylo, mrect.xhi, mrect.yhi,
        )
        pair = regions.get(pkey)
        if pair is None:
            pair = []
            if table is not None:
                test = _metal_test(table, frect, mrect)
                pair.append((
                    test,
                    _reach_window(frect, mrect, _steps_reach(test[9])),
                ))
            if eol is not None:
                rkey = (
                    layer_name,
                    frect.xlo, frect.ylo, frect.xhi, frect.yhi,
                )
                fixed_regions = regions.get(rkey)
                if fixed_regions is None:
                    fixed_regions = eol_trigger_regions(layer, frect)
                    regions[rkey] = fixed_regions
                for region in fixed_regions:
                    test = _overlap_box(region, mrect)
                    pair.append((test, test[1:]))
                for region in moving_regions:
                    # The moving rect's trigger regions translate
                    # rigidly with it; Rect.overlaps is symmetric.
                    test = _overlap_box(frect, region)
                    pair.append((test, test[1:]))
            regions[pkey] = pair
        for test, span_ in pair:
            out.append((test, span_, fpin))
    return out


def _compile_cut_tests(tech, shapes_by_layer, cut_layer_name, cut):
    """Cut-spacing tests vs one moving cut, skip displacement deferred.

    Each entry is ``(test, span, fpin, skip)`` with the test compiled
    *without* the identical-rect exemption; ``skip`` carries the
    displacement that would be exempt if the shape turns out to belong
    to the probing pin.  Assembly grafts it in (tuple slot 10) only
    for same-pin shapes, matching the engine's same-net rule.
    """
    rule = tech.layer(cut_layer_name).cut_spacing
    out = []
    if rule is None:
        return out
    for frect, fpin in shapes_by_layer.get(cut_layer_name, ()):
        skip = None
        if frect.width == cut.width and frect.height == cut.height:
            skip = (frect.xlo - cut.xlo, frect.ylo - cut.ylo)
        out.append((
            (
                _CUT,
                frect.xlo, frect.ylo, frect.xhi, frect.yhi,
                cut.xlo, cut.ylo, cut.xhi, cut.yhi,
                rule.spacing, None,
            ),
            _reach_window(frect, cut, rule.spacing),
            fpin,
            skip,
        ))
    return out


def _assemble_site_table(metal_entries, cut_entries, own_pin) -> SiteTable:
    """Filter pre-compiled entries for one probing pin into a SiteTable.

    ``own_pin`` names the probing net's pin: its shapes are exempt
    from metal/EOL exactly like the engine's same-net skip, and they
    donate the cut test's identical-rect skip displacement.
    ``own_pin=None`` reproduces the ``net_key=None`` call (Step 3):
    *every* shape is foreign to metal/EOL while obstruction cuts take
    the skip role.
    """
    tests = []
    spans = []
    for test, span_, fpin in metal_entries:
        if own_pin is not None and fpin == own_pin:
            continue
        tests.append(test)
        spans.append(span_)
    for test, span_, fpin, skip in cut_entries:
        if skip is not None and fpin == own_pin:
            test = test[:10] + (skip,)
        tests.append(test)
        spans.append(span_)
    if not tests:
        return SiteTable(None, (), ())
    window = (
        min(s[0] for s in spans),
        max(s[1] for s in spans),
        min(s[2] for s in spans),
        max(s[3] for s in spans),
    )
    return SiteTable(window, tuple(tests), tuple(spans))


def _group_entries(entries) -> dict:
    """Group compiled metal entries by owning pin, with per-group hulls.

    Assembling a per-pin table then costs one list-extend per *group*
    instead of one filter test per *entry*, and the window hull
    combines precomputed group hulls instead of rescanning every span.
    """
    acc = {}
    for test, span_, fpin in entries:
        group = acc.get(fpin)
        if group is None:
            group = acc[fpin] = ([], [])
        group[0].append(test)
        group[1].append(span_)
    groups = {}
    for fpin, (tests, spans) in acc.items():
        h0, h1, h2, h3 = spans[0]
        for s0, s1, s2, s3 in spans:
            if s0 < h0:
                h0 = s0
            if s1 > h1:
                h1 = s1
            if s2 < h2:
                h2 = s2
            if s3 > h3:
                h3 = s3
        groups[fpin] = (tests, spans, (h0, h1, h2, h3))
    return groups


def _merge_groups(a: dict, b: dict) -> dict:
    """Merge two grouped-entry dicts (the via's bottom + top layers)."""
    if not a:
        return b
    if not b:
        return a
    out = {
        fpin: (list(tests), list(spans), hull)
        for fpin, (tests, spans, hull) in a.items()
    }
    for fpin, (tests, spans, hull) in b.items():
        group = out.get(fpin)
        if group is None:
            out[fpin] = (tests, spans, hull)
            continue
        group[0].extend(tests)
        group[1].extend(spans)
        gh = group[2]
        out[fpin] = (
            group[0],
            group[1],
            (
                gh[0] if gh[0] < hull[0] else hull[0],
                gh[1] if gh[1] > hull[1] else hull[1],
                gh[2] if gh[2] < hull[2] else hull[2],
                gh[3] if gh[3] > hull[3] else hull[3],
            ),
        )
    return out


def _assemble_grouped(groups, cut_entries, own_pin) -> SiteTable:
    """Grouped-form :func:`_assemble_site_table` (same semantics)."""
    tests = []
    spans = []
    window = None
    for fpin, (gtests, gspans, hull) in groups.items():
        if own_pin is not None and fpin == own_pin:
            continue
        tests.extend(gtests)
        spans.extend(gspans)
        if window is None:
            window = hull
        else:
            window = (
                hull[0] if hull[0] < window[0] else window[0],
                hull[1] if hull[1] > window[1] else window[1],
                hull[2] if hull[2] < window[2] else window[2],
                hull[3] if hull[3] > window[3] else window[3],
            )
    for test, span_, fpin, skip in cut_entries:
        if skip is not None and fpin == own_pin:
            test = test[:10] + (skip,)
        tests.append(test)
        spans.append(span_)
        if window is None:
            window = span_
        else:
            window = (
                span_[0] if span_[0] < window[0] else window[0],
                span_[1] if span_[1] > window[1] else window[1],
                span_[2] if span_[2] < window[2] else window[2],
                span_[3] if span_[3] > window[3] else window[3],
            )
    if not tests:
        return SiteTable(None, (), ())
    return SiteTable(window, tuple(tests), tuple(spans))


def _shapes_by_layer(shapes) -> dict:
    by_layer = {}
    for layer_name, rect, pin_name in shapes:
        by_layer.setdefault(layer_name, []).append((rect, pin_name))
    return by_layer


def build_site_table(
    tech, shapes, moving_metal, moving_cut, own_pin
) -> SiteTable:
    """Compile one site table.

    ``shapes`` is the cell's origin-relative geometry as ``(layer
    name, rect, pin name or None)`` triples (None marks obstructions);
    ``moving_metal`` lists the translating metal rects as ``(layer
    name, rect)``; ``moving_cut`` is the translating cut rect (or
    None, for planar stubs).  See :func:`_assemble_site_table` for the
    ``own_pin`` semantics.  :func:`build_cell_tables` bypasses this
    wrapper to share one compilation across all pins of a cell.
    """
    by_layer = _shapes_by_layer(shapes)
    regions = {}
    metal = []
    for layer_name, mrect in moving_metal:
        metal.extend(
            _compile_metal_tests(tech, by_layer, layer_name, mrect, regions)
        )
    cut = (
        _compile_cut_tests(tech, by_layer, *moving_cut)
        if moving_cut is not None
        else ()
    )
    return _assemble_site_table(metal, cut, own_pin)


# -- min-step ----------------------------------------------------------------


def _union_any_short(rects: list, length: int) -> bool:
    """Does the union of ``rects`` have a boundary run below ``length``?

    Coordinate-compressed parity sweep over the same covered-cell
    grid as :func:`repro.geom.polygon.boundary_edges`: a grid-line
    segment is boundary when exactly one side is covered, and maximal
    same-oriented contiguous runs on a line are exactly the merged
    loop edges the engine's walk measures.
    """
    rects = [r for r in rects if r.xhi > r.xlo and r.yhi > r.ylo]
    if not rects:
        return False
    xs = sorted({c for r in rects for c in (r.xlo, r.xhi)})
    ys = sorted({c for r in rects for c in (r.ylo, r.yhi)})
    nx = len(xs) - 1
    ny = len(ys) - 1
    cov = [[False] * ny for _ in range(nx)]
    for r in rects:
        i0 = bisect_left(xs, r.xlo)
        i1 = bisect_left(xs, r.xhi)
        j0 = bisect_left(ys, r.ylo)
        j1 = bisect_left(ys, r.yhi)
        for i in range(i0, i1):
            row = cov[i]
            for j in range(j0, j1):
                row[j] = True
    for j in range(ny + 1):
        run = 0
        orient = None
        for i in range(nx):
            below = j > 0 and cov[i][j - 1]
            above = j < ny and cov[i][j]
            if above != below:
                if above is orient:
                    run += xs[i + 1] - xs[i]
                else:
                    if 0 < run < length:
                        return True
                    orient = above
                    run = xs[i + 1] - xs[i]
            else:
                if 0 < run < length:
                    return True
                orient = None
                run = 0
        if 0 < run < length:
            return True
    for i in range(nx + 1):
        run = 0
        orient = None
        for j in range(ny):
            left = i > 0 and cov[i - 1][j]
            right = i < nx and cov[i][j]
            if left != right:
                if right is orient:
                    run += ys[j + 1] - ys[j]
                else:
                    if 0 < run < length:
                        return True
                    orient = right
                    run = ys[j + 1] - ys[j]
            else:
                if 0 < run < length:
                    return True
                orient = None
                run = 0
        if 0 < run < length:
            return True
    return False


def _pair_sides_short(c_a, span_a, c_b, span_b, low_side, length) -> bool:
    """Check the two same-type side edges of an overlapping rect pair.

    ``c_a``/``c_b`` are the side coordinates (e.g. both left x's),
    ``span_a``/``span_b`` the perpendicular closed spans.  The rects
    overlap openly on both axes, so either the edges are collinear and
    merge into one run, or the outer edge is fully visible and the
    inner edge is clipped by the outer rect's open span into at most
    two runs.
    """
    if c_a == c_b:
        lo = span_a[0] if span_a[0] < span_b[0] else span_b[0]
        hi = span_a[1] if span_a[1] > span_b[1] else span_b[1]
        return hi - lo < length
    if (c_a < c_b) == low_side:
        outer, inner = span_a, span_b
    else:
        outer, inner = span_b, span_a
    if outer[1] - outer[0] < length:
        return True
    piece = outer[0] - inner[0]
    if 0 < piece < length:
        return True
    piece = inner[1] - outer[1]
    return 0 < piece < length


def _two_rect_short(a: Rect, b: Rect, length: int) -> bool:
    """Exact min-step verdict for two openly overlapping rects."""
    ay = (a.ylo, a.yhi)
    by = (b.ylo, b.yhi)
    ax = (a.xlo, a.xhi)
    bx = (b.xlo, b.xhi)
    return (
        _pair_sides_short(a.xlo, ay, b.xlo, by, True, length)
        or _pair_sides_short(a.xhi, ay, b.xhi, by, False, length)
        or _pair_sides_short(a.ylo, ax, b.ylo, bx, True, length)
        or _pair_sides_short(a.yhi, ax, b.yhi, bx, False, length)
    )


class MinStepTable:
    """Min-step evaluator for one (pin, via) on the via's bottom layer.

    ``enc`` is the via's bottom enclosure (via-origin-relative),
    ``own`` the pin's positive-area rects on that layer
    (instance-origin-relative) -- exactly the engine's merge set, which
    takes the bottom enclosure plus the touching same-net metal.
    ``_subsets`` memoizes verdicts of pure own-rect unions (hit when
    the enclosure lands inside pin metal, the common clean case);
    ``_verdicts`` memoizes whole displacement verdicts, shared by
    every instance of the cell (Algorithm 1 probes the same on-track
    displacements in each of them).
    """

    __slots__ = ("length", "max_edges", "enc", "own", "_bounds",
                 "_subsets", "_verdicts")

    def __init__(self, length, max_edges, enc, own):
        self.length = length
        self.max_edges = max_edges
        self.enc = enc
        self.own = tuple(
            r for r in own if r.xhi > r.xlo and r.yhi > r.ylo
        )
        self._reset_caches()

    def _reset_caches(self):
        self._bounds = tuple(
            (r.xlo, r.ylo, r.xhi, r.yhi) for r in self.own
        )
        self._subsets = {}
        self._verdicts = {}

    def __getstate__(self):
        return (self.length, self.max_edges, self.enc, self.own)

    def __setstate__(self, state):
        self.length, self.max_edges, self.enc, self.own = state
        self._reset_caches()

    def __eq__(self, other):
        return (
            isinstance(other, MinStepTable)
            and self.__getstate__() == other.__getstate__()
        )

    def dirty(self, dx: int, dy: int, layer) -> bool:
        """Min-step verdict for the via dropped at displacement ``d``."""
        if not self.max_edges:
            verdict = self._verdicts.get((dx, dy))
            if verdict is None:
                verdict = self._dirty_exact(dx, dy)
                self._verdicts[(dx, dy)] = verdict
            return verdict
        enc = self.enc.translated(dx, dy)
        touching = [
            i for i, r in enumerate(self.own) if r.intersects(enc)
        ]
        # Rules tolerating short runs are order-dependent along the
        # loop; defer to the engine's walk (rare preset).
        rects = [enc] + [self.own[i] for i in touching]
        return bool(check_min_step(layer, rects))

    def _dirty_exact(self, dx: int, dy: int) -> bool:
        base = self.enc
        exlo = base.xlo + dx
        eylo = base.ylo + dy
        exhi = base.xhi + dx
        eyhi = base.yhi + dy
        touching = [
            i
            for i, (xlo, ylo, xhi, yhi) in enumerate(self._bounds)
            if xlo <= exhi and xhi >= exlo and ylo <= eyhi and yhi >= eylo
        ]
        length = self.length
        if not touching:
            return exhi - exlo < length or eyhi - eylo < length
        enc = Rect(exlo, eylo, exhi, eyhi)
        contained = any(
            self.own[i].contains_rect(enc) for i in touching
        )
        if contained:
            # The enclosure adds nothing to the union; the verdict
            # depends only on which own rects participate.
            key = tuple(touching)
            verdict = self._subsets.get(key)
            if verdict is None:
                verdict = _union_any_short(
                    [self.own[i] for i in key], length
                )
                self._subsets[key] = verdict
            return verdict
        if len(touching) == 1:
            other = self.own[touching[0]]
            if enc.overlaps(other):
                return _two_rect_short(enc, other, length)
        return _union_any_short(
            [enc] + [self.own[i] for i in touching], length
        )


# -- per-cell table bundle ----------------------------------------------------


class CellTables:
    """Every compiled table of one ``(master, orientation)`` cell.

    * ``site`` -- ``(pin, via) -> SiteTable`` (Step 1 metal/EOL/cut);
    * ``minstep`` -- ``(pin, via) -> MinStepTable or None``;
    * ``planar`` -- ``(pin, layer) -> (E, W, N, S)`` stub tables;
    * ``inst_clean`` -- ``via -> SiteTable`` with ``net_key=None``
      semantics (Step 3 boundary checks, min-step off).
    """

    __slots__ = ("site", "minstep", "planar", "inst_clean")

    def __init__(self, site, minstep, planar, inst_clean):
        self.site = site
        self.minstep = minstep
        self.planar = planar
        self.inst_clean = inst_clean

    def __getstate__(self):
        return (self.site, self.minstep, self.planar, self.inst_clean)

    def __setstate__(self, state):
        self.site, self.minstep, self.planar, self.inst_clean = state


def _planar_stubs(layer) -> dict:
    """The four one-pitch escape stubs relative to the access point."""
    half = layer.width // 2
    length = layer.pitch
    return {
        "E": Rect(0, -half, length, half),
        "W": Rect(-length, -half, 0, half),
        "N": Rect(-half, 0, half, length),
        "S": Rect(-half, -length, half, 0),
    }


def build_cell_tables(tech, inst, regions: dict = None) -> CellTables:
    """Compile every table of ``inst``'s (master, orientation) class.

    Shapes are taken origin-relative, so the result is shared by every
    instance placed with the same master and orientation regardless of
    location or track offsets.  ``regions`` optionally carries the
    compile memo (EOL trigger regions and per-rect-pair test records)
    across calls, so shapes repeated between masters compile once.
    """
    ox, oy = inst.location.x, inst.location.y
    shapes = []
    for pin, layer_name, rect in inst.all_pin_shapes():
        shapes.append((layer_name, rect.translated(-ox, -oy), pin.name))
    for layer_name, rect in inst.obstruction_rects():
        shapes.append((layer_name, rect.translated(-ox, -oy), None))
    by_layer = _shapes_by_layer(shapes)

    # Tests depend on the moving rect, not the probing pin, so compile
    # each distinct (layer, moving rect) once per cell and let the
    # per-pin tables below filter the shared entries.  ``regions``
    # additionally memoizes EOL trigger regions and per-rect-pair test
    # records -- kernel-shared when the caller passes its own dict.
    if regions is None:
        regions = {}
    metal_memo = {}

    def metal_groups(layer_name, mrect):
        key = (layer_name, mrect.xlo, mrect.ylo, mrect.xhi, mrect.yhi)
        hit = metal_memo.get(key)
        if hit is None:
            hit = _group_entries(_compile_metal_tests(
                tech, by_layer, layer_name, mrect, regions
            ))
            metal_memo[key] = hit
        return hit

    via_memo = {}

    def via_groups(via):
        hit = via_memo.get(via.name)
        if hit is None:
            hit = (
                _merge_groups(
                    metal_groups(via.bottom_layer, via.bottom_enc),
                    metal_groups(via.top_layer, via.top_enc),
                ),
                _compile_cut_tests(tech, by_layer, via.cut_layer, via.cut),
            )
            via_memo[via.name] = hit
        return hit

    site = {}
    minstep = {}
    planar = {}
    for pin in inst.master.pins:
        rects_by_layer = inst.pin_rects(pin.name)
        for layer_name in rects_by_layer:
            layer = tech.layer(layer_name)
            if not layer.is_routing:
                continue
            stubs = _planar_stubs(layer)
            planar[(pin.name, layer_name)] = tuple(
                _assemble_grouped(
                    metal_groups(layer_name, stubs[d]), (), pin.name
                )
                for d in ("E", "W", "N", "S")
            )
            own = [
                r.translated(-ox, -oy) for r in rects_by_layer[layer_name]
            ]
            for via in tech.vias_from(layer_name):
                metal, cut = via_groups(via)
                site[(pin.name, via.name)] = _assemble_grouped(
                    metal, cut, pin.name
                )
                rule = layer.min_step
                minstep[(pin.name, via.name)] = (
                    MinStepTable(
                        rule.min_step_length,
                        rule.max_edges,
                        via.bottom_enc,
                        own,
                    )
                    if rule is not None
                    else None
                )
    inst_clean = {}
    empty = SiteTable(None, (), ())
    for via in tech.vias:
        # A via whose metal and cut layers carry no cell geometry can
        # never collide with this cell; skip the compile outright.
        if not (
            via.bottom_layer in by_layer
            or via.top_layer in by_layer
            or via.cut_layer in by_layer
        ):
            inst_clean[via.name] = empty
            continue
        metal, cut = via_groups(via)
        inst_clean[via.name] = _assemble_grouped(metal, cut, None)
    return CellTables(site, minstep, planar, inst_clean)


# -- candidate coordinate tables ---------------------------------------------


class CoordCache:
    """Memoized Algorithm-1 candidate coordinate enumeration.

    A coordinate list depends only on ``(layer, axis, type, span)``
    (plus the via for enclosure-boundary alignment), while the
    Algorithm 1 ladder re-enumerates the same list for every
    ``(t1, t0)`` combination it crosses it into -- up to 12 times per
    rect.  The cache compiles each list once; callers share the stored
    list and must not mutate it.
    """

    def __init__(self, design):
        self.design = design
        self.tech = design.tech
        self._memo = {}

    def candidate(self, axis, ctype, rect, layer, via) -> list:
        span = rect.xspan if axis == "x" else rect.yspan
        key = (layer.name, axis, int(ctype), span.lo, span.hi)
        hit = self._memo.get(key)
        if hit is None:
            hit = {}
            self._memo[key] = hit
        via_key = via.name if via is not None else None
        coords = hit.get(via_key)
        if coords is None:
            coords = candidate_coords(
                axis, ctype, rect, layer, self.design, self.tech, via
            )
            hit[via_key] = coords
        return coords


# -- the kernel --------------------------------------------------------------


class ArrayKernel:
    """Value-keyed per-cell verdict service for Steps 1 and 3.

    Tables build lazily per ``(master, orientation)``; a prebuilt dict
    can be injected (worker shipping, persisted cache) via ``tables``
    or :meth:`preload`.  ``built`` counts tables compiled by *this*
    kernel, which decides whether the persisted copy needs rewriting.
    """

    def __init__(self, design, mode: str = "array", engine=None,
                 tables: dict = None):
        if mode not in APCHECK_MODES:
            raise ValueError(
                f"apcheck mode must be one of {APCHECK_MODES}, "
                f"got {mode!r}"
            )
        self.design = design
        self.tech = design.tech
        self.mode = mode
        self.engine = engine if engine is not None else DrcEngine(design.tech)
        self.coords = CoordCache(design)
        self.tables = {}
        self.preloaded = False
        self.built = 0
        self.candidates = 0
        self.filtered = 0
        self.minstep_engine = 0
        self.dp_solves = 0
        self.verify_mismatches = 0
        self._verify_ctx = {}
        self._compile_memo = {}
        if tables:
            self.preload(tables)

    def preload(self, tables: dict) -> None:
        """Adopt prebuilt tables (persisted cache or parent process)."""
        self.tables.update(tables)
        self.preloaded = True

    @staticmethod
    def cell_key(inst) -> tuple:
        orient = inst.orient
        return (
            inst.master.name,
            getattr(orient, "name", None) or str(orient),
        )

    def cell_tables(self, inst) -> CellTables:
        """Return (building if needed) the tables of ``inst``'s class."""
        key = self.cell_key(inst)
        tables = self.tables.get(key)
        if tables is None:
            tick("arraykernel.table.build")
            tables = build_cell_tables(self.tech, inst, self._compile_memo)
            self.tables[key] = tables
            self.built += 1
        else:
            tick("arraykernel.table.hit")
        return tables

    def build_all(self) -> "ArrayKernel":
        """Eagerly compile the tables of every unique instance.

        Called before process fan-out so workers receive the complete
        set and the persisted copy is whole; distinct (master, orient)
        classes are far fewer than unique instances.
        """
        from repro.core.signature import unique_instances

        for ui in unique_instances(self.design):
            self.cell_tables(ui.representative)
        return self

    # -- verdicts -----------------------------------------------------------

    def via_vs_instance_clean(self, via_name, x, y, inst) -> bool:
        """Step 3's via-vs-neighbor-shapes verdict from the tables.

        The displacement-space equivalent of ``not
        engine.check_via_placement(via, x, y, None, context,
        with_min_step=False)`` against ``inst``'s intra-cell context.
        """
        table = self.cell_tables(inst).inst_clean[via_name]
        verdict = table.clean(x - inst.location.x, y - inst.location.y)
        self.candidates += 1
        tick("arraykernel.candidates")
        if not verdict:
            self.filtered += 1
            tick("arraykernel.filtered")
        if self.mode == "verify":
            oracle = self._engine_instance_clean(via_name, x, y, inst)
            if oracle != verdict:
                self.verify_mismatches += 1
                tick("arraykernel.verify.mismatch")
                raise ApCheckMismatch(
                    f"array kernel diverged from DrcEngine for via "
                    f"{via_name} at ({x}, {y}) vs instance {inst.name}: "
                    f"kernel={'clean' if verdict else 'dirty'}, "
                    f"engine={'clean' if oracle else 'dirty'}"
                )
        return verdict

    def _engine_instance_clean(self, via_name, x, y, inst) -> bool:
        from repro.drc.context import ShapeContext

        context = self._verify_ctx.get(inst.name)
        if context is None:
            context = ShapeContext.from_instance(inst)
            self._verify_ctx[inst.name] = context
        return not self.engine.check_via_placement(
            self.tech.via(via_name), x, y, None, context,
            with_min_step=False,
        )

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Return kernel counters for ``PinAccessResult.stats``."""
        return {
            "arraykernel.mode": self.mode,
            "arraykernel.tables": len(self.tables),
            "arraykernel.built": self.built,
            "arraykernel.preloaded": self.preloaded,
            "arraykernel.candidates": self.candidates,
            "arraykernel.filtered": self.filtered,
            "arraykernel.minstep_engine": self.minstep_engine,
            "arraykernel.dp_solves": self.dp_solves,
            "arraykernel.verify_mismatches": self.verify_mismatches,
        }


# -- flat-array DP (Step 2) ---------------------------------------------------


class FlatDp:
    """Algorithm 2 over flat cost arrays with precompiled edge masks.

    Vertices are addressed by (group, ordinal); the iteration-invariant
    parts of Algorithm 3's edge cost -- the pairwise via compatibility
    between neighboring groups and (for the history term) between a
    group and the one two back -- compile once into per-vertex integer
    bitmasks, so each of the N pattern iterations re-runs only the
    integer relaxation.  Identical to feeding
    :class:`~repro.core.dpgraph.LayeredDpGraph` the closure: same
    strict-less relaxation order, same first-minimum trace-back.
    """

    def __init__(self, groups, compatible, config):
        self.groups = groups
        self.config = config
        scale = config.ap_cost_scale
        self.src = [
            [scale * ap.cost for _, ap in group] for group in groups
        ]
        self.compat_prev = [None]
        self.compat_skip = [None, None]
        for m in range(1, len(groups)):
            prev_group = groups[m - 1]
            self.compat_prev.append([
                self._mask(prev_group, curr, compatible)
                for curr in groups[m]
            ])
            if m >= 2:
                self.compat_skip.append([
                    self._mask(groups[m - 2], curr, compatible)
                    for curr in groups[m]
                ])

    @staticmethod
    def _mask(prev_group, curr, compatible) -> int:
        mask = 0
        curr_ap = curr[1]
        for i, (_, prev_ap) in enumerate(prev_group):
            if compatible(prev_ap, curr_ap):
                mask |= 1 << i
        return mask

    def solve(self, is_used) -> tuple:
        """One DP iteration; returns ``(chosen payloads, cost)``.

        ``is_used`` flags boundary vertices already consumed by earlier
        patterns (Algorithm 3's boundary-conflict penalty); it is the
        only part of the edge cost that changes between iterations.
        """
        groups = self.groups
        cfg = self.config
        bca = cfg.boundary_conflict_aware
        history = cfg.history_aware
        penalty = cfg.penalty_cost
        drc = cfg.drc_cost
        last = len(groups) - 1
        used_first = [is_used(v) for v in groups[0]] if bca else None
        used_last = (
            [is_used(v) for v in groups[last]] if bca and last else used_first
        )
        costs = list(self.src[0])
        parents = [None]
        for m in range(1, len(groups)):
            src_prev = self.src[m - 1]
            src_curr = self.src[m]
            cmasks = self.compat_prev[m]
            smasks = self.compat_skip[m] if history and m >= 2 else None
            prev_parents = parents[m - 1]
            prev_used = used_first if m == 1 and bca else None
            curr_used = used_last if m == last and bca else None
            nprev = len(src_prev)
            curr_costs = []
            curr_parents = []
            for j in range(len(src_curr)):
                cmask = cmasks[j]
                smask = smasks[j] if smasks is not None else None
                j_used = curr_used is not None and curr_used[j]
                j_src = src_curr[j]
                best = None
                best_i = 0
                for i in range(nprev):
                    if prev_used is not None and prev_used[i]:
                        edge = penalty
                    elif j_used:
                        edge = penalty
                    elif not cmask >> i & 1:
                        edge = drc
                    elif (
                        smask is not None
                        and not smask >> prev_parents[i] & 1
                    ):
                        edge = drc
                    else:
                        edge = src_prev[i] + j_src
                    total = costs[i] + edge
                    if best is None or total < best:
                        best = total
                        best_i = i
                curr_costs.append(best)
                curr_parents.append(best_i)
            costs = curr_costs
            parents.append(curr_parents)
        best_j = 0
        for j in range(1, len(costs)):
            if costs[j] < costs[best_j]:
                best_j = j
        path = []
        j = best_j
        for m in range(len(groups) - 1, -1, -1):
            path.append(groups[m][j])
            if m:
                j = parents[m][j]
        path.reverse()
        return path, costs[best_j]
