"""PAAF core: the paper's pin access analysis framework.

The three-step flow (paper Sec. III):

1. :mod:`repro.core.apgen` -- pin-based access point generation
   (Algorithm 1) over the coordinate-type ladder of
   :mod:`repro.core.coords`.
2. :mod:`repro.core.patterngen` -- unique-instance access pattern
   generation (Algorithms 2 and 3) on the DP graph of
   :mod:`repro.core.dpgraph`, boundary-conflict-aware and
   history-aware.
3. :mod:`repro.core.cluster` -- cluster-based access pattern selection.

:class:`~repro.core.framework.PinAccessFramework` orchestrates all
three and is the public entry point; compare against
:class:`~repro.core.baseline.LegacyPinAccess` (the pre-PAO TritonRoute
v0.0.6.0 strategy).
"""

from repro.core.signature import UniqueInstance, unique_instances
from repro.core.coords import CoordType
from repro.core.apgen import AccessPoint, AccessPointGenerator
from repro.core.pattern import AccessPattern
from repro.core.patterngen import AccessPatternGenerator
from repro.core.cluster import ClusterPatternSelector
from repro.core.framework import (
    PinAccessFramework,
    PinAccessResult,
    UniqueInstanceAccess,
    evaluate_failed_pins,
)
from repro.core.config import PaafConfig
from repro.core.baseline import LegacyPinAccess
from repro.core.incremental import IncrementalPinAccess
from repro.core.ioaccess import IoPinAccess
from repro.core.oracle import (
    PinAccessAnswer,
    PinAccessOracle,
    UnknownInstanceError,
    UnknownPinError,
)

__all__ = [
    "UniqueInstance",
    "unique_instances",
    "CoordType",
    "AccessPoint",
    "AccessPointGenerator",
    "AccessPattern",
    "AccessPatternGenerator",
    "ClusterPatternSelector",
    "PaafConfig",
    "PinAccessFramework",
    "PinAccessResult",
    "UniqueInstanceAccess",
    "evaluate_failed_pins",
    "LegacyPinAccess",
    "IncrementalPinAccess",
    "IoPinAccess",
    "PinAccessOracle",
    "PinAccessAnswer",
    "UnknownInstanceError",
    "UnknownPinError",
]
