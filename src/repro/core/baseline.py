"""Legacy pin access baseline (TritonRoute v0.0.6.0 style).

The pre-PAO strategy the paper compares against in Experiments 1 and 2:

* Access points are the on-track crossing points inside the pin shape
  (preferred-direction tracks x upper-layer tracks), truncated at the
  per-pin quota.  No coordinate-type fallback ladder, so narrow or
  off-grid pins get few or no points.
* No DRC validation at generation time: the via is assumed legal, so a
  fraction of the emitted access points is *dirty* (Table II's "#Dirty
  APs" column).
* Legality screening is a naive linear scan, per pin, over the *whole
  design's* shape list (the legacy flow had no spatial index or
  region-query DRC engine -- the scalability gap the paper calls out),
  checking only shape containment at the candidate point -- blind to
  min-step, EOL and spacing, which is why the legacy flow is
  simultaneously slower and dirtier.
* Instance-level selection just takes the first access point per pin;
  there is no intra-cell pattern DP and no inter-cell cluster
  selection, so neighboring pins routinely receive conflicting vias
  (Table III's "#Failed Pins").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.coords import CoordType, track_patterns_for_axis
from repro.core.apgen import AccessPoint
from repro.core.framework import PinAccessResult, UniqueInstanceAccess
from repro.core.signature import unique_instances
from repro.db.design import Design
from repro.geom.maxrect import maximal_rectangles
from repro.geom.polygon import RectilinearPolygon


@dataclass
class LegacyPinAccess:
    """The legacy baseline flow."""

    design: Design
    k: int = 3

    def run(self) -> PinAccessResult:
        """Run the baseline and return a PAAF-shaped result.

        The result has per-unique-instance access points (Experiment 1
        metrics apply directly) and a trivial first-AP-per-pin
        selection exposed through :meth:`access_map_of`.
        """
        result = PinAccessResult(design=self.design, config=None)
        t0 = time.perf_counter()
        design_shapes = self._flat_design_shapes()
        for ui in unique_instances(self.design):
            rep = ui.representative
            ua = UniqueInstanceAccess(unique_instance=ui)
            for pin in rep.master.signal_pins():
                # The legacy flow gathers the pin's neighborhood with a
                # full linear pass over the design -- no spatial index.
                neighborhood = self._scan_neighborhood(
                    design_shapes, rep, pin
                )
                ua.aps_by_pin[pin.name] = self._generate_for_pin(
                    rep, pin, neighborhood
                )
            result.unique_accesses.append(ua)
        result.timings["step1"] = time.perf_counter() - t0
        result.timings["total"] = result.timings["step1"]
        return result

    def _flat_design_shapes(self) -> list:
        """Every M1-class shape in the design, as one flat list."""
        shapes = []
        for inst in self.design.instances.values():
            for _, layer, rect in inst.all_pin_shapes():
                shapes.append((layer, rect))
            for layer, rect in inst.obstruction_rects():
                shapes.append((layer, rect))
        return shapes

    def _scan_neighborhood(self, design_shapes, inst, pin) -> list:
        """Linear scan for shapes near the pin (the legacy hot loop)."""
        window = pin.bbox()
        xf = inst.transform
        window = xf.apply_rect(window).bloated(4 * self.design.tech.site_width)
        return [
            rect
            for _, rect in design_shapes
            if rect.intersects(window)
        ]

    def access_map(self, result: PinAccessResult) -> dict:
        """Return the baseline's per-instance-pin selection.

        First access point per pin, translated to each member instance
        -- no compatibility consideration whatsoever.
        """
        out = {}
        for ua in result.unique_accesses:
            ui = ua.unique_instance
            for member in ui.members:
                dx, dy = ui.translation_to(member)
                for pin_name, aps in ua.aps_by_pin.items():
                    if not aps:
                        continue
                    out[(member.name, pin_name)] = aps[0].translated(dx, dy)
        return out

    # -- internals ---------------------------------------------------------

    def _generate_for_pin(self, inst, pin, cell_shapes) -> list:
        tech = self.design.tech
        aps = []
        shapes = inst.pin_rects(pin.name)
        for layer_name in sorted(shapes):
            layer = tech.layer(layer_name)
            if not layer.is_routing:
                continue
            try:
                viadef = tech.primary_via_from(layer.name)
            except KeyError:
                viadef = None
            polygon = RectilinearPolygon(shapes[layer_name])
            pref_axis = "y" if layer.is_horizontal else "x"
            pref_patterns = track_patterns_for_axis(
                self.design, tech, layer, pref_axis
            )
            nonpref_axis = "x" if pref_axis == "y" else "y"
            nonpref_patterns = track_patterns_for_axis(
                self.design, tech, layer, nonpref_axis
            )
            for rect in maximal_rectangles(polygon):
                pref_span = rect.yspan if pref_axis == "y" else rect.xspan
                nonpref_span = rect.xspan if pref_axis == "y" else rect.yspan
                pref_coords = sorted(
                    {
                        c
                        for p in pref_patterns
                        for c in p.coords_in(pref_span.lo, pref_span.hi)
                    }
                )
                nonpref_coords = sorted(
                    {
                        c
                        for p in nonpref_patterns
                        for c in p.coords_in(nonpref_span.lo, nonpref_span.hi)
                    }
                )
                for pc in pref_coords:
                    for nc in nonpref_coords:
                        if len(aps) >= self.k:
                            return aps
                        x, y = (nc, pc) if pref_axis == "y" else (pc, nc)
                        if not self._naive_screen(x, y, rect, cell_shapes):
                            continue
                        aps.append(
                            AccessPoint(
                                x=x,
                                y=y,
                                layer_name=layer.name,
                                pref_type=CoordType.ON_TRACK,
                                nonpref_type=CoordType.ON_TRACK,
                                valid_vias=(
                                    [viadef.name] if viadef is not None else []
                                ),
                                planar_dirs=[],
                            )
                        )
        return aps

    def _naive_screen(self, x, y, pin_rect, cell_shapes) -> bool:
        """The legacy legality screen: containment-only, linear scan.

        Accepts the point if it sits inside the pin rectangle and no
        *obstruction-or-pin* shape strictly contains the exact via
        center other than the pin itself -- a deliberately weak test
        (and an O(#shapes) one, run per candidate) that misses
        min-step, EOL and spacing interactions entirely.
        """
        if not (
            pin_rect.xlo <= x <= pin_rect.xhi
            and pin_rect.ylo <= y <= pin_rect.yhi
        ):
            return False
        overlapping = 0
        for shape in cell_shapes:
            if shape.xlo <= x <= shape.xhi and shape.ylo <= y <= shape.yhi:
                overlapping += 1
        # The pin's own rect always matches; more than a handful of
        # stacked foreign shapes suggests a blocked location.
        return overlapping <= 2


def legacy_io_access(design: Design, k: int = 3) -> dict:
    """Naive on-track access for top-level IO pins (legacy style).

    The same strategy the legacy flow applies to cell pins, extended
    to the die boundary: on-track crossing points inside the IO pin
    shape, no coordinate ladder and no DRC validation.  Off-grid IO
    pins -- whose shapes straddle no track intersection -- come back
    with an empty list, i.e. the legacy flow simply cannot reach them.
    Returns ``{io_pin_name: [AccessPoint, ...]}``.
    """
    tech = design.tech
    out = {}
    for io_pin in design.io_pins.values():
        layer = tech.layer(io_pin.layer_name)
        if not layer.is_routing:
            out[io_pin.name] = []
            continue
        try:
            viadef = tech.primary_via_from(layer.name)
        except KeyError:
            viadef = None
        pref_axis = "y" if layer.is_horizontal else "x"
        pref_patterns = track_patterns_for_axis(design, tech, layer, pref_axis)
        nonpref_patterns = track_patterns_for_axis(
            design, tech, layer, "x" if pref_axis == "y" else "y"
        )
        rect = io_pin.rect
        pref_span = rect.yspan if pref_axis == "y" else rect.xspan
        nonpref_span = rect.xspan if pref_axis == "y" else rect.yspan
        pref_coords = sorted(
            {
                c
                for p in pref_patterns
                for c in p.coords_in(pref_span.lo, pref_span.hi)
            }
        )
        nonpref_coords = sorted(
            {
                c
                for p in nonpref_patterns
                for c in p.coords_in(nonpref_span.lo, nonpref_span.hi)
            }
        )
        aps = []
        for pc in pref_coords:
            for nc in nonpref_coords:
                if len(aps) >= k:
                    break
                x, y = (nc, pc) if pref_axis == "y" else (pc, nc)
                aps.append(
                    AccessPoint(
                        x=x,
                        y=y,
                        layer_name=layer.name,
                        pref_type=CoordType.ON_TRACK,
                        nonpref_type=CoordType.ON_TRACK,
                        valid_vias=(
                            [viadef.name] if viadef is not None else []
                        ),
                        planar_dirs=[],
                    )
                )
        out[io_pin.name] = aps
    return out
