"""The pin access oracle facade (the PAO of the title).

A detailed router (or placer, or ECO tool) wants one question
answered: *where can I land on this pin, legally?*  The
:class:`PinAccessOracle` wraps the three-step framework behind that
query interface: analyze once, then ask per instance pin and get the
selected access point plus the validated alternatives, in preference
order.

Lookup failures raise the typed :class:`UnknownInstanceError` /
:class:`UnknownPinError` hierarchy.  Both derive from ``KeyError`` so
pre-existing ``except KeyError`` callers keep working, and both are
shared with the ``repro.serve`` wire protocol so an in-process caller
and a network client see the same error taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PaafConfig
from repro.core.framework import PinAccessFramework, PinAccessResult
from repro.core.signature import instance_signature
from repro.db.design import Design


class UnknownInstanceError(KeyError):
    """Query names an instance the design does not contain."""

    def __init__(self, instance_name: str):
        super().__init__(instance_name)
        self.instance_name = instance_name

    def __str__(self) -> str:
        return f"no instance named {self.instance_name!r}"


class UnknownPinError(KeyError):
    """Query names a pin the instance's master does not declare."""

    def __init__(self, instance_name: str, pin_name: str):
        super().__init__((instance_name, pin_name))
        self.instance_name = instance_name
        self.pin_name = pin_name

    def __str__(self) -> str:
        return (
            f"instance {self.instance_name!r} has no signal pin "
            f"named {self.pin_name!r}"
        )


@dataclass
class PinAccessAnswer:
    """The oracle's answer for one instance pin.

    ``selected`` is the Step 3 choice (pattern-compatible with the
    instance's other pins and its neighbors); ``alternatives`` are all
    Step 1 access points translated to the instance, in generation
    (cost) order -- what a router falls back to when the selected point
    is blocked by congestion.
    """

    instance_name: str
    pin_name: str
    selected: object
    alternatives: list

    @property
    def accessible(self) -> bool:
        """Return True if at least one access point exists."""
        return self.selected is not None or bool(self.alternatives)


class PinAccessOracle:
    """Analyze once, answer pin access queries forever after.

    ``result`` warm-starts the oracle from a precomputed
    :class:`~repro.core.framework.PinAccessResult` (e.g. one produced
    by a framework holding a persistent AP cache, or replayed by the
    ``repro.serve`` daemon) instead of running a fresh analysis.
    """

    def __init__(
        self,
        design: Design,
        config: Optional[PaafConfig] = None,
        result: Optional[PinAccessResult] = None,
    ):
        self.design = design
        if result is None:
            result = PinAccessFramework(design, config).run()
        self.result = result
        self._access_map = self.result.access_map()
        self._ua_by_inst = {}
        for ua in self.result.unique_accesses:
            for member in ua.unique_instance.members:
                self._ua_by_inst[member.name] = ua

    def query(
        self, instance_name: str, pin_name: str, strict: bool = False
    ) -> PinAccessAnswer:
        """Answer for one instance pin.

        Raises :class:`UnknownInstanceError` for unknown instances;
        unknown pins of known instances answer with no access
        (robustness for callers probing generated pin names) unless
        ``strict`` is set, in which case a pin the instance's master
        does not declare raises :class:`UnknownPinError` -- the
        contract the serving layer exposes over the wire.
        """
        try:
            inst = self.design.instance(instance_name)
        except KeyError:
            raise UnknownInstanceError(instance_name) from None
        if strict and not any(
            pin.name == pin_name for pin in inst.master.signal_pins()
        ):
            raise UnknownPinError(instance_name, pin_name)
        selected = self._access_map.get((instance_name, pin_name))
        alternatives = []
        ua = self._ua_by_inst.get(instance_name)
        if ua is not None and pin_name in ua.aps_by_pin:
            dx, dy = ua.unique_instance.translation_to(inst)
            alternatives = [
                ap.translated(dx, dy) for ap in ua.aps_by_pin[pin_name]
            ]
        return PinAccessAnswer(
            instance_name=instance_name,
            pin_name=pin_name,
            selected=selected,
            alternatives=alternatives,
        )

    def accessible_fraction(self) -> float:
        """Return the share of connected pins with a selected access."""
        pins = self.design.connected_pins()
        if not pins:
            return 1.0
        have = sum(
            1
            for inst, pin in pins
            if (inst.name, pin.name) in self._access_map
        )
        return have / len(pins)

    def signature_of(self, instance_name: str) -> tuple:
        """Expose the unique-instance signature (debugging aid)."""
        try:
            inst = self.design.instance(instance_name)
        except KeyError:
            raise UnknownInstanceError(instance_name) from None
        return instance_signature(self.design, inst)
