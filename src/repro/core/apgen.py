"""Pin-based access point generation (paper Algorithm 1).

For each pin, candidate points are enumerated coordinate-type ladder
first: all combinations of (non-preferred type ``t1``, preferred type
``t0``) in ascending cost order.  Every candidate is validated by
dropping each via definition of the layer through the DRC engine; the
procedure early-terminates once ``k`` valid access points exist, but
only after finishing the current type combination -- so large pins can
yield slightly more than ``k`` points (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PaafConfig
from repro.core.coords import CoordType, candidate_coords
from repro.db.design import Design
from repro.db.inst import Instance
from repro.db.master import MasterPin
from repro.drc.engine import DrcEngine
from repro.geom.maxrect import maximal_rectangles
from repro.geom.point import Point
from repro.geom.polygon import RectilinearPolygon
from repro.geom.rect import Rect
from repro.obs.events import active_log
from repro.obs.metrics import active_registry
from repro.obs.trace import span


PLANAR_DIRECTIONS = ("E", "W", "N", "S")


@dataclass
class AccessPoint:
    """A validated access point (paper Sec. II-B1).

    ``valid_vias`` lists the names of via definitions that drop
    DRC-clean at this point; the first is the *primary* via.
    ``planar_dirs`` holds the planar escape directions that check
    clean.  ``cost`` is the coordinate-type cost used by the DP
    (preferred + non-preferred type values).
    """

    x: int
    y: int
    layer_name: str
    pref_type: CoordType
    nonpref_type: CoordType
    valid_vias: list = field(default_factory=list)
    planar_dirs: list = field(default_factory=list)

    @property
    def point(self) -> Point:
        """Return the access point location."""
        return Point(self.x, self.y)

    @property
    def primary_via(self) -> str:
        """Return the primary via name, or None without via access."""
        return self.valid_vias[0] if self.valid_vias else None

    @property
    def has_via_access(self) -> bool:
        """Return True if an up-via is valid here."""
        return bool(self.valid_vias)

    @property
    def cost(self) -> int:
        """Return the coordinate-type cost (lower is better)."""
        return int(self.pref_type) + int(self.nonpref_type)

    def translated(self, dx: int, dy: int) -> "AccessPoint":
        """Return a copy moved by ``(dx, dy)`` (unique-instance mapping)."""
        return AccessPoint(
            x=self.x + dx,
            y=self.y + dy,
            layer_name=self.layer_name,
            pref_type=self.pref_type,
            nonpref_type=self.nonpref_type,
            valid_vias=list(self.valid_vias),
            planar_dirs=list(self.planar_dirs),
        )

    def __str__(self) -> str:
        return (
            f"AP({self.x}, {self.y}, {self.layer_name}, "
            f"t0={int(self.pref_type)}, t1={int(self.nonpref_type)}, "
            f"via={self.primary_via})"
        )


class AccessPointGenerator:
    """Implements Algorithm 1 for one design."""

    def __init__(
        self, design: Design, engine: DrcEngine, config: PaafConfig = None
    ):
        self.design = design
        self.tech = design.tech
        self.engine = engine
        self.config = config or PaafConfig()

    def generate_for_pin(
        self, inst: Instance, pin: MasterPin, context
    ) -> list:
        """Generate up to ~k valid access points for one instance pin.

        ``context`` is the :class:`~repro.drc.ShapeContext` the vias
        are validated against (intra-cell context in Step 1).  Returns
        access points in generation (cost) order.
        """
        aps = []
        seen_points = set()
        shapes = inst.pin_rects(pin.name)
        net_key = (inst.name, pin.name)
        with span("step1.pin", inst=inst.name, pin=pin.name) as record:
            for layer_name in sorted(shapes):
                layer = self.tech.layer(layer_name)
                if not layer.is_routing:
                    continue
                polygon = RectilinearPolygon(shapes[layer_name])
                rects = maximal_rectangles(polygon)
                done = self._generate_on_layer(
                    layer, rects, net_key, context, aps, seen_points,
                    is_macro=inst.master.is_macro, polygon=polygon,
                )
                if done:
                    break
            if record is not None:
                record["attrs"]["aps"] = len(aps)
        registry = active_registry()
        if registry is not None:
            registry.observe("apgen.aps_per_pin", float(len(aps)))
        return aps

    # -- internals ---------------------------------------------------------

    def _generate_on_layer(
        self, layer, rects, net_key, context, aps, seen_points, is_macro,
        polygon=None,
    ) -> bool:
        """Run the Algorithm 1 double loop on one layer.

        Returns True if the early-termination quota was reached.
        """
        cfg = self.config
        pref_axis = "y" if layer.is_horizontal else "x"
        try:
            primary_viadef = self.tech.primary_via_from(layer.name)
        except KeyError:
            primary_viadef = None
        for t1 in cfg.non_preferred_types:
            for t0 in cfg.preferred_types:
                for rect in rects:
                    for point in self._points_of_type(
                        layer, rect, pref_axis, t0, t1, primary_viadef
                    ):
                        if point in seen_points:
                            continue
                        seen_points.add(point)
                        ap = self._validate(
                            layer, point, t0, t1, net_key, context,
                            is_macro, polygon,
                        )
                        if ap is not None:
                            aps.append(ap)
                if len(aps) >= cfg.k:
                    return True
        return False

    def _points_of_type(
        self, layer, rect, pref_axis, t0, t1, viadef
    ) -> list:
        """Cross the coordinate candidates of (t0, t1) over one rect."""
        pref_coords = candidate_coords(
            pref_axis, t0, rect, layer, self.design, self.tech, viadef
        )
        nonpref_axis = "x" if pref_axis == "y" else "y"
        nonpref_coords = candidate_coords(
            nonpref_axis, t1, rect, layer, self.design, self.tech, viadef
        )
        points = []
        for pc in pref_coords:
            for nc in nonpref_coords:
                x, y = (nc, pc) if pref_axis == "y" else (pc, nc)
                points.append(Point(x, y))
        return points

    def _validate(
        self, layer, point, t0, t1, net_key, context, is_macro, polygon=None
    ):
        """Return a validated AccessPoint, or None if nothing is legal.

        An access point is valid if a via can be dropped DRC-free
        (Sec. III-A); for macro pins planar-only access also counts,
        since the footnote's via-only restriction applies to standard
        cells.  With ``require_cut_on_pin`` set, a via additionally
        needs its cut fully landed on pin metal (the strict via-in-pin
        reading for advanced nodes).
        """
        registry = active_registry()
        log = active_log()
        valid_vias = []
        for viadef in self.tech.vias_from(layer.name):
            if (
                self.config.require_cut_on_pin
                and polygon is not None
                and not polygon.contains_rect(
                    viadef.cut_at(point.x, point.y)
                )
            ):
                self._note_rejection(
                    registry, log, net_key, layer, point, t0, t1,
                    viadef.name, "cut-not-on-pin", viadef.cut_layer,
                )
                continue
            violations = self.engine.check_via_placement(
                viadef, point.x, point.y, net_key, context
            )
            if not violations:
                valid_vias.append(viadef.name)
            else:
                self._note_rejection(
                    registry, log, net_key, layer, point, t0, t1,
                    viadef.name, violations[0].rule,
                    violations[0].layer_name,
                )
        planar_dirs = []
        if self.config.check_planar:
            planar_dirs = self._planar_directions(
                layer, point, net_key, context
            )
        ap = AccessPoint(
            x=point.x,
            y=point.y,
            layer_name=layer.name,
            pref_type=t0,
            nonpref_type=t1,
            valid_vias=valid_vias,
            planar_dirs=planar_dirs,
        )
        accepted = ap.has_via_access or (
            (not self.config.require_via_access or is_macro)
            and bool(planar_dirs)
        )
        if not accepted:
            return None
        if registry is not None:
            registry.incr("apgen.accept")
        if log is not None:
            log.emit(
                "ap.accept",
                inst=net_key[0],
                pin=net_key[1],
                x=point.x,
                y=point.y,
                layer=layer.name,
                vias=list(valid_vias),
                planar=list(planar_dirs),
                t0=t0.name.lower(),
                t1=t1.name.lower(),
            )
        return ap

    def _note_rejection(
        self, registry, log, net_key, layer, point, t0, t1, via_name,
        rule, rule_layer,
    ) -> None:
        """Record one rejected (candidate point, via) combination.

        Counters key the rejection by DRC rule and by the candidate's
        coordinate-type pair; the event stream keeps the full story
        (which via, which rule, where) for ``repro explain``.
        """
        if registry is not None:
            registry.incr("apgen.reject." + rule.replace("-", "_"))
            registry.incr(
                "apgen.reject.coord."
                + t0.name.lower() + "." + t1.name.lower()
            )
        if log is not None:
            log.emit(
                "ap.reject",
                inst=net_key[0],
                pin=net_key[1],
                x=point.x,
                y=point.y,
                layer=layer.name,
                via=via_name,
                rule=rule,
                rule_layer=rule_layer,
                t0=t0.name.lower(),
                t1=t1.name.lower(),
            )

    def _planar_directions(self, layer, point, net_key, context) -> list:
        """Return planar escape directions that check DRC-clean.

        The stub is one pitch of wire at the layer's default width
        leaving the access point; a clean stub means the router can end
        routing here in that direction.
        """
        half = layer.width // 2
        length = layer.pitch
        x, y = point.x, point.y
        stubs = {
            "E": Rect(x, y - half, x + length, y + half),
            "W": Rect(x - length, y - half, x, y + half),
            "N": Rect(x - half, y, x + half, y + length),
            "S": Rect(x - half, y - length, x + half, y),
        }
        clean = []
        for direction in PLANAR_DIRECTIONS:
            stub = stubs[direction]
            violations = self.engine.check_metal_rect(
                layer.name, stub, net_key, context, label="planar-stub"
            )
            if not violations:
                clean.append(direction)
        return clean
