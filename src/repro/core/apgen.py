"""Pin-based access point generation (paper Algorithm 1).

For each pin, candidate points are enumerated coordinate-type ladder
first: all combinations of (non-preferred type ``t1``, preferred type
``t0``) in ascending cost order.  Every candidate is validated by
dropping each via definition of the layer through the DRC engine; the
procedure early-terminates once ``k`` valid access points exist, but
only after finishing the current type combination -- so large pins can
yield slightly more than ``k`` points (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.arraykernel import ApCheckMismatch
from repro.core.config import PaafConfig
from repro.core.coords import CoordType, candidate_coords
from repro.db.design import Design
from repro.db.inst import Instance
from repro.db.master import MasterPin
from repro.drc.engine import DrcEngine
from repro.geom.maxrect import maximal_rectangles
from repro.geom.point import Point
from repro.geom.polygon import RectilinearPolygon
from repro.geom.rect import Rect
from repro.obs.events import active_log
from repro.obs.metrics import active_registry
from repro.obs.trace import span


PLANAR_DIRECTIONS = ("E", "W", "N", "S")


@dataclass
class AccessPoint:
    """A validated access point (paper Sec. II-B1).

    ``valid_vias`` lists the names of via definitions that drop
    DRC-clean at this point; the first is the *primary* via.
    ``planar_dirs`` holds the planar escape directions that check
    clean.  ``cost`` is the coordinate-type cost used by the DP
    (preferred + non-preferred type values).
    """

    x: int
    y: int
    layer_name: str
    pref_type: CoordType
    nonpref_type: CoordType
    valid_vias: list = field(default_factory=list)
    planar_dirs: list = field(default_factory=list)

    @property
    def point(self) -> Point:
        """Return the access point location."""
        return Point(self.x, self.y)

    @property
    def primary_via(self) -> str:
        """Return the primary via name, or None without via access."""
        return self.valid_vias[0] if self.valid_vias else None

    @property
    def has_via_access(self) -> bool:
        """Return True if an up-via is valid here."""
        return bool(self.valid_vias)

    @property
    def cost(self) -> int:
        """Return the coordinate-type cost (lower is better)."""
        return int(self.pref_type) + int(self.nonpref_type)

    def translated(self, dx: int, dy: int) -> "AccessPoint":
        """Return a copy moved by ``(dx, dy)`` (unique-instance mapping)."""
        return AccessPoint(
            x=self.x + dx,
            y=self.y + dy,
            layer_name=self.layer_name,
            pref_type=self.pref_type,
            nonpref_type=self.nonpref_type,
            valid_vias=list(self.valid_vias),
            planar_dirs=list(self.planar_dirs),
        )

    def __str__(self) -> str:
        return (
            f"AP({self.x}, {self.y}, {self.layer_name}, "
            f"t0={int(self.pref_type)}, t1={int(self.nonpref_type)}, "
            f"via={self.primary_via})"
        )


class AccessPointGenerator:
    """Implements Algorithm 1 for one design.

    With an :class:`~repro.core.arraykernel.ArrayKernel` attached (and
    not in ``engine`` mode), candidate validation runs on the kernel's
    compiled per-cell tables: each candidate row is answered by one
    occupancy bitmask instead of per-candidate engine probes, with the
    engine consulted only to name the violated rule when telemetry
    sinks are active, or on every candidate in ``verify`` mode.
    """

    def __init__(
        self,
        design: Design,
        engine: DrcEngine,
        config: PaafConfig = None,
        akernel=None,
    ):
        self.design = design
        self.tech = design.tech
        self.engine = engine
        self.config = config or PaafConfig()
        self.akernel = akernel

    def generate_for_pin(
        self, inst: Instance, pin: MasterPin, context
    ) -> list:
        """Generate up to ~k valid access points for one instance pin.

        ``context`` is the :class:`~repro.drc.ShapeContext` the vias
        are validated against (intra-cell context in Step 1).  Returns
        access points in generation (cost) order.
        """
        aps = []
        seen_points = set()
        shapes = inst.pin_rects(pin.name)
        net_key = (inst.name, pin.name)
        akernel = self.akernel
        tables = None
        if akernel is not None and akernel.mode != "engine":
            tables = akernel.cell_tables(inst)
        with span("step1.pin", inst=inst.name, pin=pin.name) as record:
            for layer_name in sorted(shapes):
                layer = self.tech.layer(layer_name)
                if not layer.is_routing:
                    continue
                polygon = RectilinearPolygon(shapes[layer_name])
                rects = maximal_rectangles(polygon)
                done = self._generate_on_layer(
                    layer, rects, net_key, context, aps, seen_points,
                    is_macro=inst.master.is_macro, polygon=polygon,
                    inst=inst, tables=tables,
                )
                if done:
                    break
            if record is not None:
                record["attrs"]["aps"] = len(aps)
        registry = active_registry()
        if registry is not None:
            registry.observe("apgen.aps_per_pin", float(len(aps)))
        return aps

    # -- internals ---------------------------------------------------------

    def _generate_on_layer(
        self, layer, rects, net_key, context, aps, seen_points, is_macro,
        polygon=None, inst=None, tables=None,
    ) -> bool:
        """Run the Algorithm 1 double loop on one layer.

        Returns True if the early-termination quota was reached.
        """
        cfg = self.config
        pref_axis = "y" if layer.is_horizontal else "x"
        try:
            primary_viadef = self.tech.primary_via_from(layer.name)
        except KeyError:
            primary_viadef = None
        if tables is not None:
            return self._generate_on_layer_array(
                layer, rects, net_key, context, aps, seen_points,
                is_macro, polygon, inst, tables, pref_axis, primary_viadef,
            )
        for t1 in cfg.non_preferred_types:
            for t0 in cfg.preferred_types:
                for rect in rects:
                    for point in self._points_of_type(
                        layer, rect, pref_axis, t0, t1, primary_viadef
                    ):
                        if point in seen_points:
                            continue
                        seen_points.add(point)
                        ap = self._validate(
                            layer, point, t0, t1, net_key, context,
                            is_macro, polygon,
                        )
                        if ap is not None:
                            aps.append(ap)
                if len(aps) >= cfg.k:
                    return True
        return False

    def _generate_on_layer_array(
        self, layer, rects, net_key, context, aps, seen_points, is_macro,
        polygon, inst, tables, pref_axis, primary_viadef,
    ) -> bool:
        """Algorithm 1 double loop served by compiled occupancy masks.

        Candidate enumeration comes from the kernel's memoized
        coordinate tables; validation computes, lazily per candidate
        row, one dirty bitmask per via (and per planar direction) over
        the whole row of moving-axis displacements.  Loop structure,
        dedupe and the per-type early-termination check are identical
        to the engine path, so the AP list is bit-identical.
        """
        cfg = self.config
        akernel = self.akernel
        coords = akernel.coords
        vias = self.tech.vias_from(layer.name)
        pin_name = net_key[1]
        ox, oy = inst.location.x, inst.location.y
        fixed_is_y = pref_axis == "y"
        nonpref_axis = "x" if fixed_is_y else "y"
        registry = active_registry()
        log = active_log()
        # Per-layer constants of the point loop, resolved once: the
        # (via, site table, min-step table) triples and the planar
        # stub tables of this pin/layer.
        via_info = [
            (
                viadef,
                tables.site[(pin_name, viadef.name)],
                tables.minstep[(pin_name, viadef.name)],
            )
            for viadef in vias
        ]
        stubs = (
            tables.planar[(pin_name, layer.name)]
            if cfg.check_planar
            else None
        )
        # With no telemetry sink, no verify oracle and via access
        # required, a point that is dirty for *every* via can never be
        # accepted -- the ANDed via masks reject it without entering
        # the per-via validation at all.  Counters advance by
        # arithmetic so stats match the per-point path exactly.
        nvias = len(vias)
        fast_reject = (
            nvias > 0
            and registry is None
            and log is None
            and akernel.mode != "verify"
            and cfg.require_via_access
            and not is_macro
            and not cfg.require_cut_on_pin
        )
        # The coordinate cache returns the *same* list object for
        # equal (type, span, via) queries, so a repeated (pref,
        # nonpref) list pair can only re-enumerate already-seen points
        # -- skip the whole batch.
        done_pairs = set()
        for t1 in cfg.non_preferred_types:
            for t0 in cfg.preferred_types:
                for rect in rects:
                    pref_coords = coords.candidate(
                        pref_axis, t0, rect, layer, primary_viadef
                    )
                    if not pref_coords:
                        continue
                    nonpref_coords = coords.candidate(
                        nonpref_axis, t1, rect, layer, primary_viadef
                    )
                    if not nonpref_coords:
                        continue
                    pair = (id(pref_coords), id(nonpref_coords))
                    if pair in done_pairs:
                        continue
                    done_pairs.add(pair)
                    moving = [
                        c - (ox if fixed_is_y else oy)
                        for c in nonpref_coords
                    ]
                    for pc in pref_coords:
                        fixed = pc - (oy if fixed_is_y else ox)
                        row = None
                        all_dirty = 0
                        for ni, nc in enumerate(nonpref_coords):
                            x, y = (nc, pc) if fixed_is_y else (pc, nc)
                            if (x, y) in seen_points:
                                continue
                            seen_points.add((x, y))
                            if row is None:
                                # One dirty bitmask per via over the
                                # whole row.  Planar stub verdicts are
                                # deliberately pointwise: a row rarely
                                # contributes more than a point or two
                                # after the cross-type dedupe, so four
                                # whole-row stub masks would cost more
                                # than probing the tiny stub tables.
                                row = [
                                    site.row_mask(
                                        fixed_is_y, fixed, moving
                                    )
                                    for _, site, _ms in via_info
                                ]
                                if fast_reject:
                                    all_dirty = -1
                                    for mask in row:
                                        all_dirty &= mask
                            if fast_reject and all_dirty >> ni & 1:
                                akernel.candidates += nvias
                                akernel.filtered += nvias
                                continue
                            ap = self._validate_array(
                                layer, x, y, t0, t1, net_key, context,
                                is_macro, polygon, via_info, stubs,
                                row, ni, x - ox, y - oy,
                                registry, log,
                            )
                            if ap is not None:
                                aps.append(ap)
                if len(aps) >= cfg.k:
                    return True
        return False

    def _validate_array(
        self, layer, x, y, t0, t1, net_key, context, is_macro, polygon,
        via_info, stubs, row, ni, dx, dy, registry, log,
    ):
        """Table-served twin of :meth:`_validate`.

        The tables decide; the engine runs only to name the violated
        rule for telemetry (dirty candidates, when sinks are active)
        or to cross-check every verdict in ``verify`` mode.  A dirty
        table verdict the engine cannot reproduce raises
        :class:`~repro.core.arraykernel.ApCheckMismatch` even outside
        verify mode -- it is a proven divergence, never noise.
        """
        akernel = self.akernel
        verify = akernel.mode == "verify"
        valid_vias = []
        for vi, (viadef, _site, minstep) in enumerate(via_info):
            if (
                self.config.require_cut_on_pin
                and polygon is not None
                and not polygon.contains_rect(
                    viadef.cut_at(x, y)
                )
            ):
                self._note_rejection(
                    registry, log, net_key, layer, Point(x, y), t0, t1,
                    viadef.name, "cut-not-on-pin", viadef.cut_layer,
                )
                continue
            akernel.candidates += 1
            if registry is not None:
                registry.incr("arraykernel.candidates")
            dirty = bool(row[vi] >> ni & 1)
            if not dirty:
                if minstep is not None:
                    if minstep.max_edges:
                        akernel.minstep_engine += 1
                    dirty = minstep.dirty(dx, dy, layer)
            violations = None
            if verify:
                violations = self.engine.check_via_placement(
                    viadef, x, y, net_key, context
                )
                if bool(violations) != dirty:
                    akernel.verify_mismatches += 1
                    raise ApCheckMismatch(
                        f"array kernel diverged from DrcEngine for via "
                        f"{viadef.name} at ({x}, {y}) on "
                        f"{layer.name} (net {net_key}): "
                        f"kernel={'dirty' if dirty else 'clean'}, "
                        f"engine={'dirty' if violations else 'clean'}"
                    )
            if not dirty:
                valid_vias.append(viadef.name)
                continue
            akernel.filtered += 1
            if registry is not None:
                registry.incr("arraykernel.filtered")
            if registry is not None or log is not None:
                if violations is None:
                    violations = self.engine.check_via_placement(
                        viadef, x, y, net_key, context
                    )
                if not violations:
                    akernel.verify_mismatches += 1
                    raise ApCheckMismatch(
                        f"array kernel rejected via {viadef.name} at "
                        f"({x}, {y}) on {layer.name} "
                        f"(net {net_key}) but the engine found no "
                        f"violation"
                    )
                self._note_rejection(
                    registry, log, net_key, layer, Point(x, y), t0, t1,
                    viadef.name, violations[0].rule,
                    violations[0].layer_name,
                )
        planar_dirs = []
        if stubs is not None:
            planar_dirs = [
                d
                for d, stub in zip(PLANAR_DIRECTIONS, stubs)
                if stub.clean(dx, dy)
            ]
            if verify:
                oracle = self._planar_directions(
                    layer, Point(x, y), net_key, context
                )
                if oracle != planar_dirs:
                    akernel.verify_mismatches += 1
                    raise ApCheckMismatch(
                        f"array kernel planar verdict diverged at "
                        f"({x}, {y}) on {layer.name} "
                        f"(net {net_key}): kernel={planar_dirs}, "
                        f"engine={oracle}"
                    )
        ap = AccessPoint(
            x=x,
            y=y,
            layer_name=layer.name,
            pref_type=t0,
            nonpref_type=t1,
            valid_vias=valid_vias,
            planar_dirs=planar_dirs,
        )
        accepted = ap.has_via_access or (
            (not self.config.require_via_access or is_macro)
            and bool(planar_dirs)
        )
        if not accepted:
            return None
        if registry is not None:
            registry.incr("apgen.accept")
        if log is not None:
            log.emit(
                "ap.accept",
                inst=net_key[0],
                pin=net_key[1],
                x=x,
                y=y,
                layer=layer.name,
                vias=list(valid_vias),
                planar=list(planar_dirs),
                t0=t0.name.lower(),
                t1=t1.name.lower(),
            )
        return ap

    def _points_of_type(
        self, layer, rect, pref_axis, t0, t1, viadef
    ) -> list:
        """Cross the coordinate candidates of (t0, t1) over one rect."""
        pref_coords = candidate_coords(
            pref_axis, t0, rect, layer, self.design, self.tech, viadef
        )
        nonpref_axis = "x" if pref_axis == "y" else "y"
        nonpref_coords = candidate_coords(
            nonpref_axis, t1, rect, layer, self.design, self.tech, viadef
        )
        points = []
        for pc in pref_coords:
            for nc in nonpref_coords:
                x, y = (nc, pc) if pref_axis == "y" else (pc, nc)
                points.append(Point(x, y))
        return points

    def _validate(
        self, layer, point, t0, t1, net_key, context, is_macro, polygon=None
    ):
        """Return a validated AccessPoint, or None if nothing is legal.

        An access point is valid if a via can be dropped DRC-free
        (Sec. III-A); for macro pins planar-only access also counts,
        since the footnote's via-only restriction applies to standard
        cells.  With ``require_cut_on_pin`` set, a via additionally
        needs its cut fully landed on pin metal (the strict via-in-pin
        reading for advanced nodes).
        """
        registry = active_registry()
        log = active_log()
        valid_vias = []
        for viadef in self.tech.vias_from(layer.name):
            if (
                self.config.require_cut_on_pin
                and polygon is not None
                and not polygon.contains_rect(
                    viadef.cut_at(point.x, point.y)
                )
            ):
                self._note_rejection(
                    registry, log, net_key, layer, point, t0, t1,
                    viadef.name, "cut-not-on-pin", viadef.cut_layer,
                )
                continue
            violations = self.engine.check_via_placement(
                viadef, point.x, point.y, net_key, context
            )
            if not violations:
                valid_vias.append(viadef.name)
            else:
                self._note_rejection(
                    registry, log, net_key, layer, point, t0, t1,
                    viadef.name, violations[0].rule,
                    violations[0].layer_name,
                )
        planar_dirs = []
        if self.config.check_planar:
            planar_dirs = self._planar_directions(
                layer, point, net_key, context
            )
        ap = AccessPoint(
            x=point.x,
            y=point.y,
            layer_name=layer.name,
            pref_type=t0,
            nonpref_type=t1,
            valid_vias=valid_vias,
            planar_dirs=planar_dirs,
        )
        accepted = ap.has_via_access or (
            (not self.config.require_via_access or is_macro)
            and bool(planar_dirs)
        )
        if not accepted:
            return None
        if registry is not None:
            registry.incr("apgen.accept")
        if log is not None:
            log.emit(
                "ap.accept",
                inst=net_key[0],
                pin=net_key[1],
                x=point.x,
                y=point.y,
                layer=layer.name,
                vias=list(valid_vias),
                planar=list(planar_dirs),
                t0=t0.name.lower(),
                t1=t1.name.lower(),
            )
        return ap

    def _note_rejection(
        self, registry, log, net_key, layer, point, t0, t1, via_name,
        rule, rule_layer,
    ) -> None:
        """Record one rejected (candidate point, via) combination.

        Counters key the rejection by DRC rule and by the candidate's
        coordinate-type pair; the event stream keeps the full story
        (which via, which rule, where) for ``repro explain``.
        """
        if registry is not None:
            registry.incr("apgen.reject." + rule.replace("-", "_"))
            registry.incr(
                "apgen.reject.coord."
                + t0.name.lower() + "." + t1.name.lower()
            )
        if log is not None:
            log.emit(
                "ap.reject",
                inst=net_key[0],
                pin=net_key[1],
                x=point.x,
                y=point.y,
                layer=layer.name,
                via=via_name,
                rule=rule,
                rule_layer=rule_layer,
                t0=t0.name.lower(),
                t1=t1.name.lower(),
            )

    def _planar_directions(self, layer, point, net_key, context) -> list:
        """Return planar escape directions that check DRC-clean.

        The stub is one pitch of wire at the layer's default width
        leaving the access point; a clean stub means the router can end
        routing here in that direction.
        """
        half = layer.width // 2
        length = layer.pitch
        x, y = point.x, point.y
        stubs = {
            "E": Rect(x, y - half, x + length, y + half),
            "W": Rect(x - length, y - half, x, y + half),
            "N": Rect(x - half, y, x + half, y + length),
            "S": Rect(x - half, y - length, x + half, y),
        }
        clean = []
        for direction in PLANAR_DIRECTIONS:
            stub = stubs[direction]
            violations = self.engine.check_metal_rect(
                layer.name, stub, net_key, context, label="planar-stub"
            )
            if not violations:
                clean.append(direction)
        return clean
