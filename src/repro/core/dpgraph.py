"""The layered DAG and dynamic program shared by Steps 2 and 3.

Paper Figures 6 and 7: vertices are grouped (per pin in Step 2, per
instance in Step 3); complete bipartite edges connect neighboring
groups; a virtual source precedes the first group and a virtual sink
follows the last.  The DP relaxes groups left to right and traces back
the minimum-cost source-to-sink path, visiting exactly one vertex per
group (Algorithm 2).

The edge-cost callback receives the *back-pointer* of the predecessor
vertex, which is what makes Algorithm 3's history-aware cost (lines
9-10) well defined: when edge (prev -> curr) is priced, prev's own best
predecessor is already fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

INFINITY = float("inf")


@dataclass
class DpVertex:
    """DP state for one vertex: best path cost and back-pointer."""

    payload: object
    cost: float = INFINITY
    prev: "DpVertex" = None


class LayeredDpGraph:
    """A layered DAG over payload groups."""

    def __init__(self, groups: list):
        if not groups:
            raise ValueError("graph needs at least one group")
        if any(not group for group in groups):
            raise ValueError("every group needs at least one vertex")
        self.layers = [
            [DpVertex(payload=p) for p in group] for group in groups
        ]

    def solve(self, edge_cost) -> tuple:
        """Run Algorithm 2; return (chosen payloads, total cost).

        ``edge_cost(prev_payload, curr_payload, prev_prev_payload)`` is
        called for every candidate edge; for the first group
        ``prev_payload`` and ``prev_prev_payload`` are None and the
        returned value is the vertex's source cost.
        """
        for vertex in self.layers[0]:
            vertex.cost = edge_cost(None, vertex.payload, None)
            vertex.prev = None
        for m in range(1, len(self.layers)):
            for curr in self.layers[m]:
                for prev in self.layers[m - 1]:
                    if prev.cost is INFINITY:
                        continue
                    prev_prev = prev.prev.payload if prev.prev else None
                    path_cost = prev.cost + edge_cost(
                        prev.payload, curr.payload, prev_prev
                    )
                    if path_cost < curr.cost:
                        curr.cost = path_cost
                        curr.prev = prev
        return self._trace_back()

    def _trace_back(self) -> tuple:
        """Return the minimum-cost path as (payloads, cost)."""
        best = min(self.layers[-1], key=lambda v: v.cost)
        if best.cost is INFINITY:
            raise RuntimeError("no path through the DP graph")
        path = []
        vertex = best
        while vertex is not None:
            path.append(vertex.payload)
            vertex = vertex.prev
        path.reverse()
        return path, best.cost
