"""Incremental pin access maintenance across placement edits.

The paper's motivation for Step 3's speed (Sec. IV, Experiment 2):
"runtime is one of the most important aspects of a pin access analysis
framework in physical design, especially for support of placement
optimizations (i.e., detailed placement, sizing, buffering), where
frequent changes in placement require a tremendous amount of
inter-cell pin access analysis."

:class:`IncrementalPinAccess` serves exactly that loop: after a full
analysis, moving an instance only

1. re-derives the instance's signature -- the per-unique-instance
   Step 1/2 results are cached by signature and reused whenever the
   new placement lands on an already-analyzed offset class; and
2. re-runs the Step 3 cluster DP for the affected rows only (the row
   left and the row entered), leaving the rest of the design's
   selection untouched.

The result is equivalent to a full re-analysis (asserted by tests and
measured by ``benchmarks/test_incremental.py``) at a small fraction of
the cost.
"""

from __future__ import annotations

import time

from repro.core.cluster import ClusterPatternSelector, SelectedAccess
from repro.core.config import PaafConfig
from repro.core.framework import (
    PinAccessFramework,
    UniqueInstanceAccess,
)
from repro.core.oracle import UnknownInstanceError
from repro.core.signature import UniqueInstance, instance_signature
from repro.db.design import Design
from repro.geom.point import Point


class IncrementalPinAccess:
    """Pin access that survives placement edits cheaply."""

    def __init__(self, design: Design, config: PaafConfig = None):
        self.design = design
        self.config = config or PaafConfig()
        self.framework = PinAccessFramework(design, self.config)
        self._ua_by_signature = {}
        # Analysis-time origin of each cached unique access: the
        # representative's location when its Step 1/2 geometry was
        # computed.  Translations MUST use this, not the live
        # ``representative.location`` -- when the representative itself
        # is later moved within its signature class, the live location
        # drifts away from the coordinates the cached APs are expressed
        # in, and rep-relative translation would silently pin the
        # moved instance's answers to its old placement.
        self._ua_origin = {}
        self._selection = {}
        self._conflicts_by_cluster = {}
        self._last_update_seconds = 0.0

    # -- full analysis -------------------------------------------------------

    def analyze(self) -> None:
        """Run the full three-step flow and prime the caches."""
        result = self.framework.run()
        self._ua_by_signature = {
            ua.unique_instance.signature: ua
            for ua in result.unique_accesses
        }
        for ua in result.unique_accesses:
            rep = ua.unique_instance.representative
            self._ua_origin[ua.unique_instance.signature] = (
                rep.location.x,
                rep.location.y,
            )
        self._selection = dict(result.selection.selection)
        self._conflicts_by_cluster = {}
        for cluster in self.design.row_clusters():
            key = self._cluster_key(cluster)
            self._conflicts_by_cluster[key] = []
        for conflict in result.selection.conflicts:
            self._file_conflict(conflict)

    # -- queries --------------------------------------------------------------

    def access_map(self) -> dict:
        """Return (inst, pin) -> access point over the current placement."""
        out = {}
        for inst_name, selected in self._selection.items():
            for pin_name, ap in selected.access_points().items():
                out[(inst_name, pin_name)] = ap
        return out

    def conflicts(self) -> list:
        """Return all residual inter-cell conflicts."""
        out = []
        for conflicts in self._conflicts_by_cluster.values():
            out.extend(conflicts)
        return out

    def unique_access_of(self, inst) -> UniqueInstanceAccess:
        """Return the Step 1/2 results covering ``inst``.

        Analyzes (or loads from the persistent AP cache) on first
        sight of a signature; subsequent lookups are a dict hit.  The
        serving layer uses this to enumerate every instance's
        alternative access points when publishing a snapshot.
        """
        return self._ua_of(inst)

    def translation_of(self, inst) -> tuple:
        """Return ``(dx, dy)`` mapping cached AP coords onto ``inst``.

        Relative to the unique access's *analysis-time* origin (see
        ``_ua_origin``), which stays correct even after the
        representative itself has been moved.
        """
        ua = self._ua_of(inst)
        ox, oy = self._ua_origin[ua.unique_instance.signature]
        return (inst.location.x - ox, inst.location.y - oy)

    @property
    def last_update_seconds(self) -> float:
        """Return the wall time of the most recent incremental update."""
        return self._last_update_seconds

    # -- edits ----------------------------------------------------------------

    def move_instance(self, inst_name: str, new_location: Point) -> None:
        """Move an instance and repair the analysis incrementally.

        Raises :class:`~repro.core.oracle.UnknownInstanceError` (a
        ``KeyError`` subclass) when ``inst_name`` is not in the design.
        """
        t0 = time.perf_counter()
        try:
            inst = self.design.instance(inst_name)
        except KeyError:
            raise UnknownInstanceError(inst_name) from None
        affected_rows = {inst.location.y, new_location.y}
        inst.location = new_location
        self.design.invalidate_shape_index()

        signature = instance_signature(self.design, inst)
        ua = self._ua_by_signature.get(signature)
        if ua is None:
            ua = self._analyze_unique_instance(inst, signature)
            self._ua_by_signature[signature] = ua
        self._reselect_rows(affected_rows)
        self._last_update_seconds = time.perf_counter() - t0

    # -- internals ------------------------------------------------------------

    def _analyze_unique_instance(
        self, inst, signature
    ) -> UniqueInstanceAccess:
        """Step 1 + Step 2 for a not-yet-seen signature.

        Consults the framework's persistent AP cache first: a
        placement edit that lands on an already-fingerprinted offset
        class (the common incremental case) skips both steps entirely.
        """
        ui = UniqueInstance(signature=signature, representative=inst)
        ui.members.append(inst)
        self._ua_origin[signature] = (inst.location.x, inst.location.y)
        cache = self.framework.cache
        if cache is not None:
            hit = cache.load(ui)
            if hit is not None:
                aps_by_pin, patterns = hit
                return UniqueInstanceAccess(
                    unique_instance=ui,
                    aps_by_pin=aps_by_pin,
                    patterns=patterns,
                )
        from repro.perf.workers import compute_unique_access

        aps_by_pin, patterns, _, _ = compute_unique_access(
            self.design, self.framework.engine, self.config, ui,
            kernel=self.framework.kernel,
        )
        if cache is not None:
            cache.store(ui, aps_by_pin, patterns)
        return UniqueInstanceAccess(
            unique_instance=ui, aps_by_pin=aps_by_pin, patterns=patterns
        )

    def _ua_of(self, inst) -> UniqueInstanceAccess:
        signature = instance_signature(self.design, inst)
        ua = self._ua_by_signature.get(signature)
        if ua is None:
            ua = self._analyze_unique_instance(inst, signature)
            self._ua_by_signature[signature] = ua
        return ua

    def _reselect_rows(self, rows: set) -> None:
        """Re-run Step 3 for the clusters living in the given rows."""
        clusters = [
            cluster
            for cluster in self.design.row_clusters()
            if cluster[0].location.y in rows
        ]
        if not clusters:
            return
        candidates = {}
        ua_by_inst = {}
        for cluster in clusters:
            for inst in cluster:
                ua = self._ua_of(inst)
                ua_by_inst[inst.name] = ua
                dx, dy = self.translation_of(inst)
                candidates[inst.name] = [
                    SelectedAccess(inst=inst, pattern=p, dx=dx, dy=dy)
                    for p in ua.patterns
                ]

        def alternatives_fn(inst_name, pin_name):
            ua = ua_by_inst.get(inst_name)
            if ua is None:
                return []
            return ua.aps_by_pin.get(pin_name, [])

        if not self.config.boundary_conflict_aware:
            alternatives_fn = None
        selector = ClusterPatternSelector(
            self.design, self.framework.engine, self.config,
            kernel=self.framework.kernel,
        )
        partial = selector.select(
            candidates, alternatives_fn, clusters=clusters
        )
        self._selection.update(partial.selection)
        # Replace the affected clusters' conflict records.
        for key in [
            k
            for k in self._conflicts_by_cluster
            if any(name in partial.selection for name in k)
        ]:
            del self._conflicts_by_cluster[key]
        for cluster in clusters:
            self._conflicts_by_cluster[self._cluster_key(cluster)] = []
        for conflict in partial.conflicts:
            self._file_conflict(conflict)

    def _cluster_key(self, cluster) -> frozenset:
        return frozenset(inst.name for inst in cluster)

    def _file_conflict(self, conflict) -> None:
        inst_a, _, inst_b, _ = conflict
        for key, bucket in self._conflicts_by_cluster.items():
            if inst_a in key or inst_b in key:
                bucket.append(conflict)
                return
        self._conflicts_by_cluster.setdefault(
            frozenset((inst_a, inst_b)), []
        ).append(conflict)
