"""Coordinate types and candidate coordinate enumeration (paper Sec. II-C).

Four coordinate types, with cost equal to their enum value (the lower
the better):

* ``ON_TRACK`` (0) -- on a preferred or non-preferred routing track.
  Following the paper, the non-preferred-direction tracks of a layer
  are the *preferred* tracks of the routing layer immediately above,
  so an on-track up-via aligns with both layers.
* ``HALF_TRACK`` (1) -- midpoint between two neighboring tracks.
* ``SHAPE_CENTER`` (2) -- midpoint of a maximal rectangle of the pin,
  skipped on an axis whose span already touches two or more tracks.
* ``ENCLOSURE_BOUNDARY`` (3) -- aligns the primary via's bottom
  enclosure with the pin shape boundary (via-in-pin).
"""

from __future__ import annotations

import enum

from repro.db.design import Design
from repro.geom.rect import Rect
from repro.tech.layer import Layer, RoutingDirection
from repro.tech.technology import Technology
from repro.tech.via import ViaDef


class CoordType(enum.IntEnum):
    """The four coordinate types; the value doubles as the cost."""

    ON_TRACK = 0
    HALF_TRACK = 1
    SHAPE_CENTER = 2
    ENCLOSURE_BOUNDARY = 3


PREFERRED_TYPES = (
    CoordType.ON_TRACK,
    CoordType.HALF_TRACK,
    CoordType.SHAPE_CENTER,
    CoordType.ENCLOSURE_BOUNDARY,
)
NON_PREFERRED_TYPES = (
    CoordType.ON_TRACK,
    CoordType.HALF_TRACK,
    CoordType.SHAPE_CENTER,
)


def track_patterns_for_axis(
    design: Design, tech: Technology, layer: Layer, axis: str
) -> list:
    """Return the track patterns supplying on-track coords on ``axis``.

    For the layer's preferred axis these are the layer's own patterns;
    for the non-preferred axis they are the patterns of the routing
    layer above (paper Sec. II-C), falling back to the layer below at
    the top of the stack.
    """
    if axis == "y":
        wanted = RoutingDirection.HORIZONTAL
    elif axis == "x":
        wanted = RoutingDirection.VERTICAL
    else:
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")

    preferred_axis = "y" if layer.is_horizontal else "x"
    if axis == preferred_axis:
        source = layer
    else:
        source = tech.routing_layer_above(layer)
        if source is None:
            below = tech.layer_below(layer)
            while below is not None and not below.is_routing:
                below = tech.layer_below(below)
            source = below
    if source is None:
        return []
    return [
        p
        for p in design.track_patterns_on(source.name)
        if p.direction is wanted
    ]


def candidate_coords(
    axis: str,
    ctype: CoordType,
    rect: Rect,
    layer: Layer,
    design: Design,
    tech: Technology,
    via: ViaDef = None,
) -> list:
    """Enumerate candidate coordinates of one type on one axis.

    ``rect`` is a maximal rectangle of the pin shape in design
    coordinates.  Returns sorted unique coordinates that keep the
    access point inside ``rect`` on that axis.
    """
    span = rect.xspan if axis == "x" else rect.yspan
    patterns = track_patterns_for_axis(design, tech, layer, axis)

    if ctype is CoordType.ON_TRACK:
        coords = []
        for p in patterns:
            coords.extend(p.coords_in(span.lo, span.hi))
        return sorted(set(coords))

    if ctype is CoordType.HALF_TRACK:
        coords = []
        for p in patterns:
            coords.extend(p.half_track_coords_in(span.lo, span.hi))
        return sorted(set(coords))

    if ctype is CoordType.SHAPE_CENTER:
        # Skip if the span already touches two or more tracks: those
        # cases are served by on-track points, and skipping reduces
        # unique off-track coordinates (paper Sec. II-C).
        touched = sum(
            len(p.coords_in(span.lo, span.hi)) for p in patterns
        )
        if touched >= 2:
            return []
        return [span.center]

    if ctype is CoordType.ENCLOSURE_BOUNDARY:
        if via is None:
            return []
        enc = via.bottom_enc
        enc_span = enc.xspan if axis == "x" else enc.yspan
        if enc_span.length > span.length:
            return []
        low_aligned = span.lo - enc_span.lo
        high_aligned = span.hi - enc_span.hi
        return sorted({low_aligned, high_aligned})

    raise ValueError(f"unknown coordinate type {ctype!r}")
