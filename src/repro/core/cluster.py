"""Cluster-based access pattern selection (paper Sec. III-C).

Instances are grouped into per-row contiguous clusters; within each
cluster a DP (the same layered-graph machinery as Step 2, with
instances as groups and their candidate access patterns as vertices,
Figure 7) picks one pattern per instance minimizing inter-cell
boundary-pin conflicts.  Only the up-vias of boundary access points
are DRC-checked, which is the paper's acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PaafConfig
from repro.core.dpgraph import LayeredDpGraph
from repro.core.pattern import AccessPattern
from repro.db.design import Design
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.drc.pairkernel import PairKernel
from repro.obs.events import active_log
from repro.obs.metrics import active_registry
from repro.obs.trace import span
from repro.perf.profile import tick


@dataclass
class SelectedAccess:
    """The pattern selected for one concrete instance.

    ``dx``/``dy`` translate the pattern's access points (stored in the
    unique-instance representative's coordinates) into this instance's
    design coordinates.
    """

    inst: object
    pattern: AccessPattern
    dx: int
    dy: int
    overrides: dict = field(default_factory=dict)
    _boundary_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def access_points(self) -> dict:
        """Return pin name -> translated access point.

        ``overrides`` (already in design coordinates) replace the
        pattern's choice for individual pins; the repair post-pass uses
        them to resolve residual conflicts without mutating the shared
        pattern object.
        """
        if self.pattern is None:
            return {}
        out = {
            pin_name: ap.translated(self.dx, self.dy)
            for pin_name, ap in self.pattern.aps.items()
        }
        out.update(self.overrides)
        return out

    def ap_of(self, pin_name: str):
        """Return the effective (translated) AP of one pin."""
        override = self.overrides.get(pin_name)
        if override is not None:
            return override
        return self.pattern.aps[pin_name].translated(self.dx, self.dy)

    def boundary_aps(self, window: int = None) -> list:
        """Return the (pin name, translated AP) of the boundary pins.

        By default these are the first and last pins of the pattern's
        pin order (the paper's boundary pins).  With ``window`` set,
        any pin whose access point lies within ``window`` DBU of the
        instance's left or right edge is included too -- this is the
        robust superset needed when the alpha-weighted pin order does
        not end on the geometrically extreme pins.
        """
        if self.pattern is None or not self.pattern.aps:
            return []
        # The Step 3 DP prices each candidate against every neighbor
        # candidate, re-asking for the same boundary set; memoize while
        # no repair override is in play (overrides mutate in place, so
        # a cached translation would go stale).
        cacheable = not self.overrides
        if cacheable:
            cached = self._boundary_cache.get(window)
            if cached is not None:
                return cached
        names = list(self.pattern.aps)
        boundary = {names[0], names[-1]}
        if window is not None:
            bbox = self.inst.bbox
            for pin_name in self.pattern.aps:
                x = self.ap_of(pin_name).x
                if x - bbox.xlo <= window or bbox.xhi - x <= window:
                    boundary.add(pin_name)
        out = [(pin_name, self.ap_of(pin_name)) for pin_name in boundary]
        if cacheable:
            self._boundary_cache[window] = out
        return out


@dataclass
class ClusterSelectionResult:
    """Step 3 output: per-instance selection plus residual conflicts."""

    selection: dict = field(default_factory=dict)
    conflicts: list = field(default_factory=list)

    def conflicting_pins(self) -> set:
        """Return the set of (instance name, pin name) in any conflict."""
        pins = set()
        for inst_a, pin_a, inst_b, pin_b in self.conflicts:
            pins.add((inst_a, pin_a))
            pins.add((inst_b, pin_b))
        return pins


class ClusterPatternSelector:
    """Runs the Step 3 DP over every cluster of a design."""

    def __init__(
        self,
        design: Design,
        engine: DrcEngine,
        config: PaafConfig = None,
        kernel: PairKernel = None,
        akernel=None,
    ):
        self.design = design
        self.tech = design.tech
        self.engine = engine
        self.config = config or PaafConfig()
        if kernel is None:
            kernel = PairKernel(
                design.tech, mode=self.config.paircheck_mode, engine=engine
            )
        self.kernel = kernel
        self.akernel = akernel
        self._shape_ctx_cache = {}
        self._via_vs_inst_cache = {}
        # (id(left), id(right)) -> conflict list, valid only while
        # neither side has repair overrides (the candidate objects are
        # kept alive by the caller for the whole select() run, so ids
        # are stable).  The cluster DP re-prices the same neighbor
        # pair once per predecessor state; the memo collapses those
        # repeats to one boundary scan.
        self._conflict_cache = {}
        # Translation-invariant twin of the identity memo: the verdict
        # for a (pattern, pattern) pair depends only on the relative
        # displacement of the two members, so rows of identically
        # pitched instances share one boundary scan per pattern pair.
        self._conflict_rel_cache = {}
        self._via_aps_cache = {}
        self._boundary_window = self._interaction_window()

    def _interaction_window(self) -> int:
        """Return how far (in x) a via can interact across a cell edge.

        The reach of the widest enclosure of the lowest up-via plus the
        largest rule distance of the layers it touches.  Access points
        farther than this from the cell edge cannot conflict with the
        neighboring instance.
        """
        window = 0
        for via in self.tech.vias:
            bottom = self.tech.layer(via.bottom_layer)
            top = self.tech.layer(via.top_layer)
            reach = max(
                -via.bottom_enc.xlo,
                via.bottom_enc.xhi,
                -via.top_enc.xlo,
                via.top_enc.xhi,
            )
            rule = max(bottom.max_rule_distance, top.max_rule_distance)
            window = max(window, reach + rule)
        return window

    def select(
        self, candidates_by_inst: dict, alternatives_fn=None, clusters=None
    ) -> ClusterSelectionResult:
        """Select one pattern per instance.

        ``candidates_by_inst`` maps instance name to a list of
        ``SelectedAccess`` candidates (one per pattern of the unique
        instance, already carrying the member translation).  Instances
        missing from the mapping, or mapped to an empty list, are
        treated as having no selectable pattern.

        ``alternatives_fn(inst_name, pin_name)``, when given, returns
        the pin's full Step 1 access point list (representative
        coordinates); it powers the conflict-repair post-pass (the
        paper's corner-case post-processing): pins left in conflict by
        the DP are retried with their alternative access points.

        ``clusters`` restricts the selection to an explicit cluster
        list (the incremental-analysis path); by default every cluster
        of the design is processed.
        """
        result = ClusterSelectionResult()
        if clusters is None:
            clusters = self.design.row_clusters()
        for cluster in clusters:
            self._select_in_cluster(
                cluster, candidates_by_inst, result, alternatives_fn
            )
        return result

    def select_cluster(
        self, cluster, candidates_by_inst, result, alternatives_fn=None
    ) -> None:
        """Run the DP for one cluster, accumulating into ``result``.

        The per-cluster entry point the parallel Step 3 workers drive:
        it lets a caller interleave clusters with its own bookkeeping
        (per-cluster conflict slices) while sharing ``result`` so
        multi-height pinning works across the caller's cluster
        sequence.
        """
        self._select_in_cluster(
            cluster, candidates_by_inst, result, alternatives_fn
        )

    # -- internals ---------------------------------------------------------

    def _select_in_cluster(
        self, cluster, candidates_by_inst, result, alternatives_fn
    ) -> None:
        with span(
            "step3.cluster",
            first=cluster[0].name if cluster else None,
            insts=len(cluster),
        ):
            self._select_in_cluster_impl(
                cluster, candidates_by_inst, result, alternatives_fn
            )

    def _select_in_cluster_impl(
        self, cluster, candidates_by_inst, result, alternatives_fn
    ) -> None:
        groups = []
        members = []
        pinned = set()
        for inst in cluster:
            already = result.selection.get(inst.name)
            if already is not None:
                # A multi-height instance selected in a lower row's
                # cluster keeps its choice: it joins this cluster's DP
                # as a single fixed vertex.
                groups.append([already])
                pinned.add(inst.name)
            else:
                candidates = candidates_by_inst.get(inst.name) or [
                    SelectedAccess(inst=inst, pattern=None, dx=0, dy=0)
                ]
                groups.append(candidates)
            members.append(inst)
        graph = LayeredDpGraph(groups)
        chosen, _ = graph.solve(self._edge_cost)
        # The DP reuses SelectedAccess objects across members of a
        # unique instance; give each member its own copy so repair
        # overrides stay per-instance (pinned selections are kept).
        chosen = [
            sel
            if member.name in pinned
            else SelectedAccess(
                inst=member,
                pattern=sel.pattern,
                dx=sel.dx,
                dy=sel.dy,
                overrides=dict(sel.overrides),
            )
            for member, sel in zip(members, chosen)
        ]
        if alternatives_fn is not None:
            self._repair_cluster(chosen, alternatives_fn)
        log = active_log()
        for inst, selected in zip(members, chosen):
            result.selection[inst.name] = selected
            if log is not None and inst.name not in pinned:
                pattern = selected.pattern
                log.emit(
                    "cluster.selected",
                    inst=inst.name,
                    cost=pattern.cost if pattern is not None else None,
                    pins=len(pattern.aps) if pattern is not None else 0,
                )
        self._record_conflicts(chosen, result)

    def _repair_cluster(self, chosen, alternatives_fn) -> None:
        """Resolve residual conflicts by retrying alternative APs."""
        for idx in range(len(chosen) - 1):
            left, right = chosen[idx], chosen[idx + 1]
            for il, pin_l, ir, pin_r in self._boundary_conflicts(left, right):
                for position, pin_name in ((idx + 1, pin_r), (idx, pin_l)):
                    if pin_name == "<shapes>":
                        continue
                    if self._try_override(
                        chosen, position, pin_name, alternatives_fn
                    ):
                        break

    def _try_override(
        self, chosen, position, pin_name, alternatives_fn
    ) -> bool:
        """Try the pin's alternative APs; keep the first clean one."""
        selected = chosen[position]
        if selected.pattern is None or pin_name not in selected.pattern.aps:
            return False
        current = selected.ap_of(pin_name)
        alternatives = alternatives_fn(selected.inst.name, pin_name)
        for ap in alternatives:
            candidate = ap.translated(selected.dx, selected.dy)
            if (candidate.x, candidate.y) == (current.x, current.y):
                continue
            if not candidate.has_via_access:
                continue
            if not self._override_is_clean(
                chosen, position, pin_name, candidate
            ):
                continue
            log = active_log()
            if log is not None:
                log.emit(
                    "cluster.repair",
                    inst=selected.inst.name,
                    pin=pin_name,
                    from_x=current.x,
                    from_y=current.y,
                    to_x=candidate.x,
                    to_y=candidate.y,
                )
            selected.overrides[pin_name] = candidate
            return True
        return False

    def _override_is_clean(
        self, chosen, position, pin_name, candidate
    ) -> bool:
        """Check a tentative AP against neighbors and its own pattern.

        The override is accepted when the pin drops out of every
        neighbor conflict and no *new* conflicts appear -- pre-existing
        conflicts between other pins neither block nor excuse it.
        """
        selected = chosen[position]
        # Intra-pattern compatibility with the instance's other pins.
        for other_pin in selected.pattern.aps:
            if other_pin == pin_name:
                continue
            other_ap = selected.ap_of(other_pin)
            if other_ap.has_via_access and not self._pair_clean(
                candidate, other_ap
            ):
                return False
        before = self._neighbor_conflicts(chosen, position)
        old = selected.overrides.get(pin_name)
        selected.overrides[pin_name] = candidate
        try:
            after = self._neighbor_conflicts(chosen, position)
        finally:
            if old is None:
                selected.overrides.pop(pin_name, None)
            else:
                selected.overrides[pin_name] = old
        inst_name = selected.inst.name
        still_conflicting = any(
            (a == inst_name and pa == pin_name)
            or (b == inst_name and pb == pin_name)
            for a, pa, b, pb in after
        )
        return not still_conflicting and set(after) <= set(before)

    def _neighbor_conflicts(self, chosen, position) -> list:
        """Conflicts of the instance at ``position`` with its neighbors."""
        conflicts = []
        if position > 0:
            conflicts.extend(
                self._boundary_conflicts(
                    chosen[position - 1], chosen[position]
                )
            )
        if position < len(chosen) - 1:
            conflicts.extend(
                self._boundary_conflicts(
                    chosen[position], chosen[position + 1]
                )
            )
        return conflicts

    def _edge_cost(self, prev, curr, prev_prev) -> float:
        cost = self._vertex_cost(curr)
        if prev is not None and self._boundary_conflicts(prev, curr):
            cost += self.config.drc_cost
        return cost

    def _vertex_cost(self, selected: SelectedAccess) -> float:
        if selected.pattern is None:
            return 0
        cost = selected.pattern.cost
        if not selected.pattern.is_clean:
            cost += self.config.drc_cost * len(selected.pattern.violations)
        return cost

    def _boundary_conflicts(
        self, left: SelectedAccess, right: SelectedAccess
    ) -> list:
        """Return conflicting boundary AP pairs between two neighbors.

        Two interactions are checked, mirroring TritonRoute's cluster
        DRC worker: the boundary up-vias of the two patterns against
        each other, and each boundary up-via against the *static*
        shapes (pins, obstructions) of the neighboring instance.
        """
        cacheable = not left.overrides and not right.overrides
        rel_key = None
        if cacheable:
            cached = self._conflict_cache.get((id(left), id(right)))
            if cached is not None:
                return cached
            if left.pattern is not None and right.pattern is not None:
                # Patterns are owned by one unique instance each, so
                # the pattern ids pin down both representatives'
                # absolute geometry; the dx/dy delta pins the members'
                # relative placement.  Every conflict check (pair
                # kernel, via-vs-instance table) is translation
                # invariant, so the pin-pair verdicts transfer.
                rel_key = (
                    id(left.pattern),
                    id(right.pattern),
                    right.dx - left.dx,
                    right.dy - left.dy,
                )
                hit = self._conflict_rel_cache.get(rel_key)
                if hit is not None:
                    lname = left.inst.name
                    rname = right.inst.name
                    conflicts = [
                        (lname, pin_a, rname, pin_b)
                        for pin_a, pin_b in hit
                    ]
                    self._conflict_cache[(id(left), id(right))] = conflicts
                    return conflicts
        conflicts = []
        left_aps = self._boundary_via_aps(left, cacheable)
        right_aps = self._boundary_via_aps(right, cacheable)
        lname = left.inst.name
        rname = right.inst.name
        kernel = self.kernel
        tables = (
            kernel.tables
            if kernel.mode == "kernel" and active_registry() is None
            else None
        )
        pair_clean = kernel.pair_clean
        for pin_a, _ap_a, via_a, ax, ay in left_aps:
            for pin_b, _ap_b, via_b, bx, by in right_aps:
                if tables is not None:
                    # Inlined kernel-mode fast path: build_all has
                    # precompiled every via combination, so the dict
                    # hit plus the table probe is the whole verdict.
                    # Only taken with no metrics registry active --
                    # the method path is what ticks the query
                    # counters.
                    table = tables.get((via_a, via_b, False))
                    clean = (
                        table.clean(bx - ax, by - ay)
                        if table is not None
                        else pair_clean(via_a, ax, ay, via_b, bx, by)
                    )
                else:
                    clean = pair_clean(via_a, ax, ay, via_b, bx, by)
                if not clean:
                    conflicts.append((lname, pin_a, rname, pin_b))
        for pin_a, ap_a, _via, _ax, _ay in left_aps:
            if not self._via_vs_instance_clean(ap_a, right.inst):
                conflicts.append((lname, pin_a, rname, "<shapes>"))
        for pin_b, ap_b, _via, _bx, _by in right_aps:
            if not self._via_vs_instance_clean(ap_b, left.inst):
                conflicts.append((lname, "<shapes>", rname, pin_b))
        if cacheable:
            self._conflict_cache[(id(left), id(right))] = conflicts
            if rel_key is not None:
                self._conflict_rel_cache[rel_key] = [
                    (pin_a, pin_b) for _, pin_a, _, pin_b in conflicts
                ]
        return conflicts

    def _boundary_via_aps(self, sel: SelectedAccess, cacheable: bool) -> list:
        """Boundary APs with via access, unpacked for the conflict scan.

        Entries are ``(pin, ap, primary_via, x, y)``; memoized per
        selection object while it carries no repair overrides (same
        staleness rule as the conflict memos).
        """
        if cacheable:
            hit = self._via_aps_cache.get(id(sel))
            if hit is not None:
                return hit
        out = [
            (pin, ap, ap.valid_vias[0], ap.x, ap.y)
            for pin, ap in sel.boundary_aps(self._boundary_window)
            if ap.has_via_access
        ]
        if cacheable:
            self._via_aps_cache[id(sel)] = out
        return out

    def _via_vs_instance_clean(self, ap, neighbor_inst) -> bool:
        """Check an up-via against a neighboring instance's shapes.

        With an array kernel attached this is one compiled-table lookup
        keyed by the via's displacement from the neighbor's origin (the
        ``net_key=None`` site table, shared across every instance of
        the neighbor's master/orientation); the kernel's verify mode
        cross-checks the engine internally.
        """
        key = (ap.primary_via, ap.x, ap.y, neighbor_inst.name)
        cached = self._via_vs_inst_cache.get(key)
        if cached is not None:
            tick("cluster.via_vs_inst_cache.hit")
            return cached
        tick("cluster.via_vs_inst_cache.miss")
        akernel = self.akernel
        if akernel is not None and akernel.mode != "engine":
            clean = akernel.via_vs_instance_clean(
                ap.primary_via, ap.x, ap.y, neighbor_inst
            )
            self._via_vs_inst_cache[key] = clean
            return clean
        context = self._shape_ctx_cache.get(neighbor_inst.name)
        if context is None:
            context = ShapeContext.from_instance(neighbor_inst)
            self._shape_ctx_cache[neighbor_inst.name] = context
        via = self.tech.via(ap.primary_via)
        clean = not self.engine.check_via_placement(
            via, ap.x, ap.y, None, context, with_min_step=False
        )
        self._via_vs_inst_cache[key] = clean
        return clean

    def _pair_clean(self, ap_a, ap_b) -> bool:
        """Boundary pair verdict via the shared translation-invariant
        kernel -- the same value-keyed backend Step 2 uses, so verdicts
        are shared across clusters, selectors and worker processes
        instead of living in a per-selector position-keyed dict."""
        return self.kernel.pair_clean(
            ap_a.primary_via, ap_a.x, ap_a.y,
            ap_b.primary_via, ap_b.x, ap_b.y,
        )

    def _record_conflicts(self, chosen, result) -> None:
        """Re-check the selected neighbors and log residual conflicts."""
        log = active_log()
        for left, right in zip(chosen, chosen[1:]):
            conflicts = self._boundary_conflicts(left, right)
            result.conflicts.extend(conflicts)
            if log is not None:
                for inst_a, pin_a, inst_b, pin_b in conflicts:
                    log.emit(
                        "cluster.conflict",
                        inst_a=inst_a,
                        pin_a=pin_a,
                        inst_b=inst_b,
                        pin_b=pin_b,
                    )
