"""Unique-instance access pattern generation (paper Sec. III-B).

The iterative flow of Figure 4: order pins, build the layered DP graph
(Figure 6), run Algorithm 2 with the boundary-conflict-aware and
history-aware edge costs of Algorithm 3, validate the resulting
pattern with the DRC engine, penalize the used boundary access points
and iterate for the next pattern.
"""

from __future__ import annotations

from repro.core.apgen import AccessPoint
from repro.core.arraykernel import FlatDp
from repro.core.config import PaafConfig
from repro.core.dpgraph import LayeredDpGraph
from repro.core.pattern import AccessPattern
from repro.drc.engine import DrcEngine
from repro.drc.pairkernel import PairKernel
from repro.obs.events import active_log
from repro.obs.metrics import active_registry
from repro.obs.trace import span
from repro.tech.technology import Technology


def order_pins(aps_by_pin: dict, alpha: float) -> list:
    """Order pins by ``x_avg + alpha * y_avg`` of their access points.

    Pins without access points are excluded (they cannot join any
    pattern).  With a small alpha the first and last pins are the
    leftmost and rightmost pins -- the *boundary pins* that get special
    treatment (paper Figure 5).
    """
    keyed = []
    for pin_name, aps in aps_by_pin.items():
        if not aps:
            continue
        x_avg = sum(ap.x for ap in aps) / len(aps)
        y_avg = sum(ap.y for ap in aps) / len(aps)
        keyed.append((x_avg + alpha * y_avg, pin_name))
    keyed.sort()
    return [pin_name for _, pin_name in keyed]


def _ap_key(pin_name: str, ap: AccessPoint) -> tuple:
    """Value identity of an access point within one unique instance.

    Keys by ``(pin, via, x, y)`` rather than ``id(ap)``: object ids can
    alias after garbage collection and never match across generator
    instances, while value keys are stable and shareable.  Access
    points are unique per pin location by construction (Step 1 dedupes
    candidate points), so the value key is exactly as discriminating.
    """
    return (pin_name, ap.primary_via, ap.x, ap.y)


class AccessPatternGenerator:
    """Generates up to N mutually-diverse access patterns per unique instance.

    Pairwise via compatibility is served by a shared
    :class:`~repro.drc.pairkernel.PairKernel` (pass ``kernel`` to share
    tables across generators and processes); with no kernel given, one
    is built lazily from the technology in the config's
    ``paircheck_mode``.
    """

    def __init__(
        self,
        tech: Technology,
        engine: DrcEngine,
        config: PaafConfig = None,
        kernel: PairKernel = None,
        akernel=None,
    ):
        self.tech = tech
        self.engine = engine
        self.config = config or PaafConfig()
        if kernel is None:
            kernel = PairKernel(
                tech, mode=self.config.paircheck_mode, engine=engine
            )
        self.kernel = kernel
        self.akernel = akernel

    def generate(self, aps_by_pin: dict, label: str = None) -> list:
        """Return access patterns for one unique instance.

        ``aps_by_pin`` maps pin name to the Step 1 access point list
        (representative-instance coordinates).  Patterns cover every
        pin that has at least one access point.  ``label`` tags the
        emitted observability spans/events with the owning instance
        (the unique-instance representative's name).
        """
        cfg = self.config
        ordered_pins = order_pins(aps_by_pin, cfg.alpha)
        if not ordered_pins:
            return []
        boundary_pins = {ordered_pins[0], ordered_pins[-1]}
        groups = [
            [(pin_name, ap) for ap in aps_by_pin[pin_name]]
            for pin_name in ordered_pins
        ]
        used_boundary_aps = set()
        patterns = []
        seen_signatures = set()
        log = active_log()
        solver = None
        if (
            self.akernel is not None
            and self.akernel.mode != "engine"
            and log is None
            and active_registry() is None
        ):
            # Flat-array DP: compatibility masks compile once and are
            # reused by every pattern iteration.  Gated off when
            # telemetry sinks are active -- the closure path is what
            # prices each edge into the metrics/event streams.
            compat = self.aps_compatible
            kernel = self.kernel
            if kernel.mode == "kernel":
                # Mask compilation is the Step 2 hot loop; with no
                # registry active (guaranteed in this branch) the
                # query counters are no-ops anyway, so probe the
                # prebuilt pair tables directly.
                tables = kernel.tables
                pair_clean = kernel.pair_clean

                def compat(a, b):
                    if not a.has_via_access or not b.has_via_access:
                        return True
                    table = tables.get(
                        (a.primary_via, b.primary_via, False)
                    )
                    if table is None:
                        return pair_clean(
                            a.primary_via, a.x, a.y,
                            b.primary_via, b.x, b.y,
                        )
                    return table.clean(b.x - a.x, b.y - a.y)

            solver = FlatDp(groups, compat, cfg)

        def is_used_boundary(vertex) -> bool:
            pin_name, ap = vertex
            return (
                pin_name in boundary_pins
                and _ap_key(pin_name, ap) in used_boundary_aps
            )

        with span("step2.patterns", inst=label) as record:
            for iteration in range(cfg.patterns_per_unique_instance):
                if solver is not None:
                    chosen, cost = solver.solve(is_used_boundary)
                    self.akernel.dp_solves += 1
                else:
                    graph = LayeredDpGraph(groups)
                    chosen, cost = graph.solve(
                        self._edge_cost_fn(
                            boundary_pins, used_boundary_aps, label
                        )
                    )
                pattern = AccessPattern(
                    aps={pin_name: ap for pin_name, ap in chosen},
                    cost=int(cost),
                )
                pattern.violations = self.validate(pattern)
                signature = pattern.signature()
                if signature not in seen_signatures:
                    seen_signatures.add(signature)
                    patterns.append(pattern)
                    if log is not None:
                        log.emit(
                            "pattern.generated",
                            inst=label,
                            index=len(patterns) - 1,
                            cost=pattern.cost,
                            clean=pattern.is_clean,
                            pins={
                                pin_name: [ap.x, ap.y]
                                for pin_name, ap in pattern.aps.items()
                            },
                        )
                for pin_name, ap in chosen:
                    if pin_name in boundary_pins:
                        used_boundary_aps.add(_ap_key(pin_name, ap))
            if record is not None:
                record["attrs"]["patterns"] = len(patterns)
        return patterns

    # -- Algorithm 3 -------------------------------------------------------

    def _edge_cost_fn(
        self, boundary_pins: set, used_boundary_aps: set, label: str = None
    ):
        """Build the Algorithm 3 edge-cost callback for one DP run.

        The observability sinks are captured once per DP run (the
        callback itself is the Step 2 hot path): with a registry
        active every edge cost lands in the ``patterngen.edge_cost``
        histogram, and with an event log active each *penalized* edge
        (boundary-used, DRC-incompatible, history-incompatible)
        becomes a ``dp.edge.penalized`` event.
        """
        cfg = self.config
        registry = active_registry()
        log = active_log()

        def is_used_boundary(vertex) -> bool:
            pin_name, ap = vertex
            return (
                pin_name in boundary_pins
                and _ap_key(pin_name, ap) in used_boundary_aps
            )

        if registry is None and log is None:
            # Disabled path: the exact pre-observability closure, with
            # zero per-edge overhead.
            def edge_cost(prev, curr, prev_prev) -> float:
                if prev is None:
                    # Virtual source edge: the vertex's own quality
                    # cost.
                    _, ap = curr
                    return cfg.ap_cost_scale * ap.cost
                if cfg.boundary_conflict_aware and is_used_boundary(prev):
                    return cfg.penalty_cost
                if cfg.boundary_conflict_aware and is_used_boundary(curr):
                    return cfg.penalty_cost
                if not self.aps_compatible(prev[1], curr[1]):
                    return cfg.drc_cost
                if (
                    cfg.history_aware
                    and prev_prev is not None
                    and not self.aps_compatible(prev_prev[1], curr[1])
                ):
                    return cfg.drc_cost
                _, prev_ap = prev
                _, curr_ap = curr
                return cfg.ap_cost_scale * (prev_ap.cost + curr_ap.cost)

            return edge_cost

        def priced(prev, curr, cost, reason) -> float:
            if registry is not None:
                registry.observe("patterngen.edge_cost", float(cost))
                if reason is not None:
                    registry.incr(
                        "patterngen.edge." + reason.replace("-", "_")
                    )
            if log is not None and reason is not None and prev is not None:
                log.emit(
                    "dp.edge.penalized",
                    inst=label,
                    reason=reason,
                    pin_a=prev[0],
                    ax=prev[1].x,
                    ay=prev[1].y,
                    pin_b=curr[0],
                    bx=curr[1].x,
                    by=curr[1].y,
                    cost=cost,
                )
            return cost

        def edge_cost(prev, curr, prev_prev) -> float:
            if prev is None:
                # Virtual source edge: the vertex's own quality cost.
                _, ap = curr
                return priced(prev, curr, cfg.ap_cost_scale * ap.cost, None)
            if cfg.boundary_conflict_aware and is_used_boundary(prev):
                return priced(
                    prev, curr, cfg.penalty_cost, "boundary-used"
                )
            if cfg.boundary_conflict_aware and is_used_boundary(curr):
                return priced(
                    prev, curr, cfg.penalty_cost, "boundary-used"
                )
            if not self.aps_compatible(prev[1], curr[1]):
                return priced(prev, curr, cfg.drc_cost, "drc-pair")
            if (
                cfg.history_aware
                and prev_prev is not None
                and not self.aps_compatible(prev_prev[1], curr[1])
            ):
                return priced(prev, curr, cfg.drc_cost, "history-drc")
            _, prev_ap = prev
            _, curr_ap = curr
            return priced(
                prev,
                curr,
                cfg.ap_cost_scale * (prev_ap.cost + curr_ap.cost),
                None,
            )

        return edge_cost

    def aps_compatible(self, ap_a: AccessPoint, ap_b: AccessPoint) -> bool:
        """Return True if the primary up-vias of two APs are DRC-clean.

        Only up-vias are checked (the paper's acceleration).  Planar
        access points short-circuit before any kernel lookup -- they
        cannot conflict through vias.  The verdict itself comes from
        the translation-invariant pair kernel, which replaces the old
        per-generator ``id()``-keyed memo with tables shared across
        unique instances, DP iterations and worker processes.
        """
        if not ap_a.has_via_access or not ap_b.has_via_access:
            return True
        return self.kernel.pair_clean(
            ap_a.primary_via, ap_a.x, ap_a.y,
            ap_b.primary_via, ap_b.x, ap_b.y,
        )

    # -- post-generation validation -----------------------------------------

    def validate(self, pattern: AccessPattern) -> list:
        """Full DRC validation of a pattern (all AP pairs, up-vias only).

        Catches the "unseen DRCs" between non-neighboring groups that
        the chain-structured DP cannot price (Sec. III-B end).  Returns
        ``(pin_a, pin_b, violation)`` tuples so failed-pin accounting
        can name the culprits.

        The pair kernel prefilters: only pairs it reports dirty reach
        the engine, which then enumerates the actual violation records.
        Because a kernel-clean verdict is equivalent to an empty engine
        result, the returned list is identical to checking every pair
        through the engine.
        """
        items = list(pattern.aps.items())
        violations = []
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                name_a, ap_a = items[i]
                name_b, ap_b = items[j]
                if not ap_a.has_via_access or not ap_b.has_via_access:
                    continue
                if self.kernel.pair_clean(
                    ap_a.primary_via, ap_a.x, ap_a.y,
                    ap_b.primary_via, ap_b.x, ap_b.y,
                ):
                    continue
                via_a = self.tech.via(ap_a.primary_via)
                via_b = self.tech.via(ap_b.primary_via)
                for violation in self.engine.check_via_pair(
                    via_a, (ap_a.x, ap_a.y), via_b, (ap_b.x, ap_b.y)
                ):
                    violations.append((name_a, name_b, violation))
        return violations
