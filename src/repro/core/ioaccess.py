"""Access point analysis for top-level IO pins.

The contest designs carry up to 1211 IO pins (Table I); a router ends
nets on them just like on instance pins.  IO pins sit on routing
layers at the die boundary, so their analysis is simpler than cell
pins -- no unique-instance machinery, no clustering -- but uses the
same coordinate ladder and DRC validation against the full design.
"""

from __future__ import annotations

from repro.core.apgen import AccessPoint
from repro.core.config import PaafConfig
from repro.core.coords import CoordType, candidate_coords
from repro.db.design import Design
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.geom.maxrect import maximal_rectangles
from repro.geom.polygon import RectilinearPolygon


class IoPinAccess:
    """Generates validated access points for every IO pin."""

    def __init__(self, design: Design, config: PaafConfig = None):
        self.design = design
        self.tech = design.tech
        self.config = config or PaafConfig()
        self.engine = DrcEngine(design.tech)

    def run(self, context: ShapeContext = None) -> dict:
        """Return IO pin name -> list of validated access points.

        ``context`` defaults to the full-design fixed shapes; pass a
        pre-built one to amortize across calls.
        """
        if context is None:
            context = ShapeContext.from_design(self.design)
        out = {}
        for io_pin in self.design.io_pins.values():
            out[io_pin.name] = self._generate(io_pin, context)
        return out

    def _generate(self, io_pin, context) -> list:
        layer = self.tech.layer(io_pin.layer_name)
        if not layer.is_routing:
            return []
        net_key = self._net_key(io_pin)
        polygon = RectilinearPolygon([io_pin.rect])
        aps = []
        seen = set()
        pref_axis = "y" if layer.is_horizontal else "x"
        try:
            viadef = self.tech.primary_via_from(layer.name)
        except KeyError:
            viadef = None
        for t1 in self.config.non_preferred_types:
            for t0 in self.config.preferred_types:
                for rect in maximal_rectangles(polygon):
                    pref = candidate_coords(
                        pref_axis, t0, rect, layer, self.design,
                        self.tech, viadef,
                    )
                    nonpref_axis = "x" if pref_axis == "y" else "y"
                    nonpref = candidate_coords(
                        nonpref_axis, t1, rect, layer, self.design,
                        self.tech, viadef,
                    )
                    for pc in pref:
                        for nc in nonpref:
                            x, y = (nc, pc) if pref_axis == "y" else (pc, nc)
                            if (x, y) in seen:
                                continue
                            seen.add((x, y))
                            ap = self._validate(
                                layer, x, y, t0, t1, net_key, context
                            )
                            if ap is not None:
                                aps.append(ap)
                if len(aps) >= self.config.k:
                    return aps
        return aps

    def _validate(self, layer, x, y, t0, t1, net_key, context):
        valid_vias = []
        for viadef in self.tech.vias_from(layer.name):
            if not self.engine.check_via_placement(
                viadef, x, y, net_key, context
            ):
                valid_vias.append(viadef.name)
        if not valid_vias:
            return None
        return AccessPoint(
            x=x,
            y=y,
            layer_name=layer.name,
            pref_type=CoordType(t0),
            nonpref_type=CoordType(t1),
            valid_vias=valid_vias,
            planar_dirs=[],
        )

    def _net_key(self, io_pin):
        for net in self.design.nets.values():
            if io_pin.name in net.io_pins:
                return net.name
        return io_pin.name
