"""Configuration for the pin access framework.

Defaults follow the paper's published constants: ``k = 3`` access
points per pin (Sec. III-A), ``alpha = 0.3`` pin-ordering weight
(Sec. III-B), up to 3 access patterns per unique instance (Sec. IV,
Experiment 2), boundary-conflict awareness and history-aware
optimization on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coords import (
    NON_PREFERRED_TYPES,
    PREFERRED_TYPES,
)


@dataclass
class PaafConfig:
    """Tunable knobs of the framework (ablation benches sweep these)."""

    # Step 1 -- access point generation.
    k: int = 3
    require_via_access: bool = True     # std cells need up-via access
    check_planar: bool = True           # also record planar directions
    require_cut_on_pin: bool = False    # strict via-in-pin: the cut must
                                        # land fully on pin metal
    preferred_types: tuple = PREFERRED_TYPES
    non_preferred_types: tuple = NON_PREFERRED_TYPES

    # Step 2 -- access pattern generation.
    alpha: float = 0.3
    patterns_per_unique_instance: int = 3
    boundary_conflict_aware: bool = True
    history_aware: bool = True
    ap_cost_scale: int = 1
    drc_cost: int = 1000
    penalty_cost: int = 100

    # Performance knobs (repro.perf).  These change how the flow
    # executes, never what it computes: results are bit-identical for
    # any ``jobs`` value and any ``paircheck_mode``, and the AP cache
    # fingerprint excludes them.
    jobs: int = 1                       # worker processes; 0 = all cores
    cache_dir: str = None               # persistent AP/pattern cache root
    profile: bool = False               # collect hot-path counters
    paircheck_mode: str = "kernel"      # via-pair backend: "kernel"
                                        # (forbidden-displacement tables),
                                        # "engine" (DrcEngine oracle) or
                                        # "verify" (both; raise on any
                                        # divergence)
    apcheck_mode: str = "array"         # Step 1/3 candidate backend:
                                        # "array" (compiled per-cell
                                        # occupancy tables), "engine"
                                        # (per-candidate DrcEngine
                                        # probes) or "verify" (both;
                                        # raise on any divergence)

    # Observability knobs (repro.obs).  Perf-only like the block
    # above: they add telemetry, never change results, and the AP
    # cache fingerprint excludes them.
    trace: bool = False                 # record spans into result.trace
    trace_out: str = None               # write Chrome-trace JSON here
                                        # (implies trace)
    metrics_out: str = None             # write Prometheus text here
                                        # (implies a metrics registry)
    explain: object = False             # collect decision events; a
                                        # string is a JSONL output path

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.patterns_per_unique_instance <= 0:
            raise ValueError("patterns_per_unique_instance must be positive")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means all cores)")
        if self.paircheck_mode not in ("kernel", "engine", "verify"):
            raise ValueError(
                "paircheck_mode must be 'kernel', 'engine' or 'verify', "
                f"got {self.paircheck_mode!r}"
            )
        if self.apcheck_mode not in ("array", "engine", "verify"):
            raise ValueError(
                "apcheck_mode must be 'array', 'engine' or 'verify', "
                f"got {self.apcheck_mode!r}"
            )

    def without_bca(self) -> "PaafConfig":
        """Return a copy configured as the paper's "w/o BCA" setup.

        One access pattern per unique instance and no boundary-conflict
        penalty (Experiment 2's first PAAF column).
        """
        import dataclasses

        return dataclasses.replace(
            self,
            patterns_per_unique_instance=1,
            boundary_conflict_aware=False,
        )
