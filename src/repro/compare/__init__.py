"""Router-in-the-loop comparator (paper Experiment 3, Figures 8-9).

Routes a case matrix through three access flows -- in-process PAO,
serve-backed PAO (answers pulled from a live daemon over the wire and
asserted bit-identical), and the legacy Dr. CU-style baseline -- and
scores each routed result: DRC counts by violation class (pin-access
and full scope, IO-attributed counts separated), opens, wirelength
and runtime deltas.  Runs are resumable directories of isolated
(case, flow) worker processes; per-case reports are gated against
committed goldens under ``goldens/compare/``.
"""

from repro.compare.cases import (
    FLOWS,
    GOLDEN_MATRIX,
    SMOKE_MATRIX,
    CaseSpec,
    parse_case,
)
from repro.compare.flows import execute_flow
from repro.compare.report import (
    COMPARE_SCHEMA,
    GOLDEN_SCHEMA,
    REPORT_SCHEMA,
    build_report,
    case_report,
    render_markdown,
    write_goldens,
)
from repro.compare.runner import run_compare

__all__ = [
    "FLOWS",
    "GOLDEN_MATRIX",
    "SMOKE_MATRIX",
    "CaseSpec",
    "parse_case",
    "execute_flow",
    "COMPARE_SCHEMA",
    "GOLDEN_SCHEMA",
    "REPORT_SCHEMA",
    "build_report",
    "case_report",
    "render_markdown",
    "write_goldens",
    "run_compare",
]
