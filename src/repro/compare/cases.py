"""Case matrix for the router-in-the-loop comparator.

A *case* is a benchmark design at a scale (plus an optional net cap
for smoke runs); the comparator routes every case through each access
flow.  The committed matrices mirror the repo's golden corpus -- the
scaled ISPD-2018 cases the qa goldens pin, the 14 nm AES design of
the paper's Figure 9 preliminary study, and the adversarial pin-zoo
families -- so Figure 8's ordering is measured on both friendly and
hostile inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Access flows the comparator knows how to run.
FLOWS = ("pao", "serve", "legacy")


@dataclass(frozen=True)
class CaseSpec:
    """One comparator case: a named design at a scale."""

    testcase: str
    scale: float
    max_nets: int = None

    @property
    def case_id(self) -> str:
        return f"{self.testcase}@{self.scale:g}"

    def build(self):
        """Materialize the design."""
        from repro.bench import build_case

        return build_case(self.testcase, scale=self.scale)


def parse_case(text: str) -> CaseSpec:
    """Parse ``name@scale`` (scale defaults to 1, as the zoo uses)."""
    if "@" in text:
        name, _, scale = text.partition("@")
        return CaseSpec(testcase=name, scale=float(scale))
    return CaseSpec(testcase=text, scale=1.0)


#: The committed golden corpus: what `goldens/compare/` pins and CI
#: gates.  Scales match the qa golden corpus where one exists.
GOLDEN_MATRIX = (
    CaseSpec("ispd18_test1", 0.004),
    CaseSpec("ispd18_test5", 0.002),
    CaseSpec("ispd18_test8", 0.002),
    CaseSpec("aes_14nm", 0.01),
    CaseSpec("pinzoo_sram", 1.0),
    CaseSpec("pinzoo_io", 1.0),
    CaseSpec("pinzoo_hostile", 1.0),
)

#: The CI smoke matrix: one friendly case plus the whole zoo.
SMOKE_MATRIX = (
    CaseSpec("ispd18_test1", 0.004),
    CaseSpec("pinzoo_sram", 1.0),
    CaseSpec("pinzoo_io", 1.0),
    CaseSpec("pinzoo_hostile", 1.0),
)
