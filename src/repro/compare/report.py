"""Per-case comparator reports, goldens and the regression gate.

The per-case ``repro.compare/v1`` report aggregates one flow record
per access flow and derives the paper's headline readouts: the
Figure 8 ordering (legacy pin-access DRCs >> PAO, with PAO clean) and
the legacy/PAO deltas on DRCs, opens, wirelength and runtime.

Goldens (``repro.compare.golden/v1``, one file per case under
``goldens/compare/``) pin every *deterministic* metric of every flow
-- DRC totals by class, coverage, opens, wirelength, geometry counts,
the serve flow's bit-identity verdict -- and the gate requires exact
equality, the same determinism contract the qa golden corpus relies
on.  Timings are reported but never gated.
"""

from __future__ import annotations

import os

from repro.compare.cases import CaseSpec, parse_case

COMPARE_SCHEMA = "repro.compare/v1"
GOLDEN_SCHEMA = "repro.compare.golden/v1"
REPORT_SCHEMA = "repro.compare.report/v1"

#: Flow-record fields the goldens pin (everything here is a
#: deterministic function of the seeded design and the flow).
_GATED_TOP = ("access", "routing")
_GATED_DRC = (
    "pin_access_total",
    "pin_access",
    "full_total",
    "full",
    "full_io_total",
    "full_cell_total",
)


def deterministic_metrics(record: dict) -> dict:
    """Extract the golden-gated subset of one flow record."""
    out = {}
    for section in _GATED_TOP:
        for key, value in (record.get(section) or {}).items():
            out[f"{section}.{key}"] = value
    drc = record.get("drc") or {}
    for key in _GATED_DRC:
        if key in drc:
            out[f"drc.{key}"] = drc[key]
    serve = record.get("serve")
    if serve is not None:
        out["serve.wire_identical"] = serve.get("wire_identical")
    return out


def case_report(
    case: CaseSpec, records: dict, wanted_flows: list = None
) -> dict:
    """Build the ``repro.compare/v1`` report for one case."""
    wanted = list(wanted_flows or records)
    pao = records.get("pao") or records.get("serve")
    legacy = records.get("legacy")
    deltas = {}
    ordering = None
    if pao and legacy:
        pao_pa = pao["drc"]["pin_access_total"]
        legacy_pa = legacy["drc"]["pin_access_total"]
        pao_wl = pao["routing"]["wirelength"]
        deltas = {
            "pin_access_drc_ratio": round(legacy_pa / max(1, pao_pa), 3),
            "full_drc_delta": (
                legacy["drc"]["full_total"] - pao["drc"]["full_total"]
            ),
            "unconnected_delta": (
                legacy["routing"]["unconnected_terms"]
                - pao["routing"]["unconnected_terms"]
            ),
            "wirelength_delta_pct": (
                round(
                    100.0
                    * (legacy["routing"]["wirelength"] - pao_wl)
                    / pao_wl,
                    3,
                )
                if pao_wl
                else 0.0
            ),
        }
        ordering = {
            "pao_pin_access": pao_pa,
            "legacy_pin_access": legacy_pa,
            "figure8_ok": pao_pa == 0 and legacy_pa >= 10 * max(1, pao_pa),
        }
    return {
        "schema": COMPARE_SCHEMA,
        "case": case.case_id,
        "testcase": case.testcase,
        "scale": case.scale,
        "flows": records,
        "metrics": {
            flow: deterministic_metrics(record)
            for flow, record in records.items()
        },
        "deltas": deltas,
        "ordering": ordering,
        "complete": all(flow in records for flow in wanted),
    }


def flow_envelope(case: CaseSpec, records: dict) -> dict:
    """Roll one case's flow records into a ``repro.qa.bench/v1`` entry.

    Written into the run's ``envelopes/`` directory, which is a flat
    dir `repro sweep report` can consume directly.
    """
    from repro.qa.metrics import bench_entry

    any_record = next(iter(records.values()))
    perf = {}
    metrics = {}
    for flow, record in sorted(records.items()):
        perf[f"{flow}_analyze_s"] = round(record["analyze_s"], 6)
        perf[f"{flow}_route_s"] = round(record["route_s"], 6)
        metrics[f"{flow}_pin_access_drcs"] = record["drc"][
            "pin_access_total"
        ]
        metrics[f"{flow}_full_drcs"] = record["drc"]["full_total"]
        metrics[f"{flow}_unconnected"] = record["routing"][
            "unconnected_terms"
        ]
        metrics[f"{flow}_wirelength"] = record["routing"]["wirelength"]
        serve = record.get("serve")
        if serve:
            perf[f"{flow}_query_batch_s"] = round(
                serve["query_batch_s"], 6
            )
            metrics[f"{flow}_wire_identical"] = int(
                bool(serve["wire_identical"])
            )
    if "pao" in records and "legacy" in records:
        metrics["pin_access_drc_ratio"] = round(
            records["legacy"]["drc"]["pin_access_total"]
            / max(1, records["pao"]["drc"]["pin_access_total"]),
            3,
        )
    return bench_entry(
        design=case.testcase,
        scale=case.scale,
        cells=any_record["design"]["cells"],
        perf=perf,
        metrics=metrics,
        context={"harness": "repro.compare"},
    )


# -- goldens ------------------------------------------------------------------


def golden_path(goldens_dir: str, case_id: str) -> str:
    return os.path.join(goldens_dir, f"{case_id}.json")


def golden_from_report(report: dict) -> dict:
    """Distill one case report into its committed golden."""
    return {
        "schema": GOLDEN_SCHEMA,
        "case": report["case"],
        "testcase": report["testcase"],
        "scale": report["scale"],
        "metrics": report["metrics"],
        "ordering": report["ordering"],
    }


def write_goldens(run_report: dict, goldens_dir: str) -> list:
    """Accept the run's current numbers as goldens; return paths."""
    from repro.sweep.runner import _write_json

    os.makedirs(goldens_dir, exist_ok=True)
    written = []
    for case in run_report["cases"]:
        if not case["complete"]:
            continue
        path = golden_path(goldens_dir, case["case"])
        _write_json(path, golden_from_report(case))
        written.append(path)
    return written


# -- the run-level report and gate --------------------------------------------


def load_run(run_dir: str) -> list:
    """Load every per-case report under ``run_dir``."""
    from repro.sweep.runner import _read_json

    cases_root = os.path.join(run_dir, "cases")
    reports = []
    if not os.path.isdir(cases_root):
        return reports
    for name in sorted(os.listdir(cases_root)):
        report = _read_json(os.path.join(cases_root, name, "report.json"))
        if report is not None:
            reports.append(report)
    return reports


def build_report(run_dir: str, goldens_dir: str = None) -> dict:
    """Gate a run against goldens and invariants.

    Failure kinds:

    * ``incomplete``     -- a case is missing one or more flow records
      (worker failed or timed out).
    * ``wire-identity``  -- the serve flow's access map diverged from
      the in-process oracle's.
    * ``figure8``        -- the golden pinned the Figure 8 ordering as
      holding and it no longer does.
    * ``golden``         -- a gated deterministic metric changed.

    Cases without a committed golden are reported but never gated.
    """
    from repro.sweep.runner import _read_json

    case_reports = load_run(run_dir)
    failures = []
    rows = []
    for report in case_reports:
        case_id = report["case"]
        if not report["complete"]:
            failures.append(
                {"kind": "incomplete", "case": case_id}
            )
        for flow, record in report["flows"].items():
            serve = record.get("serve")
            if serve is not None and not serve.get("wire_identical"):
                failures.append(
                    {
                        "kind": "wire-identity",
                        "case": case_id,
                        "flow": flow,
                        "mismatches": serve.get("mismatches", []),
                    }
                )
        golden = None
        if goldens_dir:
            golden = _read_json(golden_path(goldens_dir, case_id))
        if golden is not None:
            failures.extend(_check_golden(report, golden))
        rows.append(
            {
                "case": case_id,
                "golden": golden is not None,
                "ordering": report.get("ordering"),
                "deltas": report.get("deltas"),
            }
        )
    status = "regressed" if failures else "ok"
    return {
        "schema": REPORT_SCHEMA,
        "run_dir": os.path.abspath(run_dir),
        "goldens_dir": (
            os.path.abspath(goldens_dir) if goldens_dir else None
        ),
        "status": status,
        "failures": failures,
        "rows": rows,
        "cases": case_reports,
    }


def _check_golden(report: dict, golden: dict) -> list:
    failures = []
    case_id = report["case"]
    want_ordering = golden.get("ordering") or {}
    have_ordering = report.get("ordering") or {}
    if want_ordering.get("figure8_ok") and not have_ordering.get(
        "figure8_ok"
    ):
        failures.append(
            {
                "kind": "figure8",
                "case": case_id,
                "want": want_ordering,
                "have": have_ordering,
            }
        )
    for flow, want_metrics in (golden.get("metrics") or {}).items():
        have_metrics = (report.get("metrics") or {}).get(flow)
        if have_metrics is None:
            failures.append(
                {"kind": "golden", "case": case_id, "flow": flow,
                 "metric": "<flow missing>", "want": "present",
                 "have": "absent"}
            )
            continue
        for key in sorted(set(want_metrics) | set(have_metrics)):
            want = want_metrics.get(key)
            have = have_metrics.get(key)
            if want != have:
                failures.append(
                    {
                        "kind": "golden",
                        "case": case_id,
                        "flow": flow,
                        "metric": key,
                        "want": want,
                        "have": have,
                    }
                )
    return failures


def render_markdown(report: dict) -> str:
    """Render the run report as a markdown document."""
    lines = ["# repro compare report", ""]
    lines.append(f"- run dir: `{report['run_dir']}`")
    if report.get("goldens_dir"):
        lines.append(f"- goldens: `{report['goldens_dir']}`")
    lines.append(f"- status: **{report['status']}**")
    lines.append("")
    header = (
        "| case | flow | cell cov | io cov | pin-access DRCs | "
        "full DRCs (io) | opens | failed nets | WL | route s |"
    )
    lines.append(header)
    lines.append("|" + "---|" * 10)
    for case in report["cases"]:
        for flow in ("pao", "serve", "legacy"):
            record = case["flows"].get(flow)
            if record is None:
                lines.append(f"| {case['case']} | {flow} | missing |"
                             + " |" * 7)
                continue
            access = record["access"]
            routing = record["routing"]
            drc = record["drc"]
            lines.append(
                f"| {case['case']} | {flow} "
                f"| {access['cell_covered']}/{access['cell_terms']} "
                f"| {access['io_covered']}/{access['io_terms']} "
                f"| {drc['pin_access_total']} "
                f"| {drc['full_total']} ({drc['full_io_total']}) "
                f"| {routing['unconnected_terms']} "
                f"| {routing['failed_nets']} "
                f"| {routing['wirelength']} "
                f"| {record['route_s']:.2f} |"
            )
    lines.append("")
    ordered = [
        case for case in report["cases"] if case.get("ordering")
    ]
    if ordered:
        lines.append("## Figure 8 ordering")
        lines.append("")
        lines.append(
            "| case | legacy pin-access | PAO pin-access | ratio | ok |"
        )
        lines.append("|---|---|---|---|---|")
        for case in ordered:
            ordering = case["ordering"]
            ratio = (case.get("deltas") or {}).get(
                "pin_access_drc_ratio", ""
            )
            lines.append(
                f"| {case['case']} | {ordering['legacy_pin_access']} "
                f"| {ordering['pao_pin_access']} | {ratio} "
                f"| {'yes' if ordering['figure8_ok'] else 'no'} |"
            )
        lines.append("")
    if report["failures"]:
        lines.append("## Failures")
        lines.append("")
        for failure in report["failures"]:
            detail = {
                k: v
                for k, v in failure.items()
                if k not in ("kind", "case")
            }
            lines.append(
                f"- `{failure['case']}`: **{failure['kind']}** {detail}"
            )
        lines.append("")
    return "\n".join(lines)


def default_cases(names: list) -> list:
    """Parse CLI case arguments into :class:`CaseSpec` values."""
    return [parse_case(name) for name in names]
