"""Resumable comparator runs: (case, flow) points in isolated processes.

Same execution machinery posture as :mod:`repro.sweep.runner` (whose
atomic JSON/status helpers this module reuses): every (case, flow)
pair runs in its own worker process inside a run directory, with its
stdout/stderr in ``log.txt``, a terminal ``status.json`` and its flow
record in ``flow.json``.  Re-running the same directory re-executes
only pairs that are missing, failed, or whose fingerprint (case
parameters + flow) changed -- a finished pair is never re-run.

Layout::

    <run_dir>/run.json                    repro.compare.run/v1 summary
    <run_dir>/cases/<case>/<flow>/
        spec.json                         fingerprint for resume checks
        status.json                       running | done | failed | timeout
        flow.json                         repro.compare.flow/v1 record
        log.txt                           worker stdout/stderr
    <run_dir>/cases/<case>/report.json    repro.compare/v1 per-case report
    <run_dir>/envelopes/compare-<case>.json   repro.qa.bench/v1

The envelopes directory is `repro sweep report`-compatible: a flat
directory of bench envelopes, so the sweep trend tooling can consume
comparator runs unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass

from repro.compare.cases import CaseSpec
from repro.compare.flows import execute_flow
from repro.sweep.runner import _read_json, _write_json, _write_status

RUN_SCHEMA = "repro.compare.run/v1"


@dataclass(frozen=True)
class PlannedFlow:
    """One (case, flow) execution unit."""

    case: CaseSpec
    flow: str

    @property
    def key(self) -> str:
        return f"{self.case.case_id}/{self.flow}"

    @property
    def fingerprint(self) -> dict:
        return {
            "testcase": self.case.testcase,
            "scale": self.case.scale,
            "max_nets": self.case.max_nets,
            "flow": self.flow,
        }


def flow_dir(run_dir: str, pf: PlannedFlow) -> str:
    """Return the directory one (case, flow) pair executes in."""
    return os.path.join(run_dir, "cases", pf.case.case_id, pf.flow)


def case_dir(run_dir: str, case: CaseSpec) -> str:
    return os.path.join(run_dir, "cases", case.case_id)


def run_compare(
    cases,
    flows,
    run_dir: str,
    jobs: int = 1,
    flow_timeout_s: float = 1800.0,
    cache_dir: str = None,
    force: bool = False,
    out=print,
) -> dict:
    """Execute the case x flow matrix; return the run summary.

    ``force`` scrubs cached results first; otherwise finished pairs
    with matching fingerprints are reused (resumability).
    """
    os.makedirs(run_dir, exist_ok=True)
    if cache_dir is None:
        cache_dir = os.path.join(run_dir, "apcache")
    planned = [PlannedFlow(case, flow) for case in cases for flow in flows]
    cached, to_run = [], []
    for pf in planned:
        if not force and _is_cached(run_dir, pf):
            cached.append(pf)
            out(f"[cached] {pf.key}")
        else:
            _scrub_flow(run_dir, pf)
            to_run.append(pf)
    states = {pf.key: "cached" for pf in cached}
    states.update(
        _schedule(run_dir, to_run, jobs, flow_timeout_s, cache_dir, out)
    )

    from repro.compare.cases import FLOWS
    from repro.compare.report import case_report, flow_envelope

    case_states = {}
    for case in cases:
        # Aggregate every flow record present on disk, not just this
        # invocation's subset, so a partial re-run (e.g. --force on one
        # flow) never drops siblings from the per-case report.
        records = {}
        for flow in FLOWS:
            pf = PlannedFlow(case, flow)
            record = _read_json(
                os.path.join(flow_dir(run_dir, pf), "flow.json")
            )
            if record is not None:
                records[flow] = record
        wanted = [f for f in FLOWS if f in set(flows) | set(records)]
        wanted += [f for f in flows if f not in FLOWS]
        report = case_report(case, records, wanted_flows=wanted)
        _write_json(
            os.path.join(case_dir(run_dir, case), "report.json"), report
        )
        case_states[case.case_id] = report["complete"]
        if records:
            env_dir = os.path.join(run_dir, "envelopes")
            os.makedirs(env_dir, exist_ok=True)
            _write_json(
                os.path.join(
                    env_dir, f"compare-{case.case_id}.json"
                ),
                flow_envelope(case, records),
            )

    counts = {"done": 0, "cached": 0, "failed": 0, "timeout": 0}
    for state in states.values():
        counts[state] = counts.get(state, 0) + 1
    summary = {
        "schema": RUN_SCHEMA,
        "run_dir": os.path.abspath(run_dir),
        "cases": [case.case_id for case in cases],
        "flows": list(flows),
        "states": dict(sorted(states.items())),
        "complete_cases": case_states,
        "counts": counts,
        "finished_unix": round(time.time(), 3),
    }
    _write_json(os.path.join(run_dir, "run.json"), summary)
    return summary


# -- resume bookkeeping -------------------------------------------------------


def _is_cached(run_dir: str, pf: PlannedFlow) -> bool:
    directory = flow_dir(run_dir, pf)
    status = _read_json(os.path.join(directory, "status.json")) or {}
    if status.get("state") != "done":
        return False
    spec = _read_json(os.path.join(directory, "spec.json")) or {}
    if spec.get("fingerprint") != pf.fingerprint:
        return False
    return _read_json(os.path.join(directory, "flow.json")) is not None


def _scrub_flow(run_dir: str, pf: PlannedFlow) -> None:
    import shutil

    directory = flow_dir(run_dir, pf)
    if os.path.isdir(directory):
        shutil.rmtree(directory)
    os.makedirs(directory)
    _write_json(
        os.path.join(directory, "spec.json"),
        {"key": pf.key, "fingerprint": pf.fingerprint},
    )


# -- the per-flow worker ------------------------------------------------------


def _flow_main(run_dir: str, pf: PlannedFlow, cache_dir: str) -> int:
    directory = flow_dir(run_dir, pf)
    log_path = os.path.join(directory, "log.txt")
    with open(log_path, "a") as log:
        old_out, old_err = sys.stdout, sys.stderr
        sys.stdout = sys.stderr = log
        try:
            _write_status(
                directory,
                "running",
                pf.key,
                pid=os.getpid(),
                started_unix=round(time.time(), 3),
            )
            started = time.perf_counter()
            record = execute_flow(
                pf.case, pf.flow, cache_dir=cache_dir, work_dir=directory
            )
            wall_s = round(time.perf_counter() - started, 6)
            _write_json(os.path.join(directory, "flow.json"), record)
            _write_status(
                directory,
                "done",
                pf.key,
                wall_s=wall_s,
                finished_unix=round(time.time(), 3),
            )
            return 0
        except Exception as exc:
            traceback.print_exc(file=log)
            _write_status(
                directory,
                "failed",
                pf.key,
                error=f"{type(exc).__name__}: {exc}",
                finished_unix=round(time.time(), 3),
            )
            return 1
        finally:
            sys.stdout, sys.stderr = old_out, old_err


def _flow_entry(run_dir, pf, cache_dir):  # pragma: no cover
    sys.exit(_flow_main(run_dir, pf, cache_dir))


def _schedule(run_dir, to_run, workers, timeout_s, cache_dir, out) -> dict:
    """Run the pending pairs under a bounded process pool."""
    states = {}
    pending = deque(to_run)
    live = {}
    context = multiprocessing.get_context()
    while pending or live:
        while pending and len(live) < max(1, workers):
            pf = pending.popleft()
            try:
                process = context.Process(
                    target=_flow_entry,
                    args=(run_dir, pf, cache_dir),
                    name=f"compare-{pf.key}",
                )
                process.start()
            except OSError:
                # No process support: degrade to in-process execution
                # (no timeout enforcement), as the sweep runner does.
                code = _flow_main(run_dir, pf, cache_dir)
                states[pf.key] = _finalize(run_dir, pf, code, out)
                continue
            live[pf.key] = (pf, process, time.monotonic() + timeout_s)
        if not live:
            continue
        time.sleep(0.02)
        for key, (pf, process, deadline) in list(live.items()):
            if process.is_alive():
                if time.monotonic() < deadline:
                    continue
                process.terminate()
                process.join(5.0)
                if process.is_alive():  # pragma: no cover
                    process.kill()
                    process.join(5.0)
                _write_status(
                    flow_dir(run_dir, pf),
                    "timeout",
                    key,
                    error=f"flow exceeded {timeout_s:g}s",
                    finished_unix=round(time.time(), 3),
                )
                states[key] = "timeout"
                out(f"[timeout] {key}")
                del live[key]
                continue
            process.join()
            del live[key]
            states[key] = _finalize(run_dir, pf, process.exitcode, out)
    return states


def _finalize(run_dir: str, pf: PlannedFlow, exitcode: int, out) -> str:
    directory = flow_dir(run_dir, pf)
    status = _read_json(os.path.join(directory, "status.json")) or {}
    state = status.get("state")
    if state == "done" and exitcode == 0:
        out(f"[done] {pf.key} ({status.get('wall_s', 0):.2f}s)")
        return "done"
    if state != "failed":
        _write_status(
            directory,
            "failed",
            pf.key,
            error=f"worker exited with code {exitcode}",
            returncode=exitcode,
            finished_unix=round(time.time(), 3),
        )
    out(f"[failed] {pf.key} (exit {exitcode})")
    return "failed"
