"""The three access flows the comparator routes through.

Every flow produces the same two artifacts -- a cell-pin access map
``(instance, pin) -> AccessPoint`` and an IO-pin access map
``io_pin_name -> AccessPoint`` -- which then drive the *same*
detailed router over the *same* design.  The only experimental
variable is where the access answers came from:

* ``pao``    -- the in-process Pin Access Oracle: full PAAF Steps 1-3
  for cell pins, validated :class:`~repro.core.ioaccess.IoPinAccess`
  for IO pins.
* ``serve``  -- the same oracle behind the daemon: cell-pin answers
  are pulled over the ``repro.serve/v1`` wire via
  ``OracleClient.query_batch`` from a live ``OracleServer`` and
  reconstructed with :func:`~repro.serve.protocol.ap_from_wire`; the
  flow asserts the served map is bit-identical to an in-process
  reference before routing with it (IO pins are analyzed in process
  -- the wire protocol serves instance pins).
* ``legacy`` -- the Dr. CU / TritonRoute-v0-style baseline: on-track
  crossing points with a containment-only screen, for cell pins
  (:func:`~repro.route.drcu.drcu_access_map`) and -- IO parity with
  the oracle flows -- for IO pins
  (:func:`~repro.route.drcu.drcu_io_access_map`).

The flow record separates cell-pin access quality from IO coverage:
DRC totals are split into cell-attributed and IO-attributed counts
(by marker proximity to IO pin shapes), and coverage is counted per
terminal class, so the comparator's headline delta (Figure 8) is not
conflated with how many boundary pins a flow managed to reach.
"""

from __future__ import annotations

import os
import time
from collections import Counter

from repro.compare.cases import FLOWS, CaseSpec

SCHEMA_FLOW = "repro.compare.flow/v1"


class FlowError(RuntimeError):
    """A flow could not produce a routable access map."""


def execute_flow(
    case: CaseSpec,
    flow: str,
    cache_dir: str = None,
    work_dir: str = None,
) -> dict:
    """Build the case, run one access flow, route, score; return record."""
    if flow not in FLOWS:
        raise FlowError(f"unknown flow {flow!r} (expected one of {FLOWS})")
    design = case.build()
    if flow == "pao":
        amap, io_map, analyze_s, extra = _pao_maps(design, cache_dir)
    elif flow == "serve":
        amap, io_map, analyze_s, extra = _serve_maps(
            design, cache_dir, case.case_id, work_dir
        )
    else:
        amap, io_map, analyze_s, extra = _legacy_maps(design)
    record = _route_and_score(design, case, flow, amap, io_map, analyze_s)
    if extra:
        record["serve"] = extra
    return record


# -- access map construction --------------------------------------------------


def _paaf_config(cache_dir: str = None):
    from repro.core import PaafConfig

    return PaafConfig(cache_dir=cache_dir)


def _pao_maps(design, cache_dir):
    from repro.core import PinAccessFramework
    from repro.core.ioaccess import IoPinAccess

    config = _paaf_config(cache_dir)
    t0 = time.perf_counter()
    result = PinAccessFramework(design, config).run()
    amap = result.access_map()
    io_map = _select_io(IoPinAccess(design, config).run())
    return amap, io_map, time.perf_counter() - t0, None


def _serve_maps(design, cache_dir, case_id, work_dir):
    from repro.core import PinAccessFramework
    from repro.core.ioaccess import IoPinAccess
    from repro.serve.client import OracleClient
    from repro.serve.protocol import ap_from_wire, ap_to_wire
    from repro.serve.server import OracleServer
    from repro.serve.session import DesignSession

    config = _paaf_config(cache_dir)
    # In-process reference first: with a shared cache dir this also
    # warms the AP cache the daemon's session loads from.
    t0 = time.perf_counter()
    reference = PinAccessFramework(design, config).run().access_map()
    io_map = _select_io(IoPinAccess(design, config).run())
    analyze_s = time.perf_counter() - t0

    session = DesignSession(name=case_id, design=design, config=config)
    sock_dir = work_dir or "."
    sock = os.path.join(sock_dir, "oracle.sock")
    server = OracleServer(("unix", sock), sessions={case_id: session})
    server.start()
    try:
        pins = sorted(
            (inst.name, pin.name)
            for inst in design.instances.values()
            for pin in inst.master.signal_pins()
        )
        t1 = time.perf_counter()
        with OracleClient(f"unix:{sock}") as client:
            answers = client.query_batch(pins, design=case_id)
        batch_s = time.perf_counter() - t1
    finally:
        server.stop(drain=False)

    # Bit-identity: the wire's selected AP must round-trip to exactly
    # the in-process oracle's selection for every pin, accessible or
    # not.  This is the tentpole invariant -- the routed result that
    # follows is provably driven by daemon answers.
    amap = {}
    mismatches = []
    generations = set()
    for (inst, pin), answer in zip(pins, answers):
        generations.add(answer.get("generation"))
        ref = reference.get((inst, pin))
        if answer.get("accessible"):
            wire_ap = answer.get("selected")
            if ap_to_wire(ref) != wire_ap:
                mismatches.append(f"{inst}/{pin}")
            amap[(inst, pin)] = ap_from_wire(wire_ap)
        elif ref is not None:
            mismatches.append(f"{inst}/{pin}")
    extra = {
        "served_pins": len(pins),
        "generations": sorted(g for g in generations if g is not None),
        "query_batch_s": batch_s,
        "session_analyze_s": session.analyze_seconds,
        "wire_identical": not mismatches,
        "mismatches": mismatches[:20],
    }
    return amap, io_map, analyze_s, extra


def _legacy_maps(design):
    from repro.route.drcu import drcu_access_map, drcu_io_access_map

    t0 = time.perf_counter()
    amap = drcu_access_map(design)
    io_map = drcu_io_access_map(design)
    return amap, io_map, time.perf_counter() - t0, None


def _select_io(io_aps: dict) -> dict:
    """First validated AP per IO pin; uncovered pins stay absent."""
    return {name: aps[0] for name, aps in io_aps.items() if aps}


# -- routing and scoring ------------------------------------------------------


def _route_and_score(design, case, flow, amap, io_map, analyze_s) -> dict:
    from repro.route.router import DetailedRouter, count_route_drcs

    t0 = time.perf_counter()
    rr = DetailedRouter(design).route(
        dict(amap), max_nets=case.max_nets, io_access=io_map
    )
    route_s = time.perf_counter() - t0
    pin_access = count_route_drcs(design, rr, scope="pin-access")
    full = count_route_drcs(design, rr, scope="full")
    full_io, full_cell = _split_io_violations(design, full)

    cell_terms = sorted(
        {term for net in design.nets.values() for term in net.terms}
    )
    cell_covered = sum(
        1
        for term in cell_terms
        if amap.get(term) is not None and amap[term].has_via_access
    )
    io_terms = sorted(
        {name for net in design.nets.values() for name in net.io_pins}
    )
    io_covered = sum(1 for name in io_terms if name in io_map)

    stats = design.stats()
    return {
        "schema": SCHEMA_FLOW,
        "case": case.case_id,
        "flow": flow,
        "design": {
            "cells": stats.get("num_std_cells", 0),
            "macros": stats.get("num_macros", 0),
            "nets": stats.get("num_nets", 0),
            "io_pins": stats.get("num_io_pins", 0),
        },
        "analyze_s": analyze_s,
        "route_s": route_s,
        "access": {
            "cell_terms": len(cell_terms),
            "cell_covered": cell_covered,
            "io_terms": len(io_terms),
            "io_covered": io_covered,
        },
        "routing": {
            "routed_nets": rr.routed_nets,
            "failed_nets": len(rr.failed_nets),
            "unconnected_terms": rr.unconnected_terms,
            "wirelength": rr.total_wirelength,
            "wires": len(rr.wires),
            "vias": len(rr.vias),
        },
        "drc": {
            "pin_access_total": len(pin_access),
            "pin_access": _by_rule(pin_access),
            "full_total": len(full),
            "full": _by_rule(full),
            "full_io_total": len(full_io),
            "full_cell_total": len(full_cell),
        },
    }


def _by_rule(violations) -> dict:
    return dict(sorted(Counter(v.rule for v in violations).items()))


def _split_io_violations(design, violations):
    """Partition violations into IO-attributed and cell-attributed.

    A violation is IO-attributed when its marker lands within one
    pitch of an IO pin shape -- the geometric proxy that keeps IO
    coverage effects out of the cell-pin access score.
    """
    io_zones = []
    for io_pin in design.io_pins.values():
        pitch = design.tech.layer(io_pin.layer_name).pitch
        io_zones.append(io_pin.rect.bloated(pitch))
    io_hits, cell_hits = [], []
    for violation in violations:
        marker = violation.marker
        if any(marker.intersects(zone) for zone in io_zones):
            io_hits.append(violation)
        else:
            cell_hits.append(violation)
    return io_hits, cell_hits
