"""Setup shim for legacy editable installs (no network, no wheel pkg)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PAO: a pin access oracle for detailed routing (DAC 2020 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
