#!/usr/bin/env python3
"""Analyze pin access for a hand-built standard cell.

Shows the library as a downstream user would adopt it: define a
technology, a cell master with tricky pin shapes, a tiny placed
design, and inspect the access points and patterns PAAF produces --
including which coordinate types the ladder had to fall back to.
"""

from repro import (
    CellMaster,
    Design,
    Instance,
    MasterPin,
    Orientation,
    PinAccessFramework,
    Point,
    Rect,
    make_node,
)
from repro.core.coords import CoordType
from repro.db.master import PinUse
from repro.db.net import Net
from repro.db.tracks import TrackPattern
from repro.tech.layer import RoutingDirection


def build_cell() -> CellMaster:
    """A 5-site cell with three differently-shaped M1 pins."""
    master = CellMaster(name="CUSTOM_X1", width=700, height=1400)
    vss = MasterPin(name="VSS", use=PinUse.GROUND)
    vss.add_shape("M1", Rect(0, 0, 700, 140))
    master.add_pin(vss)
    vdd = MasterPin(name="VDD", use=PinUse.POWER)
    vdd.add_shape("M1", Rect(0, 1260, 700, 1400))
    master.add_pin(vdd)

    # A: vertical bar -- x access depends on where tracks fall.
    a = MasterPin(name="A")
    a.add_shape("M1", Rect(115, 400, 185, 900))
    master.add_pin(a)
    # B: short horizontal bar of exactly enclosure height -- only the
    # centered y position is min-step clean.
    b = MasterPin(name="B")
    b.add_shape("M1", Rect(270, 640, 480, 710))
    master.add_pin(b)
    # Z: L-shaped output pin.
    z = MasterPin(name="Z")
    z.add_shape("M1", Rect(525, 400, 595, 900))
    z.add_shape("M1", Rect(455, 400, 595, 470))
    master.add_pin(z)
    return master


def main() -> None:
    tech = make_node("N45")
    design = Design("custom", tech)
    master = build_cell()
    design.add_master(master)
    design.die_area = Rect(0, 0, 7000, 4200)
    for layer in tech.routing_layers():
        if layer.is_horizontal:
            design.add_track_pattern(
                TrackPattern(layer.name, RoutingDirection.HORIZONTAL,
                             70, layer.pitch, 40)
            )
        else:
            design.add_track_pattern(
                TrackPattern(layer.name, RoutingDirection.VERTICAL,
                             70, layer.pitch, 60)
            )
    left = design.add_instance(
        Instance("u_left", master, Point(1400, 1400), Orientation.R0)
    )
    right = design.add_instance(
        Instance("u_right", master, Point(2100, 1400), Orientation.R0)
    )
    for k, (inst, pin) in enumerate(
        [(left, "A"), (left, "B"), (left, "Z"), (right, "A"), (right, "Z")]
    ):
        net = Net(name=f"n{k}")
        net.add_term(inst.name, pin)
        design.add_net(net)

    result = PinAccessFramework(design).run()
    print(f"{result.num_unique_instances} unique instance(s) analyzed\n")
    for ua in result.unique_accesses:
        print(f"Unique instance {ua.unique_instance.master_name}:")
        for pin_name, aps in ua.aps_by_pin.items():
            print(f"  pin {pin_name}: {len(aps)} access points")
            for ap in aps:
                t0 = CoordType(ap.pref_type).name
                t1 = CoordType(ap.nonpref_type).name
                print(
                    f"    ({ap.x}, {ap.y}) pref={t0} nonpref={t1} "
                    f"via={ap.primary_via} planar={ap.planar_dirs}"
                )
        for idx, pattern in enumerate(ua.patterns):
            aps = {n: (a.x, a.y) for n, a in pattern.aps.items()}
            print(f"  pattern {idx}: cost={pattern.cost} {aps}")

    failed = result.failed_pins()
    print(f"\nFailed pins: {failed if failed else 'none'}")
    sel = result.selection.selection
    for name in ("u_left", "u_right"):
        chosen = {n: (a.x, a.y) for n, a in sel[name].access_points().items()}
        print(f"Selected access for {name}: {chosen}")


if __name__ == "__main__":
    main()
