#!/usr/bin/env python3
"""A tour of the paper's expository figures (Figures 1-7), re-derived.

Each section builds the minimal scenario behind one figure and shows
the framework reproducing its point: unique-instance signatures,
access points, the coordinate-type ladder with its min-step outcomes,
pin ordering, and the two DP graphs.
"""

from repro import (
    CellMaster,
    Design,
    Instance,
    MasterPin,
    Orientation,
    PinAccessFramework,
    Point,
    Rect,
    make_node,
    unique_instances,
)
from repro.core.patterngen import order_pins
from repro.core.signature import instance_signature
from repro.db.tracks import TrackPattern
from repro.drc import DrcEngine, ShapeContext
from repro.tech.layer import RoutingDirection


def figure1_unique_instances() -> None:
    """Same master + orientation, different track offsets (Figure 1)."""
    print("== Figure 1: unique instances ==")
    tech = make_node("N45")
    design = Design("fig1", tech)
    master = CellMaster(name="NAND_X1", width=560, height=1400)
    pin = MasterPin(name="A")
    pin.add_shape("M1", Rect(200, 600, 360, 700))
    master.add_pin(pin)
    design.add_master(master)
    # Tracks with a step that does not divide the placement offsets, so
    # the two instances land at different offsets to the track grid.
    design.add_track_pattern(
        TrackPattern(
            layer_name="M2",
            direction=RoutingDirection.VERTICAL,
            start=70,
            step=120,
            count=100,
        )
    )
    a = design.add_instance(
        Instance("u1", master, Point(0, 0), Orientation.R0)
    )
    b = design.add_instance(
        Instance("u2", master, Point(700, 0), Orientation.R0)
    )
    for inst in (a, b):
        print(f"  {inst.name}: signature {instance_signature(design, inst)}")
    uis = unique_instances(design)
    print(
        f"  -> {len(uis)} unique instances (same master, same orientation,"
        " different x offsets to the M2 tracks)"
    )


def figure3_coordinate_types() -> None:
    """The coordinate-type ladder and its min-step outcomes (Figure 3)."""
    print("\n== Figure 3: coordinate types vs min-step ==")
    tech = make_node("N45")
    engine = DrcEngine(tech)
    via = tech.primary_via_from("M1")
    # A horizontal pin bar slightly taller than the via enclosure, so
    # only some y positions land the enclosure cleanly.
    pin = Rect(0, 0, 500, 100)
    ctx = ShapeContext(bucket=1000)
    ctx.add("M1", pin, "net")
    cases = [
        ("on-track (protruding)", 80),
        ("half-track (protruding)", 15),
        ("shape-center", 50),
        ("enclosure-boundary", 35),
    ]
    for label, y in cases:
        violations = engine.check_via_placement(via, 250, y, "net", ctx)
        verdict = "DRC-clean" if not violations else (
            ", ".join(sorted({v.rule for v in violations}))
        )
        print(f"  y={y:3d} ({label:24s}): {verdict}")


def figure5_pin_ordering() -> None:
    """Pin ordering by x_avg + alpha * y_avg (Figure 5)."""
    print("\n== Figure 5: pin ordering ==")

    class _FakeAp:
        def __init__(self, x, y):
            self.x, self.y = x, y

    aps_by_pin = {
        "B": [_FakeAp(300, 900)],
        "A": [_FakeAp(100, 100)],
        "Z": [_FakeAp(900, 200)],
        "C": [_FakeAp(600, 500)],
    }
    for alpha in (0.0, 0.3, 2.0):
        print(f"  alpha={alpha}: {order_pins(aps_by_pin, alpha)}")
    print("  (the paper uses alpha=0.3: boundary pins stay the x extremes)")


def figures6_7_dp_graphs() -> None:
    """The Step 2 and Step 3 DP graphs (Figures 6 and 7)."""
    print("\n== Figures 6-7: DP graphs ==")
    from repro import build_testcase

    design = build_testcase("ispd18_test1", scale=0.005)
    framework = PinAccessFramework(design)
    result = framework.run()
    ua = max(result.unique_accesses, key=lambda u: len(u.aps_by_pin))
    groups = {
        pin: len(aps) for pin, aps in ua.aps_by_pin.items() if aps
    }
    print(
        f"  Step 2 graph for {ua.unique_instance.master_name}: "
        f"{len(groups)} pin groups with vertex counts {groups}"
    )
    print(
        f"  -> {len(ua.patterns)} access patterns generated "
        f"(costs {[p.cost for p in ua.patterns]})"
    )
    clusters = design.row_clusters()
    biggest = max(clusters, key=len)
    print(
        f"  Step 3: {len(clusters)} clusters; largest has "
        f"{len(biggest)} instances "
        f"({', '.join(i.master.name for i in biggest[:5])}...)"
    )


def main() -> None:
    figure1_unique_instances()
    figure3_coordinate_types()
    figure5_pin_ordering()
    figures6_7_dp_graphs()


if __name__ == "__main__":
    main()
