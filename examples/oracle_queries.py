#!/usr/bin/env python3
"""Using the library as its title suggests: a pin access *oracle*.

A router integration asks one question per pin: "where can I land?".
This example analyzes a design once, then serves oracle queries --
selected access point, fallback alternatives, coordinate types -- and
measures the query throughput a consumer would see.
"""

import sys
import time

from repro import PinAccessOracle, build_testcase
from repro.core.coords import CoordType


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    design = build_testcase("ispd18_test2", scale=scale)

    t0 = time.perf_counter()
    oracle = PinAccessOracle(design)
    print(
        f"analyzed {design.name} ({len(design.instances)} instances) "
        f"in {time.perf_counter() - t0:.2f}s; "
        f"{oracle.accessible_fraction():.0%} of pins accessible"
    )

    # Show a few answers in detail.
    shown = 0
    for inst, pin in design.connected_pins():
        answer = oracle.query(inst.name, pin.name)
        if shown < 3:
            t0_name = CoordType(answer.selected.pref_type).name
            t1_name = CoordType(answer.selected.nonpref_type).name
            print(
                f"  {inst.name}/{pin.name}: selected "
                f"({answer.selected.x}, {answer.selected.y}) "
                f"[{t0_name}/{t1_name}], "
                f"{len(answer.alternatives)} alternatives"
            )
            shown += 1

    # Throughput: how fast can a router hammer the oracle?
    pins = design.connected_pins()
    t0 = time.perf_counter()
    queries = 0
    while time.perf_counter() - t0 < 0.5:
        for inst, pin in pins:
            oracle.query(inst.name, pin.name)
            queries += 1
        if not pins:
            break
    elapsed = time.perf_counter() - t0
    print(f"oracle throughput: {queries / elapsed:,.0f} queries/s")


if __name__ == "__main__":
    main()
