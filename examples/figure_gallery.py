#!/usr/bin/env python3
"""Regenerate Figure 8 / Figure 9-style layout artifacts as SVG.

Writes to examples/output/:

* fig8_drcu.svg / fig8_paaf.svg -- a window of the routed
  ispd18_test5-like design with dashed DRC markers, Dr. CU-style vs
  PAAF access (paper Figure 8).
* fig9_access_14nm.svg -- standard-cell pin accesses at 14 nm with
  off-track access points (paper Figure 9).
"""

import pathlib
import sys

from repro import (
    DetailedRouter,
    PinAccessFramework,
    Rect,
    build_aes14,
    build_testcase,
    count_route_drcs,
)
from repro.route.drcu import drcu_access_map
from repro.viz import render_pin_access, render_routing

OUTPUT = pathlib.Path(__file__).parent / "output"


def fig8(scale: float) -> None:
    design = build_testcase("ispd18_test5", scale=scale)
    window = _center_window(design, fraction=0.4)

    for label, access in (
        ("drcu", drcu_access_map(design)),
        ("paaf", PinAccessFramework(design).run().access_map()),
    ):
        result = DetailedRouter(design).route(access)
        drcs = count_route_drcs(design, result, scope="pin-access")
        svg = render_routing(design, result, drcs, window=window)
        path = OUTPUT / f"fig8_{label}.svg"
        path.write_text(svg)
        print(f"{path}: {len(drcs)} pin-access DRC markers")


def fig9(scale: float) -> None:
    design = build_aes14(scale=scale)
    result = PinAccessFramework(design).run()
    window = _center_window(design, fraction=0.25)
    svg = render_pin_access(design, result.access_map(), window=window)
    path = OUTPUT / "fig9_access_14nm.svg"
    path.write_text(svg)
    print(f"{path}: pin access view written")


def _center_window(design, fraction: float) -> Rect:
    die = design.die_area
    w = max(1, int(die.width * fraction))
    h = max(1, int(die.height * fraction))
    cx, cy = die.center.as_tuple()
    return Rect(cx - w // 2, cy - h // 2, cx + w // 2, cy + h // 2)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.004
    OUTPUT.mkdir(exist_ok=True)
    fig8(scale)
    fig9(max(scale * 5, 0.01))


if __name__ == "__main__":
    main()
