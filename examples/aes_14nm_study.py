#!/usr/bin/env python3
"""The 14 nm preliminary study (paper Experiment 3, Figure 9).

Runs PAAF on the synthetic 14 nm AES-like testcase and shows that all
connected instance pins get DRC-clean access, including the off-track
accesses that Figure 9 highlights ("off-track pin access is enabled
automatically in PAAF").
"""

import sys
import time
from collections import Counter

from repro import PinAccessFramework, build_aes14, evaluate_failed_pins
from repro.core.coords import CoordType


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    design = build_aes14(scale=scale)
    stats = design.stats()
    print(
        f"AES 14nm-like testcase: {stats['num_std_cells']} instances, "
        f"{stats['num_nets']} nets"
    )

    t0 = time.perf_counter()
    result = PinAccessFramework(design).run()
    elapsed = time.perf_counter() - t0

    failed = evaluate_failed_pins(design, result.access_map())
    total_pins = len(design.connected_pins())
    print(
        f"{result.num_unique_instances} unique instances analyzed; "
        f"{total_pins} instance pins; {len(failed)} without DRC-clean "
        f"access; runtime {elapsed:.1f}s"
    )

    # Figure 9's point: at 14 nm, a large share of accesses are
    # off-track (shape-center / enclosure-boundary coordinates), found
    # automatically by the coordinate-type ladder.
    kinds = Counter()
    for (inst_name, pin_name), ap in result.access_map().items():
        on_track = (
            ap.pref_type is CoordType.ON_TRACK
            and ap.nonpref_type is CoordType.ON_TRACK
        )
        kinds["on-track" if on_track else "off-track"] += 1
    selected = sum(kinds.values())
    for kind in ("on-track", "off-track"):
        share = 100.0 * kinds[kind] / max(1, selected)
        print(f"  {kind} selected accesses: {kinds[kind]} ({share:.0f}%)")

    by_type = Counter()
    for ua in result.unique_accesses:
        for aps in ua.aps_by_pin.values():
            for ap in aps:
                by_type[(int(ap.pref_type), int(ap.nonpref_type))] += 1
    print("Access points by (preferred, non-preferred) coordinate type:")
    for (t0_, t1_), count in sorted(by_type.items()):
        print(f"  type ({t0_}, {t1_}): {count}")


if __name__ == "__main__":
    main()
