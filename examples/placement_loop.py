#!/usr/bin/env python3
"""Pin access inside a detailed placement optimization loop.

The paper motivates fast inter-cell analysis with exactly this loop
(Sec. IV): a placer nudges cells one at a time and needs fresh,
DRC-clean pin access after every move.  This example runs a toy
"spread the gaps" placement pass over a generated design, maintaining
pin access incrementally, and compares the accumulated analysis cost
against re-running the full framework per move.
"""

import sys
import time

from repro import PinAccessFramework, build_testcase, evaluate_failed_pins
from repro.core.incremental import IncrementalPinAccess
from repro.geom.point import Point


def movable_singletons(design):
    """Cells alone in their cluster (room to slide sideways)."""
    return [
        cluster[0]
        for cluster in design.row_clusters()
        if len(cluster) == 1 and not cluster[0].master.is_macro
    ]


def legal_target(design, inst, target):
    """A placer's legality check: inside the core, no overlap."""
    from repro.geom.rect import Rect

    width = inst.bbox.width
    height = inst.bbox.height
    new_bbox = Rect(target.x, target.y, target.x + width, target.y + height)
    if not design.die_area.contains_rect(new_bbox):
        return False
    for other in design.instances.values():
        if other.name != inst.name and new_bbox.overlaps(other.bbox):
            return False
    return True


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    design = build_testcase("ispd18_test5", scale=scale)
    print(f"{design.name}: {len(design.instances)} instances")

    incremental = IncrementalPinAccess(design)
    t0 = time.perf_counter()
    incremental.analyze()
    print(f"initial full analysis: {time.perf_counter() - t0:.2f}s")

    moves = movable_singletons(design)[:10]
    site_w = design.tech.site_width
    incremental_cost = 0.0
    performed = 0
    for step, inst in enumerate(moves, 1):
        dx = 6 * site_w if step % 2 else -6 * site_w
        target = Point(inst.location.x + dx, inst.location.y)
        if not legal_target(design, inst, target):
            target = Point(inst.location.x - dx, inst.location.y)
            if not legal_target(design, inst, target):
                continue
        performed += 1
        incremental.move_instance(inst.name, target)
        incremental_cost += incremental.last_update_seconds
        failed = evaluate_failed_pins(design, incremental.access_map())
        print(
            f"move {step}: {inst.name} -> {target}; "
            f"update {incremental.last_update_seconds * 1000:.0f} ms; "
            f"{len(failed)} failed pins"
        )

    t0 = time.perf_counter()
    PinAccessFramework(design).run()
    full_cost = time.perf_counter() - t0
    print(
        f"\nincremental total for {performed} moves: "
        f"{incremental_cost:.2f}s; one full re-analysis costs "
        f"{full_cost:.2f}s -> the naive loop would spend "
        f"{full_cost * max(1, performed):.1f}s"
    )


if __name__ == "__main__":
    main()
