#!/usr/bin/env python3
"""Experiment 3 / Figure 8: routed-design DRCs, Dr. CU-style vs PAAF.

Routes the same ispd18_test5-like design twice with an identical
router; only the pin access strategy differs.  The paper reports 755
DRCs for Dr. CU 2.0 and 2 for PAAF-integrated TritonRoute -- the shape
to observe here is the same orders-of-magnitude gap in pin-access
DRCs.
"""

import sys
from collections import Counter

from repro import (
    DetailedRouter,
    PinAccessFramework,
    build_testcase,
    count_route_drcs,
)
from repro.route.drcu import drcu_access_map


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    design = build_testcase("ispd18_test5", scale=scale)
    stats = design.stats()
    print(
        f"{stats['name']}: {stats['num_std_cells']} cells, "
        f"{stats['num_nets']} nets"
    )

    print("\n-- Dr. CU 2.0-style access (on-track, no rule-aware via) --")
    drcu_result = DetailedRouter(design).route(drcu_access_map(design))
    drcu_drcs = count_route_drcs(design, drcu_result, scope="pin-access")
    _report(drcu_result, drcu_drcs)

    print("\n-- PAAF access (this work) --")
    paaf = PinAccessFramework(design).run()
    pao_result = DetailedRouter(design).route(paaf.access_map())
    pao_drcs = count_route_drcs(design, pao_result, scope="pin-access")
    _report(pao_result, pao_drcs)

    ratio = len(drcu_drcs) / max(1, len(pao_drcs))
    print(
        f"\nPin-access DRCs: Dr. CU-style {len(drcu_drcs)} vs "
        f"PAAF {len(pao_drcs)} ({ratio:.0f}x reduction; the paper "
        f"reports 755 vs 2)"
    )


def _report(result, drcs) -> None:
    print(
        f"routed {result.routed_nets} nets "
        f"({len(result.failed_nets)} failed, "
        f"{result.unconnected_terms} unconnected terminals), "
        f"{len(result.wires)} wire shapes, {len(result.vias)} vias, "
        f"{result.runtime:.1f}s"
    )
    rules = Counter(v.rule for v in drcs)
    print(f"pin-access DRCs: {len(drcs)} {dict(rules)}")


if __name__ == "__main__":
    main()
