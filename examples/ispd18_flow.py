#!/usr/bin/env python3
"""The full LEF/DEF-driven flow on an ISPD-2018-like testcase.

This mirrors how the paper's framework is actually deployed: the
design arrives as LEF (technology + library) and DEF (placement +
nets) text, is parsed, analyzed, and the Experiment 1 / Experiment 2
metrics are reported per testcase.

Usage: python ispd18_flow.py [testcase] [scale]
"""

import sys
import time

from repro import (
    LegacyPinAccess,
    PaafConfig,
    PinAccessFramework,
    build_testcase,
    evaluate_failed_pins,
    parse_def,
    parse_lef,
    unique_instances,
    write_def,
    write_lef,
)
from repro.report import render_table2, render_table3, table2_row, table3_row


def main() -> None:
    testcase = sys.argv[1] if len(sys.argv) > 1 else "ispd18_test2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01

    # 1. Generate the testcase and round-trip it through LEF/DEF text,
    #    exactly as a contest run would consume it.
    generated = build_testcase(testcase, scale=scale)
    lef_text = write_lef(generated.tech, list(generated.masters.values()))
    def_text = write_def(generated)
    print(f"{testcase}: LEF {len(lef_text)} bytes, DEF {len(def_text)} bytes")

    tech, masters = parse_lef(lef_text, name=generated.tech.name)
    design = parse_def(def_text, tech, masters)
    print(f"Parsed {design}")

    # 2. Experiment 1: unique-instance access point quality.
    t0 = time.perf_counter()
    baseline = LegacyPinAccess(design)
    baseline_result = baseline.run()
    baseline_time = time.perf_counter() - t0

    framework = PinAccessFramework(design)
    paaf_result = framework.run_step1()

    print()
    print(
        render_table2(
            [
                table2_row(
                    design.name,
                    len(unique_instances(design)),
                    baseline_result.total_access_points,
                    paaf_result.total_access_points,
                    baseline_result.count_dirty_aps(),
                    paaf_result.count_dirty_aps(),
                    baseline_time,
                    paaf_result.timings["step1"],
                )
            ]
        )
    )

    # 3. Experiment 2: full-flow failed pins, with and without BCA.
    t0 = time.perf_counter()
    full = PinAccessFramework(design).run()
    bca_time = time.perf_counter() - t0
    bca_failed = evaluate_failed_pins(design, full.access_map())

    t0 = time.perf_counter()
    nobca = PinAccessFramework(design, PaafConfig().without_bca()).run()
    nobca_time = time.perf_counter() - t0
    nobca_failed = evaluate_failed_pins(design, nobca.access_map())

    baseline_failed = evaluate_failed_pins(
        design, baseline.access_map(baseline_result)
    )

    print()
    print(
        render_table3(
            [
                table3_row(
                    design.name,
                    len(design.connected_pins()),
                    len(baseline_failed),
                    len(nobca_failed),
                    len(bca_failed),
                    baseline_time,
                    nobca_time,
                    bca_time,
                )
            ]
        )
    )


if __name__ == "__main__":
    main()
