#!/usr/bin/env python3
"""Quickstart: run the pin access framework on a generated testcase.

Builds a scaled ispd18_test1-like design, runs the three-step PAAF
flow, and prints the headline numbers the paper reports: access points
generated (all DRC-clean) and pins left without a clean access point
(none, with boundary-conflict awareness on).
"""

from repro import (
    LegacyPinAccess,
    PinAccessFramework,
    build_testcase,
    evaluate_failed_pins,
)


def main() -> None:
    design = build_testcase("ispd18_test1", scale=0.01)
    stats = design.stats()
    print(
        f"Design {stats['name']}: {stats['num_std_cells']} std cells, "
        f"{stats['num_nets']} nets, node {stats['node']}"
    )

    framework = PinAccessFramework(design)
    result = framework.run()
    failed = evaluate_failed_pins(design, result.access_map())
    print(
        f"PAAF: {result.num_unique_instances} unique instances, "
        f"{result.total_access_points} access points "
        f"({result.count_dirty_aps()} dirty), "
        f"{len(failed)} failed pins, "
        f"{result.timings['total']:.2f}s"
    )

    baseline = LegacyPinAccess(design)
    baseline_result = baseline.run()
    baseline_failed = evaluate_failed_pins(
        design, baseline.access_map(baseline_result)
    )
    print(
        f"Legacy baseline: {baseline_result.total_access_points} access "
        f"points ({baseline_result.count_dirty_aps()} dirty), "
        f"{len(baseline_failed)} failed pins"
    )

    total = len(design.connected_pins())
    print(
        f"Summary: PAAF gives DRC-clean access to all {total} connected "
        f"pins; the legacy flow fails "
        f"{100.0 * len(baseline_failed) / total:.0f}% of them."
    )


if __name__ == "__main__":
    main()
