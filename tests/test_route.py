"""Unit and integration tests for the routing substrate."""

import pytest

from repro.bench import build_testcase
from repro.core import PinAccessFramework
from repro.route.astar import astar_route
from repro.route.drcu import drcu_access_map
from repro.route.grid import RoutingGrid
from repro.route.router import DetailedRouter, count_route_drcs

from tests.conftest import make_simple_design


@pytest.fixture(scope="module")
def routed_env():
    design = build_testcase("ispd18_test1", scale=0.005)
    access = PinAccessFramework(design).run().access_map()
    return design, access


@pytest.fixture
def grid(n45):
    design = make_simple_design(n45, num_instances=2)
    return RoutingGrid(design)


class TestRoutingGrid:
    def test_layers_default_m2_up(self, grid):
        assert [l.name for l in grid.layers] == ["M2", "M3", "M4", "M5", "M6"]
        assert grid.level_of("M3") == 1

    def test_coordinates_from_tracks(self, grid):
        assert grid.xs[0] == 70
        assert all(b - a == 140 for a, b in zip(grid.xs, grid.xs[1:]))

    def test_nearest_index(self, grid):
        i, j = grid.nearest_index(75, 140)
        assert grid.xs[i] == 70
        assert grid.ys[j] in (70, 210)

    def test_neighbors_follow_direction(self, grid):
        # M2 (level 0) is vertical: wire moves change j.
        node = (0, 5, 5)
        wire_moves = [
            n for n, kind in grid.neighbors(node) if kind == "wire"
        ]
        assert all(n[1] == 5 for n in wire_moves)
        # M3 (level 1) is horizontal: wire moves change i.
        node = (1, 5, 5)
        wire_moves = [
            n for n, kind in grid.neighbors(node) if kind == "wire"
        ]
        assert all(n[2] == 5 for n in wire_moves)

    def test_via_moves_present(self, grid):
        vias = [n for n, kind in grid.neighbors((1, 5, 5)) if kind == "via"]
        assert {(n[0]) for n in vias} == {0, 2}

    def test_occupancy(self, grid):
        path = [(0, 5, 5), (0, 5, 6), (1, 5, 6)]
        grid.occupy_path(path, "netA")
        assert grid.is_free((0, 5, 5), "netA")
        assert not grid.is_free((0, 5, 5), "netB")
        assert grid.is_free((0, 9, 9), "netB")

    def test_via_exclusion_bloats(self, grid):
        grid.occupy_path([(0, 5, 5), (1, 5, 5)], "netA")
        assert not grid.via_allowed((0, 6, 6), "netB")
        assert grid.via_allowed((0, 8, 8), "netB")


class TestAstar:
    def test_straight_route(self, grid):
        path = astar_route(grid, {(0, 5, 2)}, {(0, 5, 8)}, "n")
        assert path is not None
        assert path[0] == (0, 5, 2) and path[-1] == (0, 5, 8)
        assert len(path) == 7

    def test_bend_needs_layer_change(self, grid):
        path = astar_route(grid, {(0, 2, 2)}, {(0, 8, 2)}, "n")
        assert path is not None
        # Moving in x requires visiting a horizontal layer.
        assert any(node[0] == 1 for node in path)

    def test_blocked_path_detours(self, grid):
        # Wall across M2 column 5 except far above.
        for j in range(0, 15):
            grid.occupancy[(1, 5, j)] = "wall"
            grid.occupancy[(0, 5, j)] = "wall"
        path = astar_route(grid, {(0, 2, 2)}, {(0, 8, 2)}, "n")
        assert path is not None
        assert all(grid.is_free(n, "n") for n in path)

    def test_unreachable_returns_none(self, grid):
        # Enclose the target completely on all layers.
        target = (0, 5, 5)
        for l in range(grid.num_layers):
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    if (di, dj) != (0, 0):
                        grid.occupancy[(l, 5 + di, 5 + dj)] = "wall"
            grid.occupancy[(l, 5, 5)] = "n" if l == 0 else "wall"
        path = astar_route(grid, {(0, 2, 2)}, {target}, "n")
        assert path is None

    def test_bounds_respected(self, grid):
        path = astar_route(
            grid, {(0, 5, 2)}, {(0, 5, 8)}, "n", bounds=(5, 2, 5, 8)
        )
        assert path is not None
        assert all(5 == n[1] for n in path)


class TestRouter:
    def test_routes_most_nets(self, routed_env):
        design, access = routed_env
        result = DetailedRouter(design).route(access)
        assert result.routed_nets > 0.8 * len(design.nets)
        assert result.unconnected_terms == 0
        assert result.total_wirelength > 0

    def test_emits_pin_vias(self, routed_env):
        design, access = routed_env
        result = DetailedRouter(design).route(access)
        pin_vias = [v for v in result.vias if v[1].startswith("V12")]
        assert pin_vias

    def test_max_nets_limits_work(self, routed_env):
        design, access = routed_env
        result = DetailedRouter(design).route(access, max_nets=5)
        routed_net_names = {w[0] for w in result.wires}
        assert len(routed_net_names) <= 5


class TestExperiment3Shape:
    def test_pao_beats_drcu_by_an_order_of_magnitude(self, routed_env):
        design, access = routed_env
        pao = DetailedRouter(design).route(access)
        pao_drcs = count_route_drcs(design, pao, scope="pin-access")

        drcu = DetailedRouter(design).route(drcu_access_map(design))
        drcu_drcs = count_route_drcs(design, drcu, scope="pin-access")

        assert len(drcu_drcs) >= 10 * max(1, len(pao_drcs))

    def test_full_scope_superset(self, routed_env):
        design, access = routed_env
        result = DetailedRouter(design).route(access)
        pin = count_route_drcs(design, result, scope="pin-access")
        full = count_route_drcs(design, result, scope="full")
        assert len(full) >= len(pin)

    def test_bad_scope_rejected(self, routed_env):
        design, access = routed_env
        result = DetailedRouter(design).route(access, max_nets=1)
        with pytest.raises(ValueError):
            count_route_drcs(design, result, scope="everything")


@pytest.fixture(scope="module")
def small_env():
    """A tiny case for failure-path tests (fast to re-route)."""
    design = build_testcase("ispd18_test1", scale=0.002)
    access = PinAccessFramework(design).run().access_map()
    return design, access


class TestRouterFailurePaths:
    def test_fully_blocked_grid_connects_nothing(self, small_env):
        design, access = small_env
        grid = RoutingGrid(design)
        for l in range(len(grid.layers)):
            for i in range(len(grid.xs)):
                for j in range(len(grid.ys)):
                    grid.occupancy[(l, i, j)] = "__blocker__"
        result = DetailedRouter(design, grid).route(access)
        total_terms = sum(len(net.terms) for net in design.nets.values())
        assert result.routed_nets == 0
        assert result.wires == []
        assert result.unconnected_terms == total_terms

    def test_blocked_upper_layers_fail_nets(self, small_env):
        # Terminals can still enter on M2 (level 0), but with every
        # higher level foreign-occupied no i-changing move exists, so
        # cross-column nets must fail -- and be reported as failed,
        # not silently dropped.
        design, access = small_env
        grid = RoutingGrid(design)
        for l in range(1, len(grid.layers)):
            for i in range(len(grid.xs)):
                for j in range(len(grid.ys)):
                    grid.occupancy[(l, i, j)] = "__blocker__"
        result = DetailedRouter(design, grid).route(access)
        assert result.failed_nets
        assert result.routed_nets + len(result.failed_nets) <= len(
            design.nets
        )

    def test_empty_access_map_counts_every_terminal(self, small_env):
        design, _ = small_env
        result = DetailedRouter(design).route({})
        total_terms = sum(len(net.terms) for net in design.nets.values())
        assert result.unconnected_terms == total_terms
        assert result.routed_nets == 0
        assert result.vias == []

    def test_missing_terminal_is_counted_not_fatal(self, small_env):
        design, access = small_env
        baseline = DetailedRouter(design).route(access)
        assert baseline.unconnected_terms == 0
        partial = dict(access)
        victim = next(
            term
            for net in design.nets.values()
            if len(net.terms) >= 2
            for term in net.terms
            if term in partial
        )
        del partial[victim]
        result = DetailedRouter(design).route(partial)
        assert result.unconnected_terms == 1

    def test_max_nets_deterministic_across_runs(self, small_env):
        design, access = small_env
        first = DetailedRouter(design).route(access, max_nets=5)
        second = DetailedRouter(design).route(access, max_nets=5)
        assert first.wires == second.wires
        assert first.vias == second.vias
        assert first.total_wirelength == second.total_wirelength

    def test_wirelength_of_via_only_result_is_zero(self):
        from repro.route.router import RoutingResult

        result = RoutingResult(vias=[("n1", "V12_simple", 0, 0)])
        assert result.total_wirelength == 0
        assert result.wires == []

    def test_wirelength_counts_longest_side(self):
        from repro.geom.rect import Rect
        from repro.route.router import RoutingResult

        result = RoutingResult(
            wires=[("n1", "M2", Rect(0, 0, 70, 500))]
        )
        assert result.total_wirelength == 500


class TestIoAccessParity:
    @pytest.fixture(scope="class")
    def io_env(self):
        from repro.bench import build_case
        from repro.core.ioaccess import IoPinAccess

        design = build_case("pinzoo_io", scale=1.0)
        access = PinAccessFramework(design).run().access_map()
        io_aps = IoPinAccess(design).run()
        io_map = {name: aps[0] for name, aps in io_aps.items() if aps}
        return design, access, io_map

    def test_default_taps_io_at_center(self, io_env):
        design, access, _ = io_env
        result = DetailedRouter(design).route(access)
        assert result.unconnected_terms == 0

    def test_io_access_map_drives_tap_points(self, io_env):
        design, access, io_map = io_env
        assert io_map  # the oracle covers the off-grid IO pins
        result = DetailedRouter(design).route(access, io_access=io_map)
        assert result.unconnected_terms == 0
        assert result.routed_nets > 0

    def test_missing_io_entry_counts_as_open(self, io_env):
        design, access, _ = io_env
        io_terms = sum(
            len(net.io_pins) for net in design.nets.values()
        )
        assert io_terms > 0
        result = DetailedRouter(design).route(access, io_access={})
        assert result.unconnected_terms == io_terms

    def test_legacy_io_map_misses_offgrid_pins(self, io_env):
        from repro.route.drcu import drcu_io_access_map

        design, _, pao_io = io_env
        legacy_io = drcu_io_access_map(design)
        # The zoo's off-grid IO pins have no on-track crossing: the
        # naive strategy must cover strictly fewer pins than the
        # validated coordinate ladder.
        assert len(legacy_io) < len(pao_io)
