"""Unit tests for access pattern generation (Algorithms 2-3)."""

import pytest

from repro.core.apgen import AccessPoint
from repro.core.config import PaafConfig
from repro.core.coords import CoordType
from repro.core.patterngen import AccessPatternGenerator, order_pins
from repro.drc.engine import DrcEngine


def ap(x, y, cost_types=(0, 0), vias=("V12_P",)):
    return AccessPoint(
        x=x,
        y=y,
        layer_name="M1",
        pref_type=CoordType(cost_types[0]),
        nonpref_type=CoordType(cost_types[1]),
        valid_vias=list(vias),
        planar_dirs=[],
    )


class TestOrderPins:
    def test_orders_by_x_when_alpha_zero(self):
        aps = {
            "Z": [ap(900, 0)],
            "A": [ap(100, 0)],
            "B": [ap(500, 0)],
        }
        assert order_pins(aps, 0.0) == ["A", "B", "Z"]

    def test_alpha_weights_y(self):
        aps = {
            "A": [ap(100, 1000)],
            "B": [ap(150, 0)],
        }
        assert order_pins(aps, 0.0) == ["A", "B"]
        assert order_pins(aps, 0.3) == ["B", "A"]

    def test_averages_over_aps(self):
        aps = {
            "A": [ap(0, 0), ap(1000, 0)],  # avg 500
            "B": [ap(400, 0)],
        }
        assert order_pins(aps, 0.0) == ["B", "A"]

    def test_pins_without_aps_excluded(self):
        aps = {"A": [ap(0, 0)], "B": []}
        assert order_pins(aps, 0.3) == ["A"]


@pytest.fixture
def generator(n45):
    return AccessPatternGenerator(n45, DrcEngine(n45))


class TestPatternGeneration:
    def test_empty_input(self, generator):
        assert generator.generate({}) == []

    def test_single_pin_pattern(self, generator):
        patterns = generator.generate({"A": [ap(70, 210)]})
        assert len(patterns) == 1
        assert patterns[0].aps["A"].x == 70

    def test_conflicting_neighbors_avoided(self, generator):
        # Two pins whose closest AP pair conflicts (140 apart); each has
        # one safe alternative.  The best pattern must choose a
        # compatible combination.
        aps = {
            "A": [ap(0, 0), ap(-280, 0, cost_types=(1, 0))],
            "B": [ap(140, 0), ap(420, 0, cost_types=(1, 0))],
        }
        patterns = generator.generate(aps)
        best = patterns[0]
        dx = abs(best.aps["A"].x - best.aps["B"].x)
        assert dx >= 280
        assert best.is_clean

    def test_bca_diversifies_boundary_aps(self, n45):
        config = PaafConfig(patterns_per_unique_instance=3)
        generator = AccessPatternGenerator(n45, DrcEngine(n45), config)
        aps = {
            "A": [ap(0, 0), ap(0, 280), ap(0, 560)],
            "B": [ap(700, 0), ap(700, 280), ap(700, 560)],
        }
        patterns = generator.generate(aps)
        assert len(patterns) == 3
        boundary_choices = {
            (p.aps["A"].x, p.aps["A"].y) for p in patterns
        }
        assert len(boundary_choices) == 3  # all different

    def test_without_bca_single_pattern(self, n45):
        config = PaafConfig().without_bca()
        generator = AccessPatternGenerator(n45, DrcEngine(n45), config)
        aps = {
            "A": [ap(0, 0), ap(0, 280)],
            "B": [ap(700, 0), ap(700, 280)],
        }
        patterns = generator.generate(aps)
        assert len(patterns) == 1

    def test_duplicate_patterns_dropped(self, n45):
        # A single AP per pin: every iteration converges to the same
        # pattern, which must be emitted once.
        config = PaafConfig(patterns_per_unique_instance=3)
        generator = AccessPatternGenerator(n45, DrcEngine(n45), config)
        aps = {"A": [ap(0, 0)], "B": [ap(700, 0)]}
        patterns = generator.generate(aps)
        assert len(patterns) == 1

    def test_low_cost_aps_preferred(self, generator):
        aps = {
            "A": [ap(0, 0, cost_types=(2, 1)), ap(0, 280, cost_types=(0, 0))],
            "B": [ap(700, 0, cost_types=(0, 0))],
        }
        best = generator.generate(aps)[0]
        assert (best.aps["A"].x, best.aps["A"].y) == (0, 280)

    def test_validation_reports_nonneighbor_conflicts(self, n45):
        # Three pins ordered A, B, C where A and C conflict: the chain
        # DP with history should avoid it, but if it cannot (single
        # APs), validation must record the violation.
        generator = AccessPatternGenerator(n45, DrcEngine(n45))
        aps = {
            "A": [ap(0, 0)],
            "B": [ap(300, 600)],  # far in y: clean with both
            "C": [ap(140, 0)],  # conflicts with A
        }
        patterns = generator.generate(aps)
        assert patterns
        assert any(not p.is_clean for p in patterns)
        dirty = [p for p in patterns if not p.is_clean][0]
        pins_in_violations = {
            name for pa, pb, _ in dirty.violations for name in (pa, pb)
        }
        assert pins_in_violations == {"A", "C"}

    def test_planar_only_aps_always_compatible(self, generator):
        a = ap(0, 0, vias=())
        b = ap(10, 0, vias=())
        assert generator.aps_compatible(a, b)

    def test_pair_cache_symmetry(self, generator):
        a, b = ap(0, 0), ap(1000, 0)
        assert generator.aps_compatible(a, b)
        assert generator.aps_compatible(b, a)

    def test_pattern_signature(self, generator):
        patterns = generator.generate({"A": [ap(70, 210)]})
        sig = patterns[0].signature()
        assert sig == (("A", 70, 210, "V12_P"),)
