"""Unit tests for LEF/DEF writing and parsing."""

import pytest

from repro.bench import build_testcase
from repro.lefdef import parse_def, parse_lef, write_def, write_lef
from repro.lefdef.def_parser import DefParseError
from repro.lefdef.lef_parser import LefParseError

from tests.conftest import make_simple_design, make_simple_master


@pytest.fixture(scope="module")
def suite_design():
    return build_testcase("ispd18_test1", scale=0.005)


class TestLefRoundtrip:
    def test_technology_scalars(self, n45):
        tech2, _ = parse_lef(write_lef(n45), name="N45")
        assert tech2.dbu_per_micron == n45.dbu_per_micron
        assert tech2.site_width == n45.site_width
        assert tech2.site_height == n45.site_height
        assert tech2.manufacturing_grid == n45.manufacturing_grid

    def test_layers_roundtrip(self, n45):
        tech2, _ = parse_lef(write_lef(n45), name="N45")
        assert [l.name for l in tech2.layers] == [l.name for l in n45.layers]
        for orig, back in zip(n45.layers, tech2.layers):
            assert back.kind == orig.kind
            if orig.is_routing:
                assert back.direction == orig.direction
                assert back.pitch == orig.pitch
                assert back.width == orig.width
                assert back.offset == orig.offset
                assert back.eol == orig.eol
                assert back.min_step == orig.min_step
                assert back.min_area == orig.min_area
                assert (
                    back.spacing_table.prl_values
                    == orig.spacing_table.prl_values
                )
                assert (
                    back.spacing_table.width_rows
                    == orig.spacing_table.width_rows
                )
            else:
                assert back.cut_spacing == orig.cut_spacing

    def test_vias_roundtrip(self, n45):
        tech2, _ = parse_lef(write_lef(n45), name="N45")
        assert [v.name for v in tech2.vias] == [v.name for v in n45.vias]
        for orig, back in zip(n45.vias, tech2.vias):
            assert back.bottom_enc == orig.bottom_enc
            assert back.cut == orig.cut
            assert back.top_enc == orig.top_enc

    def test_masters_roundtrip(self, n45):
        master = make_simple_master()
        _, masters = parse_lef(write_lef(n45, [master]), name="N45")
        assert len(masters) == 1
        back = masters[0]
        assert back.name == master.name
        assert (back.width, back.height) == (master.width, master.height)
        assert [p.name for p in back.pins] == [p.name for p in master.pins]
        for orig_pin, back_pin in zip(master.pins, back.pins):
            assert back_pin.use == orig_pin.use
            assert back_pin.shapes == orig_pin.shapes

    def test_macro_class_roundtrip(self, n45, suite_design):
        masters = list(suite_design.masters.values())
        _, back = parse_lef(write_lef(n45, masters), name="N45")
        macro_flags = {m.name: m.is_macro for m in back}
        for master in masters:
            assert macro_flags[master.name] == master.is_macro

    def test_obstructions_roundtrip(self, n45, suite_design):
        masters = [
            m for m in suite_design.masters.values() if m.obstructions
        ]
        assert masters, "suite should include an OBS-bearing macro"
        _, back = parse_lef(write_lef(n45, masters), name="N45")
        for orig, parsed in zip(masters, back):
            assert len(parsed.obstructions) == len(orig.obstructions)
            assert parsed.obstructions[0].rect == orig.obstructions[0].rect

    def test_malformed_lef_raises(self):
        with pytest.raises(LefParseError):
            parse_lef("LAYER M1\n TYPE ROUTING ;")  # missing END


class TestDefRoundtrip:
    def roundtrip(self, design):
        lef = write_lef(design.tech, list(design.masters.values()))
        tech, masters = parse_lef(lef, name=design.tech.name)
        return parse_def(write_def(design), tech, masters)

    def test_stats_preserved(self, suite_design):
        back = self.roundtrip(suite_design)
        assert back.stats() == suite_design.stats()

    def test_placements_preserved(self, suite_design):
        back = self.roundtrip(suite_design)
        for name, inst in suite_design.instances.items():
            got = back.instance(name)
            assert got.location == inst.location
            assert got.orient == inst.orient
            assert got.master.name == inst.master.name

    def test_tracks_preserved(self, suite_design):
        back = self.roundtrip(suite_design)
        assert back.track_patterns == suite_design.track_patterns

    def test_nets_preserved(self, suite_design):
        back = self.roundtrip(suite_design)
        assert set(back.nets) == set(suite_design.nets)
        for name, net in suite_design.nets.items():
            assert back.nets[name].terms == net.terms
            assert back.nets[name].io_pins == net.io_pins

    def test_rows_preserved(self, n45):
        design = make_simple_design(n45)
        from repro.db.design import Row
        from repro.geom.point import Point
        from repro.geom.transform import Orientation

        design.add_row(
            Row(
                name="row_0",
                origin=Point(0, 1400),
                orient=Orientation.MX,
                count=50,
                site_width=140,
                site_height=1400,
            )
        )
        back = self.roundtrip(design)
        assert len(back.rows) == 1
        assert back.rows[0].origin == Point(0, 1400)
        assert back.rows[0].orient is Orientation.MX

    def test_unknown_master_raises(self, n45, suite_design):
        def_text = write_def(suite_design)
        with pytest.raises(DefParseError):
            parse_def(def_text, n45, [])

    def test_dbu_mismatch_raises(self, suite_design):
        import dataclasses

        from repro.tech.technology import Technology

        other = Technology(name="x", dbu_per_micron=2000)
        with pytest.raises(DefParseError):
            parse_def(write_def(suite_design), other, [])
