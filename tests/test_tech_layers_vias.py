"""Unit tests for layers, vias and the technology container."""

import pytest

from repro.geom.rect import Rect
from repro.tech.layer import Layer, LayerKind, RoutingDirection
from repro.tech.rules import SpacingTable
from repro.tech.technology import Technology
from repro.tech.via import ViaDef


class TestLayer:
    def test_kind_predicates(self):
        routing = Layer(name="M1", kind=LayerKind.ROUTING)
        cut = Layer(name="V12", kind=LayerKind.CUT)
        assert routing.is_routing and not routing.is_cut
        assert cut.is_cut and not cut.is_routing

    def test_direction_predicates(self):
        layer = Layer(
            name="M1",
            kind=LayerKind.ROUTING,
            direction=RoutingDirection.HORIZONTAL,
        )
        assert layer.is_horizontal and not layer.is_vertical
        assert layer.direction.other is RoutingDirection.VERTICAL

    def test_min_spacing_defaults_zero(self):
        assert Layer(name="M1", kind=LayerKind.ROUTING).min_spacing == 0

    def test_min_spacing_from_table(self):
        layer = Layer(
            name="M1",
            kind=LayerKind.ROUTING,
            spacing_table=SpacingTable.simple(70),
        )
        assert layer.min_spacing == 70

    def test_max_rule_distance_considers_all_rules(self, n45):
        m1 = n45.layer("M1")
        assert m1.max_rule_distance >= m1.spacing_table.max_spacing
        assert m1.max_rule_distance >= m1.eol.eol_space + m1.eol.eol_within


class TestViaDef:
    def test_enclosures_must_contain_cut(self):
        cut = Rect(-35, -35, 35, 35)
        with pytest.raises(ValueError):
            ViaDef(
                name="bad",
                bottom_layer="M1",
                cut_layer="V12",
                top_layer="M2",
                bottom_enc=Rect(-10, -10, 10, 10),
                cut=cut,
                top_enc=cut,
            )

    def test_symmetric_constructor(self):
        via = ViaDef.symmetric(
            "v", "M1", "V12", "M2",
            cut_size=70,
            bottom_overhang_x=35, bottom_overhang_y=0,
            top_overhang_x=0, top_overhang_y=35,
        )
        assert via.bottom_enc == Rect(-70, -35, 70, 35)
        assert via.top_enc == Rect(-35, -70, 35, 70)
        assert via.cut.width == 70

    def test_placement_helpers(self):
        via = ViaDef.symmetric(
            "v", "M1", "V12", "M2", 70, 35, 0, 0, 35
        )
        assert via.bottom_at(100, 200) == Rect(30, 165, 170, 235)
        assert via.cut_at(100, 200).center.as_tuple() == (100, 200)


class TestTechnology:
    def test_layer_lookup(self, n45):
        assert n45.layer("M1").name == "M1"
        with pytest.raises(KeyError):
            n45.layer("M99")
        assert n45.has_layer("V12") and not n45.has_layer("V99")

    def test_duplicate_layer_rejected(self):
        tech = Technology(name="t")
        tech.add_layer(Layer(name="M1", kind=LayerKind.ROUTING))
        with pytest.raises(ValueError):
            tech.add_layer(Layer(name="M1", kind=LayerKind.ROUTING))

    def test_via_referencing_unknown_layer_rejected(self):
        tech = Technology(name="t")
        with pytest.raises(ValueError):
            tech.add_via(
                ViaDef.symmetric("v", "M1", "V12", "M2", 10, 5, 5, 5, 5)
            )

    def test_stack_navigation(self, n45):
        m1 = n45.layer("M1")
        v12 = n45.layer_above(m1)
        assert v12.name == "V12"
        assert n45.routing_layer_above(m1).name == "M2"
        assert n45.layer_below(m1) is None
        top = n45.layer("M9")
        assert n45.layer_above(top) is None
        assert n45.routing_layer_above(top) is None

    def test_primary_via_is_first_registered(self, n45):
        assert n45.primary_via_from("M1").name == "V12_P"
        assert [v.name for v in n45.vias_from("M1")] == ["V12_P", "V12_S"]

    def test_primary_via_missing(self, n45):
        with pytest.raises(KeyError):
            n45.primary_via_from("M9")

    def test_unit_conversion(self, n45):
        assert n45.microns(1500) == 1.5
        assert n45.dbu(1.5) == 1500

    def test_layer_indices_monotonic(self, n45):
        indices = [l.index for l in n45.layers]
        assert indices == sorted(indices)
        assert indices[0] == 0


class TestNodePresets:
    @pytest.mark.parametrize("node", ["N45", "N32", "N14"])
    def test_nine_routing_layers(self, node):
        from repro.tech.nodes import make_node

        tech = make_node(node)
        assert len(tech.routing_layers()) == 9
        assert len(tech.cut_layers()) == 8
        assert len(tech.vias) == 16  # two variants per cut layer

    def test_unknown_node(self):
        from repro.tech.nodes import make_node

        with pytest.raises(ValueError):
            make_node("N7")

    def test_alternating_directions(self, n45):
        dirs = [l.direction for l in n45.routing_layers()]
        for a, b in zip(dirs, dirs[1:]):
            assert a is not b

    def test_m1_horizontal(self, n45, n32, n14):
        for tech in (n45, n32, n14):
            assert tech.layer("M1").is_horizontal

    def test_dimension_ordering_across_nodes(self, n45, n32, n14):
        # Finer nodes have smaller pitch and width.
        assert n45.layer("M1").pitch > n32.layer("M1").pitch > n14.layer("M1").pitch
        assert n45.layer("M1").width > n32.layer("M1").width > n14.layer("M1").width

    def test_site_height_is_track_multiple(self, n45, n32, n14):
        for tech in (n45, n32, n14):
            assert tech.site_height % tech.layer("M1").pitch == 0

    def test_upper_layers_wider(self, n45):
        assert n45.layer("M9").width > n45.layer("M1").width
