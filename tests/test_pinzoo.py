"""The adversarial pin zoo: generation and access behavior."""

import pytest

from repro.bench import PINZOO_CASES, build_case, build_pinzoo
from repro.core import PinAccessFramework
from repro.route.drcu import drcu_access_map


class TestGeneration:
    @pytest.mark.parametrize("name", PINZOO_CASES)
    def test_deterministic(self, name):
        first = build_pinzoo(name)
        second = build_pinzoo(name)
        assert first.stats() == second.stats()
        assert sorted(first.instances) == sorted(second.instances)
        assert sorted(first.nets) == sorted(second.nets)

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            build_pinzoo("pinzoo_nonsense")

    def test_build_case_dispatches_zoo(self):
        design = build_case("pinzoo_sram", scale=1.0)
        assert design.name == "pinzoo_sram"

    def test_build_case_still_dispatches_suite(self):
        design = build_case("ispd18_test1", scale=0.002)
        assert design.name == "ispd18_test1"

    def test_scale_multiplies_population(self):
        small = build_pinzoo("pinzoo_hostile", scale=1.0)
        big = build_pinzoo("pinzoo_hostile", scale=2.0)
        assert (
            big.stats()["num_std_cells"] > small.stats()["num_std_cells"]
        )


class TestSramFamily:
    @pytest.fixture(scope="class")
    def sram(self):
        return build_pinzoo("pinzoo_sram")

    def test_has_macro_with_upper_metal_pins(self, sram):
        macros = [
            inst
            for inst in sram.instances.values()
            if inst.master.is_macro
        ]
        assert macros
        layers = {
            layer
            for pin in macros[0].master.signal_pins()
            for layer in pin.shapes
        }
        assert {"M3", "M4"} <= layers

    def test_macro_pins_span_multiple_tracks(self, sram):
        m3 = sram.tech.layer("M3")
        macro = next(
            inst.master
            for inst in sram.instances.values()
            if inst.master.is_macro
        )
        spans = [
            rect.height
            for pin in macro.signal_pins()
            for rect in pin.shapes.get("M3", ())
        ]
        assert spans and all(span >= 3 * m3.pitch for span in spans)

    def test_oracle_covers_macro_pins_cleanly(self, sram):
        from repro.route.router import DetailedRouter, count_route_drcs

        access = PinAccessFramework(sram).run().access_map()
        result = DetailedRouter(sram).route(dict(access))
        assert count_route_drcs(sram, result, scope="pin-access") == []


class TestIoFamily:
    @pytest.fixture(scope="class")
    def io_design(self):
        return build_pinzoo("pinzoo_io")

    def test_io_pins_on_all_four_edges(self, io_design):
        die = io_design.die_area
        edges = set()
        for pin in io_design.io_pins.values():
            rect = pin.rect
            if rect.xlo == die.xlo:
                edges.add("left")
            if rect.xhi == die.xhi:
                edges.add("right")
            if rect.ylo == die.ylo:
                edges.add("bottom")
            if rect.yhi == die.yhi:
                edges.add("top")
        assert edges == {"left", "right", "bottom", "top"}

    def test_every_io_pin_is_on_a_net(self, io_design):
        attached = {
            name
            for net in io_design.nets.values()
            for name in net.io_pins
        }
        assert attached == set(io_design.io_pins)

    def test_offgrid_centers_miss_tracks(self, io_design):
        # At least some IO pin centers sit off every track of their
        # layer -- the property that starves on-track-only access.
        from repro.core.coords import track_patterns_for_axis

        off_grid = 0
        for pin in io_design.io_pins.values():
            layer = io_design.tech.layer(pin.layer_name)
            axis = "y" if layer.is_horizontal else "x"
            patterns = track_patterns_for_axis(
                io_design, io_design.tech, layer, axis
            )
            center = pin.rect.center
            coord = center.y if axis == "y" else center.x
            span_lo, span_hi = coord - 1, coord + 1
            on_track = any(
                coord in p.coords_in(span_lo, span_hi) for p in patterns
            )
            if not on_track:
                off_grid += 1
        assert off_grid > 0


class TestHostileFamily:
    @pytest.fixture(scope="class")
    def hostile(self):
        return build_pinzoo("pinzoo_hostile")

    def test_covered_pin_fails_validation(self, hostile):
        result = PinAccessFramework(hostile).run()
        covered = [
            (inst.name, "A")
            for inst in hostile.instances.values()
            if inst.master.name == "HOSTILE_COVERED"
        ]
        assert covered
        access = result.access_map()
        assert all(term not in access for term in covered)

    def test_legacy_screen_accepts_covered_pin(self, hostile):
        access = drcu_access_map(hostile)
        covered = [
            (inst.name, "A")
            for inst in hostile.instances.values()
            if inst.master.name == "HOSTILE_COVERED"
        ]
        assert any(term in access for term in covered)

    def test_sliver_pin_has_few_access_points(self, hostile):
        # The half-pitch sliver shape must starve the AP generator
        # relative to the friendly full-width output pin on the same
        # master, while still staying accessible.
        result = PinAccessFramework(hostile).run()
        checked = 0
        for ua in result.unique_accesses:
            if ua.unique_instance.master_name != "HOSTILE_SLIVER":
                continue
            sliver = ua.aps_by_pin.get("A", [])
            friendly = ua.aps_by_pin.get("ZN", [])
            assert sliver
            assert len(sliver) < len(friendly)
            checked += 1
        assert checked
