"""Properties of the routing substrate: geometry and cost invariants."""

import pytest

from repro.route.astar import WIRE_COST, VIA_COST, astar_route
from repro.route.grid import RoutingGrid, _nearest

from tests.conftest import make_simple_design


@pytest.fixture
def grid(n45):
    return RoutingGrid(make_simple_design(n45, num_instances=2))


class TestNearest:
    def test_exact_hit(self):
        assert _nearest([0, 10, 20], 10) == 1

    def test_midpoint_prefers_lower(self):
        # Tie at exactly halfway: the lower index wins (deterministic).
        assert _nearest([0, 10], 5) == 0

    def test_clamping(self):
        assert _nearest([0, 10, 20], -100) == 0
        assert _nearest([0, 10, 20], 100) == 2


class TestPathInvariants:
    def path(self, grid, a, b):
        return astar_route(grid, {a}, {b}, "n")

    def test_path_is_connected_neighbor_chain(self, grid):
        path = self.path(grid, (0, 2, 2), (2, 8, 9))
        assert path is not None
        for a, b in zip(path, path[1:]):
            diffs = [abs(x - y) for x, y in zip(a, b)]
            assert sum(diffs) == 1  # exactly one coordinate by one step
            neighbors = [n for n, _ in grid.neighbors(a)]
            assert b in neighbors

    def test_path_has_no_repeats(self, grid):
        path = self.path(grid, (0, 2, 2), (1, 9, 3))
        assert len(set(path)) == len(path)

    def test_straight_line_is_optimal(self, grid):
        path = self.path(grid, (0, 5, 0), (0, 5, 9))
        assert len(path) == 10  # no detour on a free grid

    def test_obstacles_never_on_path(self, grid):
        for j in range(3, 8):
            grid.occupancy[(0, 5, j)] = "wall"
            grid.occupancy[(1, 5, j)] = "wall"
        path = self.path(grid, (0, 5, 0), (0, 5, 9))
        assert path is not None
        for node in path:
            assert grid.occupancy.get(node) in (None, "n")

    def test_cost_constants_ordering(self):
        # Vias must cost more than wires or the router zig-zags layers.
        assert VIA_COST > WIRE_COST


class TestSourceTargetSets:
    def test_multi_source_picks_nearest(self, grid):
        sources = {(0, 2, 2), (0, 8, 8)}
        path = astar_route(grid, sources, {(0, 8, 9)}, "n")
        assert path[0] == (0, 8, 8)

    def test_empty_sets(self, grid):
        assert astar_route(grid, set(), {(0, 1, 1)}, "n") is None
        assert astar_route(grid, {(0, 1, 1)}, set(), "n") is None

    def test_source_equals_target(self, grid):
        path = astar_route(grid, {(0, 3, 3)}, {(0, 3, 3)}, "n")
        assert path == [(0, 3, 3)]
