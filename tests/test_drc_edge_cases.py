"""DRC engine edge cases: degenerate geometry, stacked contexts."""

import pytest

from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine
from repro.drc.spacing import check_metal_spacing
from repro.geom.rect import Rect


@pytest.fixture
def engine(n45):
    return DrcEngine(n45)


class TestDegenerateGeometry:
    def test_touching_same_net_shapes_merge(self, engine, n45):
        # Two abutting same-net rects: no short, no spacing issue.
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 100, 70), "a")
        out = engine.check_metal_rect(
            "M1", Rect(100, 0, 200, 70), "a", ctx
        )
        assert out == []

    def test_touching_foreign_shapes_violate(self, engine):
        # Abutting foreign rects share no area (no short) but have
        # zero gap: a spacing violation, plus each side's line-end EOL
        # triggers against the other.
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 100, 70), "b")
        out = engine.check_metal_rect(
            "M1", Rect(100, 0, 200, 70), "a", ctx
        )
        rules = sorted(v.rule for v in out)
        assert rules == ["eol-spacing", "eol-spacing", "metal-spacing"]

    def test_identical_foreign_rect_is_short(self, engine):
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 100, 70), "b")
        out = engine.check_metal_rect("M1", Rect(0, 0, 100, 70), "a", ctx)
        assert any(v.rule == "metal-short" for v in out)

    def test_empty_context_always_clean(self, engine):
        ctx = ShapeContext(bucket=1000)
        assert engine.check_metal_rect(
            "M1", Rect(0, 0, 100, 70), "a", ctx
        ) == []

    def test_multiple_violations_all_reported(self, engine):
        ctx = ShapeContext(bucket=1000)
        # Foreign shapes on both sides, both too close.
        ctx.add("M1", Rect(-200, 0, -31, 70), "b")
        ctx.add("M1", Rect(131, 0, 300, 70), "c")
        out = engine.check_metal_rect("M1", Rect(0, 0, 100, 70), "a", ctx)
        spacing = [v for v in out if v.rule == "metal-spacing"]
        assert len(spacing) == 2


class TestViaPlacementEdges:
    def test_via_on_cell_edge_vs_obstruction(self, engine, n45):
        via = n45.primary_via_from("M1")
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 500, 140), "net")
        # An obstruction above, exactly at min spacing from enclosure:
        # enclosure top at y=105 when dropped at y=70.
        ctx.add("M1", Rect(0, 175, 500, 400), None)
        out = engine.check_via_placement(via, 250, 70, "net", ctx)
        assert out == []
        ctx.add("M1", Rect(0, 170, 500, 174), None)
        out = engine.check_via_placement(via, 250, 70, "net", ctx)
        assert any(v.rule == "metal-spacing" for v in out)

    def test_secondary_via_differs_from_primary(self, engine, n45):
        # On a narrow vertical pin the primary (wide) enclosure
        # protrudes sideways at exactly min-step length (clean), while
        # the square secondary enclosure protrudes less -- dirty.
        primary = n45.via("V12_P")
        secondary = n45.via("V12_S")
        ctx = ShapeContext(bucket=1000)
        pin = Rect(0, 0, 70, 500)  # vbar
        ctx.add("M1", pin, "net")
        out_p = engine.check_via_placement(primary, 35, 250, "net", ctx)
        out_s = engine.check_via_placement(secondary, 35, 250, "net", ctx)
        assert out_p == []
        assert any(v.rule == "min-step" for v in out_s)


class TestContextSemantics:
    def test_query_window_respects_layers(self):
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 10, 10), "a")
        assert ctx.query("M2", Rect(0, 0, 10, 10)) == []

    def test_tuple_net_keys(self, engine):
        ctx = ShapeContext(bucket=1000)
        ctx.add("M1", Rect(0, 0, 100, 70), ("inst", "pin"))
        assert (
            engine.check_metal_rect(
                "M1", Rect(50, 0, 150, 70), ("inst", "pin"), ctx
            )
            == []
        )
        out = engine.check_metal_rect(
            "M1", Rect(50, 0, 150, 70), ("inst", "other"), ctx
        )
        assert any(v.rule == "metal-short" for v in out)

    def test_prl_uses_wider_shape(self, n45):
        # A narrow target near a wide aggressor with a long run still
        # picks the wide-row spacing.
        m1 = n45.layer("M1")
        ctx = ShapeContext(bucket=2000)
        ctx.add("M1", Rect(0, 0, 2000, 300), "b")  # wide shape
        narrow = Rect(0, 400, 2000, 470)  # gap 100
        out = check_metal_spacing(m1, narrow, "a", ctx)
        assert [v.rule for v in out] == ["metal-spacing"]
