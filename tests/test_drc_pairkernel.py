"""Equivalence tests: the pair kernel versus the DrcEngine oracle.

The kernel's whole claim is term-by-term equivalence with
``DrcEngine.check_via_pair`` for every via combination and every
displacement.  This suite sweeps that claim property-style: for each
ordered via pair of each node preset (including ``same_net=True``) it
probes a deterministic boundary-critical displacement set derived from
the table's quick-reject window -- corners, edges, center, just inside
and just outside -- plus seeded random displacements, and demands the
table verdict match the engine exactly.

Set ``REPRO_PAIRKERNEL_SWEEP`` to raise the random probe count per
combination (CI uses a larger value than the local default).
"""

import os
import pickle
import random

import pytest

from repro.core.apgen import AccessPoint
from repro.core.config import PaafConfig
from repro.core.coords import CoordType
from repro.core.framework import PinAccessFramework
from repro.core.patterngen import AccessPatternGenerator
from repro.drc.engine import DrcEngine
from repro.drc.pairkernel import (
    PAIRCHECK_MODES,
    PairCheckMismatch,
    PairKernel,
    PairTable,
    build_pair_table,
)
from repro.perf.apcache import (
    AccessCache,
    PAIR_TABLE_FILE,
    paaf_fingerprint,
)
from repro.perf.profile import profiled
from tests.conftest import make_simple_design

# Random displacements per via combination, on top of the ~26
# deterministic boundary-critical probes.
SWEEP = int(os.environ.get("REPRO_PAIRKERNEL_SWEEP", "4"))


def _probes(table: PairTable, rng: random.Random, extra: int) -> list:
    """Boundary-critical + random displacements for one table."""
    if table.window is None:
        # The combination never violates; a handful of spot checks
        # proves the engine agrees.
        return [(0, 0), (7, -3), (-150, 260), (1000, -1000)]
    xlo, xhi, ylo, yhi = table.window
    xs = (xlo - 1, xlo, (xlo + xhi) // 2, xhi, xhi + 1)
    ys = (ylo - 1, ylo, (ylo + yhi) // 2, yhi, yhi + 1)
    probes = [(x, y) for x in xs for y in ys]
    probes.append((0, 0))
    for _ in range(extra):
        probes.append((
            rng.randint(xlo - 20, xhi + 20),
            rng.randint(ylo - 20, yhi + 20),
        ))
    return probes


def _sweep_node(tech) -> int:
    """Assert kernel == engine over every combination; return #probes."""
    engine = DrcEngine(tech)
    rng = random.Random(20200720)  # DAC'20 -- deterministic sweep
    names = [via.name for via in tech.vias]
    checked = 0
    for name_a in names:
        via_a = tech.via(name_a)
        for name_b in names:
            via_b = tech.via(name_b)
            for same_net in (False, True):
                table = build_pair_table(tech, via_a, via_b, same_net)
                for dx, dy in _probes(table, rng, SWEEP):
                    expected = not engine.check_via_pair(
                        via_a, (0, 0), via_b, (dx, dy), same_net=same_net
                    )
                    got = table.clean(dx, dy)
                    assert got == expected, (
                        f"{name_a} vs {name_b} same_net={same_net} "
                        f"at d=({dx}, {dy}): kernel="
                        f"{'clean' if got else 'dirty'}, engine="
                        f"{'clean' if expected else 'dirty'}"
                    )
                    checked += 1
    return checked


class TestEquivalence:
    def test_n45_every_pair_matches_engine(self, n45):
        assert _sweep_node(n45) > 0

    def test_n32_every_pair_matches_engine(self, n32):
        assert _sweep_node(n32) > 0

    def test_n14_every_pair_matches_engine(self, n14):
        assert _sweep_node(n14) > 0

    def test_translation_invariance_against_absolute_engine(self, n45):
        """The same displacement at shifted origins keeps the verdict."""
        engine = DrcEngine(n45)
        via = n45.via("V12_P")
        table = build_pair_table(n45, via, via, False)
        xlo, xhi, ylo, yhi = table.window
        rng = random.Random(7)
        for _ in range(8 + SWEEP):
            dx = rng.randint(xlo - 10, xhi + 10)
            dy = rng.randint(ylo - 10, yhi + 10)
            ox = rng.randint(-50000, 50000)
            oy = rng.randint(-50000, 50000)
            expected = not engine.check_via_pair(
                via, (ox, oy), via, (ox + dx, oy + dy)
            )
            assert table.clean(dx, dy) == expected

    def test_same_net_tables_hold_only_cut_tests(self, n45):
        """Same-net pairs skip metal/EOL; only the cut check remains."""
        _CUT = 2
        for via_a in n45.vias:
            for via_b in n45.vias:
                table = build_pair_table(n45, via_a, via_b, True)
                assert all(test[0] == _CUT for test in table.tests)


class TestModes:
    def test_modes_tuple(self):
        assert PAIRCHECK_MODES == ("kernel", "engine", "verify")

    def test_invalid_mode_rejected(self, n45):
        with pytest.raises(ValueError):
            PairKernel(n45, mode="bogus")
        with pytest.raises(ValueError):
            PaafConfig(paircheck_mode="bogus")

    def test_engine_mode_builds_no_tables(self, n45):
        kernel = PairKernel(n45, mode="engine")
        # Same displacement the engine suite pins as clean / dirty.
        assert kernel.pair_clean("V12_P", 0, 0, "V12_P", 0, 290)
        assert not kernel.pair_clean("V12_P", 0, 0, "V12_P", 0, 140)
        assert kernel.built == 0
        assert kernel.tables == {}

    def test_verify_mode_passes_end_to_end(self, n45):
        kernel = PairKernel(n45, mode="verify")
        table = kernel.table("V12_P", "V12_S")
        rng = random.Random(11)
        xlo, xhi, ylo, yhi = table.window
        for _ in range(16 + SWEEP):
            dx = rng.randint(xlo - 10, xhi + 10)
            dy = rng.randint(ylo - 10, yhi + 10)
            kernel.pair_clean("V12_P", 100, 200, "V12_S", 100 + dx, 200 + dy)

    def test_verify_mode_raises_on_divergence(self, n45):
        kernel = PairKernel(n45, mode="verify")
        # Poison the table: an empty table claims every displacement
        # is clean, which the engine refutes at d=(0, 140).
        kernel.tables[("V12_P", "V12_P", False)] = PairTable(None, ())
        with pytest.raises(PairCheckMismatch):
            kernel.pair_clean("V12_P", 0, 0, "V12_P", 0, 140)

    def test_build_all_covers_every_combination(self, n45):
        kernel = PairKernel(n45).build_all()
        expected = 2 * len(n45.vias) ** 2
        assert len(kernel.tables) == expected
        assert kernel.built == expected
        # A second pass hits the cache; nothing new is built.
        kernel.build_all()
        assert kernel.built == expected

    def test_stats_shape(self, n45):
        kernel = PairKernel(n45)
        kernel.table("V12_P", "V12_P")
        stats = kernel.stats()
        assert stats == {
            "pairkernel.mode": "kernel",
            "pairkernel.tables": 1,
            "pairkernel.built": 1,
            "pairkernel.preloaded": False,
        }


class TestPersistence:
    def test_tables_pickle_roundtrip(self, n45):
        table = build_pair_table(n45, n45.via("V12_P"), n45.via("V12_S"), False)
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.clean(0, 140) == table.clean(0, 140)

    def test_store_then_load_preloads_kernel(self, n45, tmp_path):
        design = make_simple_design(n45)
        cache = AccessCache(str(tmp_path), paaf_fingerprint(design, PaafConfig()))
        kernel = PairKernel(n45).build_all()
        cache.store_pair_tables(kernel.tables)

        loaded = cache.load_pair_tables()
        assert loaded == kernel.tables

        warm = PairKernel(n45, tables=loaded)
        assert warm.preloaded
        assert warm.built == 0
        # Warm queries never rebuild.
        assert warm.pair_clean("V12_P", 0, 0, "V12_P", 0, 290)
        assert warm.built == 0

    def test_missing_and_corrupt_files_miss(self, n45, tmp_path):
        design = make_simple_design(n45)
        cache = AccessCache(str(tmp_path), paaf_fingerprint(design, PaafConfig()))
        assert cache.load_pair_tables() is None
        path = os.path.join(cache.root, PAIR_TABLE_FILE)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load_pair_tables() is None
        # Wrong payload shape degrades to a miss, too.
        with open(path, "wb") as handle:
            pickle.dump(["unexpected"], handle)
        assert cache.load_pair_tables() is None


def _ap(x, y, vias=("V12_P",)):
    return AccessPoint(
        x=x, y=y, layer_name="M1",
        pref_type=CoordType(0), nonpref_type=CoordType(0),
        valid_vias=list(vias), planar_dirs=["E"] if not vias else [],
    )


class _ExplodingKernel:
    def pair_clean(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("kernel consulted for a planar pair")


class TestShortCircuit:
    def test_planar_pairs_never_reach_the_kernel(self, n45):
        generator = AccessPatternGenerator(n45, DrcEngine(n45))
        generator.kernel = _ExplodingKernel()
        planar = _ap(0, 0, vias=())
        via_ap = _ap(400, 0)
        with profiled() as prof:
            assert generator.aps_compatible(planar, via_ap)
            assert generator.aps_compatible(via_ap, planar)
            assert generator.aps_compatible(planar, planar)
        assert prof.counters["pairkernel.query"] == 0


class TestEndToEndModes:
    def _access_snapshot(self, node, mode):
        design = make_simple_design(node, num_instances=3)
        config = PaafConfig(paircheck_mode=mode)
        result = PinAccessFramework(design, config).run()
        snapshot = {
            key: (ap.x, ap.y, ap.primary_via)
            for key, ap in result.access_map().items()
        }
        return snapshot, result

    def test_modes_are_bit_identical(self, n45):
        reference, ref_result = self._access_snapshot(n45, "engine")
        assert reference  # the design produces real access
        for mode in ("kernel", "verify"):
            snapshot, result = self._access_snapshot(n45, mode)
            assert snapshot == reference
            assert result.stats["pairkernel.mode"] == mode

    def test_kernel_stats_reported(self, n45):
        _, result = self._access_snapshot(n45, "kernel")
        assert result.stats["pairkernel.tables"] == 2 * len(n45.vias) ** 2
