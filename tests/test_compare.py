"""The router-in-the-loop comparator harness."""

import json
import os

import pytest

from repro.compare import (
    COMPARE_SCHEMA,
    FLOWS,
    GOLDEN_MATRIX,
    SMOKE_MATRIX,
    CaseSpec,
    build_report,
    parse_case,
    render_markdown,
    run_compare,
    write_goldens,
)
from repro.compare.report import _check_golden, golden_path
from repro.sweep.runner import _read_json, _write_json


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One full pinzoo_hostile run across all three flows."""
    run_dir = str(tmp_path_factory.mktemp("cmp"))
    case = CaseSpec("pinzoo_hostile", 1.0)
    summary = run_compare([case], FLOWS, run_dir, jobs=1, out=lambda s: None)
    return case, run_dir, summary


class TestCaseSpecs:
    def test_parse_case_with_scale(self):
        case = parse_case("ispd18_test1@0.004")
        assert case.testcase == "ispd18_test1"
        assert case.scale == 0.004
        assert case.case_id == "ispd18_test1@0.004"

    def test_parse_case_defaults_scale(self):
        assert parse_case("pinzoo_io").scale == 1.0

    def test_matrices_cover_the_zoo(self):
        golden_ids = {case.testcase for case in GOLDEN_MATRIX}
        smoke_ids = {case.testcase for case in SMOKE_MATRIX}
        zoo = {"pinzoo_sram", "pinzoo_io", "pinzoo_hostile"}
        assert zoo <= golden_ids
        assert zoo <= smoke_ids
        assert "aes_14nm" in golden_ids


class TestRunLifecycle:
    def test_all_flows_done(self, run):
        _, _, summary = run
        assert summary["counts"] == {
            "done": 3, "cached": 0, "failed": 0, "timeout": 0
        }
        assert summary["complete_cases"] == {"pinzoo_hostile@1": True}

    def test_flow_dirs_have_terminal_status(self, run):
        case, run_dir, _ = run
        for flow in FLOWS:
            base = os.path.join(run_dir, "cases", case.case_id, flow)
            status = _read_json(os.path.join(base, "status.json"))
            assert status["state"] == "done"
            assert _read_json(os.path.join(base, "flow.json")) is not None
            assert os.path.exists(os.path.join(base, "log.txt"))

    def test_case_report_written(self, run):
        case, run_dir, _ = run
        report = _read_json(
            os.path.join(run_dir, "cases", case.case_id, "report.json")
        )
        assert report["schema"] == COMPARE_SCHEMA
        assert report["complete"]
        assert set(report["flows"]) == set(FLOWS)

    def test_envelope_is_bench_schema(self, run):
        case, run_dir, _ = run
        envelope = _read_json(
            os.path.join(
                run_dir, "envelopes", f"compare-{case.case_id}.json"
            )
        )
        assert envelope["schema"] == "repro.qa.bench/v1"
        metrics = envelope["metrics"]
        assert metrics["serve_wire_identical"] == 1
        assert metrics["pin_access_drc_ratio"] >= 10.0
        assert "pao_pin_access_drcs" in metrics
        assert "legacy_full_drcs" in metrics

    def test_serve_flow_is_bit_identical_to_pao(self, run):
        case, run_dir, _ = run
        report = _read_json(
            os.path.join(run_dir, "cases", case.case_id, "report.json")
        )
        pao = report["metrics"]["pao"]
        serve = {
            k: v
            for k, v in report["metrics"]["serve"].items()
            if not k.startswith("serve.")
        }
        assert {k: v for k, v in pao.items()} == serve
        assert report["flows"]["serve"]["serve"]["wire_identical"]
        assert report["flows"]["serve"]["serve"]["mismatches"] == []

    def test_figure8_ordering_holds(self, run):
        case, run_dir, _ = run
        report = _read_json(
            os.path.join(run_dir, "cases", case.case_id, "report.json")
        )
        ordering = report["ordering"]
        assert ordering["pao_pin_access"] == 0
        assert ordering["legacy_pin_access"] >= 10
        assert ordering["figure8_ok"]

    def test_resume_reuses_everything(self, run):
        case, run_dir, _ = run
        summary = run_compare(
            [case], FLOWS, run_dir, jobs=1, out=lambda s: None
        )
        assert summary["counts"]["cached"] == 3
        assert summary["counts"]["done"] == 0

    def test_force_reruns_scrubbed_flow(self, run):
        case, run_dir, _ = run
        summary = run_compare(
            [case],
            ["legacy"],
            run_dir,
            jobs=1,
            force=True,
            out=lambda s: None,
        )
        assert summary["counts"]["done"] == 1

    def test_unknown_flow_fails_cleanly(self, tmp_path):
        case = CaseSpec("pinzoo_hostile", 1.0)
        summary = run_compare(
            [case], ["bogus"], str(tmp_path), jobs=1, out=lambda s: None
        )
        assert summary["counts"]["failed"] == 1
        status = _read_json(
            os.path.join(
                str(tmp_path), "cases", case.case_id, "bogus", "status.json"
            )
        )
        assert status["state"] == "failed"
        report = _read_json(
            os.path.join(str(tmp_path), "cases", case.case_id, "report.json")
        )
        assert not report["complete"]


class TestGoldenGate:
    def test_report_ok_without_goldens(self, run):
        _, run_dir, _ = run
        report = build_report(run_dir)
        assert report["status"] == "ok"
        assert report["failures"] == []

    def test_accept_then_gate_passes(self, run, tmp_path):
        _, run_dir, _ = run
        goldens = str(tmp_path / "goldens")
        written = write_goldens(build_report(run_dir), goldens)
        assert len(written) == 1
        report = build_report(run_dir, goldens_dir=goldens)
        assert report["status"] == "ok"
        assert report["rows"][0]["golden"]

    def test_tampered_golden_regresses(self, run, tmp_path):
        _, run_dir, _ = run
        goldens = str(tmp_path / "goldens")
        write_goldens(build_report(run_dir), goldens)
        path = golden_path(goldens, "pinzoo_hostile@1")
        golden = _read_json(path)
        golden["metrics"]["legacy"]["drc.pin_access_total"] = 999
        _write_json(path, golden)
        report = build_report(run_dir, goldens_dir=goldens)
        assert report["status"] == "regressed"
        kinds = {f["kind"] for f in report["failures"]}
        assert kinds == {"golden"}
        failure = report["failures"][0]
        assert failure["metric"] == "drc.pin_access_total"
        assert failure["want"] == 999

    def test_missing_golden_is_not_gating(self, run, tmp_path):
        _, run_dir, _ = run
        report = build_report(
            run_dir, goldens_dir=str(tmp_path / "empty")
        )
        assert report["status"] == "ok"
        assert not report["rows"][0]["golden"]

    def test_figure8_failure_kind(self):
        golden = {
            "ordering": {"figure8_ok": True},
            "metrics": {},
        }
        report = {
            "case": "synthetic@1",
            "ordering": {
                "pao_pin_access": 5,
                "legacy_pin_access": 6,
                "figure8_ok": False,
            },
            "metrics": {},
        }
        failures = _check_golden(report, golden)
        assert [f["kind"] for f in failures] == ["figure8"]

    def test_missing_flow_in_report_is_golden_failure(self):
        golden = {"ordering": {}, "metrics": {"legacy": {"x": 1}}}
        report = {"case": "synthetic@1", "ordering": {}, "metrics": {}}
        failures = _check_golden(report, golden)
        assert failures[0]["kind"] == "golden"
        assert failures[0]["metric"] == "<flow missing>"


class TestRendering:
    def test_markdown_has_flow_rows_and_ordering(self, run):
        _, run_dir, _ = run
        text = render_markdown(build_report(run_dir))
        assert "# repro compare report" in text
        assert "| pinzoo_hostile@1 | pao " in text
        assert "| pinzoo_hostile@1 | legacy " in text
        assert "## Figure 8 ordering" in text
        assert "status: **ok**" in text

    def test_markdown_lists_failures(self, run, tmp_path):
        _, run_dir, _ = run
        goldens = str(tmp_path / "goldens")
        write_goldens(build_report(run_dir), goldens)
        path = golden_path(goldens, "pinzoo_hostile@1")
        golden = _read_json(path)
        golden["metrics"]["pao"]["routing.wirelength"] += 1
        _write_json(path, golden)
        text = render_markdown(build_report(run_dir, goldens_dir=goldens))
        assert "## Failures" in text
        assert "status: **regressed**" in text


class TestCli:
    def test_compare_report_cli(self, run, tmp_path, capsys):
        from repro.cli import main

        _, run_dir, _ = run
        goldens = str(tmp_path / "g")
        assert main(["compare", "report", run_dir, "--accept",
                     "--goldens", goldens]) == 0
        assert os.path.exists(golden_path(goldens, "pinzoo_hostile@1"))
        json_out = str(tmp_path / "report.json")
        assert main(["compare", "report", run_dir, "--goldens", goldens,
                     "--fail-on-regress", "--json", json_out]) == 0
        with open(json_out) as fh:
            assert json.load(fh)["status"] == "ok"
        capsys.readouterr()

    def test_compare_report_cli_fails_on_regress(
        self, run, tmp_path, capsys
    ):
        from repro.cli import main

        _, run_dir, _ = run
        goldens = str(tmp_path / "g")
        assert main(["compare", "report", run_dir, "--accept",
                     "--goldens", goldens]) == 0
        path = golden_path(goldens, "pinzoo_hostile@1")
        golden = _read_json(path)
        golden["metrics"]["legacy"]["routing.wirelength"] = -1
        _write_json(path, golden)
        assert main(["compare", "report", run_dir, "--goldens", goldens,
                     "--fail-on-regress"]) == 1
        capsys.readouterr()
