"""Tests for the persistent AP/pattern cache.

Contract: a warm run loads Step 1/2 output from disk and produces a
result identical to the cold run; any change to the tech or to an
algorithmic config knob lands in a different fingerprint directory and
misses cleanly; a corrupt entry degrades to a miss, never to a wrong
answer.
"""

import dataclasses
import glob
import os
import pickle
import shutil

import pytest

from repro.bench import build_testcase
from repro.core import PaafConfig, PinAccessFramework
from repro.perf.apcache import (
    PERF_ONLY_FIELDS,
    AccessCache,
    paaf_fingerprint,
)

from tests.test_perf_parallel import _fingerprint


@pytest.fixture(scope="module")
def design():
    return build_testcase("ispd18_test1", scale=0.004)


def _run(design, cache_dir, use_cache=True, **config_kwargs):
    config = PaafConfig(cache_dir=str(cache_dir), **config_kwargs)
    return PinAccessFramework(design, config).run(use_cache=use_cache)


class TestWarmRuns:
    def test_warm_run_identical_and_skips_step12(self, design, tmp_path):
        cold = _run(design, tmp_path)
        n_uniques = cold.stats["paaf.unique_instances"]
        assert cold.stats["apcache.hit"] == 0
        assert cold.stats["apcache.store"] == n_uniques
        assert cold.stats["paaf.step12_tasks"] == n_uniques

        warm = _run(design, tmp_path)
        assert warm.stats["apcache.hit"] == n_uniques
        assert warm.stats["apcache.miss"] == 0
        assert warm.stats["paaf.step12_tasks"] == 0  # Step 1/2 fully skipped
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_warm_run_identical_under_parallel(self, design, tmp_path):
        cold = _run(design, tmp_path, jobs=2)
        warm = _run(design, tmp_path, jobs=2)
        assert warm.stats["paaf.step12_tasks"] == 0
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_use_cache_false_bypasses(self, design, tmp_path):
        _run(design, tmp_path)
        bypass = _run(design, tmp_path, use_cache=False)
        assert "apcache.hit" not in bypass.stats
        assert bypass.stats["paaf.step12_tasks"] == bypass.stats["paaf.unique_instances"]


class TestInvalidation:
    def test_config_change_misses(self, design, tmp_path):
        cold = _run(design, tmp_path)
        assert cold.stats["apcache.store"] > 0
        changed = _run(design, tmp_path, alpha=PaafConfig().alpha + 1)
        # Different fingerprint directory: all misses, no stale hits.
        assert changed.stats["apcache.hit"] == 0
        assert changed.stats["apcache.miss"] > 0

    def test_perf_only_knobs_share_fingerprint(self, design):
        base = PaafConfig()
        for field in PERF_ONLY_FIELDS:
            assert hasattr(base, field)
        tweaked = dataclasses.replace(
            base, jobs=4, cache_dir="/somewhere/else", profile=True
        )
        assert paaf_fingerprint(design, base) == paaf_fingerprint(
            design, tweaked
        )

    def test_algorithmic_knobs_change_fingerprint(self, design):
        base = PaafConfig()
        assert paaf_fingerprint(design, base) != paaf_fingerprint(
            design, base.without_bca()
        )

    def test_corrupt_entry_is_a_miss(self, design, tmp_path):
        _run(design, tmp_path)
        entries = glob.glob(str(tmp_path / "*" / "*.pkl"))
        assert entries
        # Alternate payloads: one raises UnpicklingError outright, the
        # other starts with a valid opcode and fails deeper inside
        # pickle with a different exception type.
        for i, path in enumerate(entries):
            with open(path, "wb") as handle:
                handle.write(b"not a pickle" if i % 2 else b"garbage\n")
        recovered = _run(design, tmp_path)
        assert recovered.stats["apcache.hit"] == 0
        assert recovered.stats["apcache.miss"] > 0
        # And it re-stores good entries over the corrupt ones.
        warm = _run(design, tmp_path)
        assert warm.stats["apcache.hit"] > 0


def _entry_paths(cache_dir):
    return sorted(
        path
        for path in glob.glob(str(cache_dir / "*" / "*.pkl"))
        if not path.endswith("pairkernel.pkl")
    )


class TestStaleDetection:
    """Entries that unpickle fine but hold wrong content are flagged.

    The recorded content digest catches bit rot and tampering; the
    recorded fingerprint catches files copied between generations.
    Both degrade to a miss -- the flow recomputes and the result stays
    bit-identical to a cold run.
    """

    def test_tampered_entry_degrades_to_miss(self, design, tmp_path):
        cold = _run(design, tmp_path)
        path = _entry_paths(tmp_path)[0]
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
        pin = sorted(entry["aps_by_pin"])[0]
        entry["aps_by_pin"][pin][0].x += 5  # digest no longer matches
        with open(path, "wb") as handle:
            pickle.dump(entry, handle, protocol=4)

        warm = _run(design, tmp_path)
        stats = warm.stats
        assert stats["apcache.stale"] == 1
        assert stats["apcache.miss"] == 1
        assert stats["apcache.hit"] == warm.stats["paaf.unique_instances"] - 1
        assert _fingerprint(warm) == _fingerprint(cold)

        # The recomputed entry was re-stored over the tampered one.
        again = _run(design, tmp_path)
        assert again.stats["apcache.stale"] == 0
        assert again.stats["apcache.miss"] == 0

    def test_cross_fingerprint_copy_is_stale(self, design, tmp_path):
        _run(design, tmp_path)
        path = _entry_paths(tmp_path)[0]
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
        entry["fingerprint"] = "0" * 64
        with open(path, "wb") as handle:
            pickle.dump(entry, handle, protocol=4)
        warm = _run(design, tmp_path)
        assert warm.stats["apcache.stale"] == 1

    def test_clean_warm_run_reports_zero_stale(self, design, tmp_path):
        _run(design, tmp_path)
        warm = _run(design, tmp_path)
        assert warm.stats["apcache.stale"] == 0


class TestPairTableCorruption:
    def _tables_path(self, cache_dir):
        paths = glob.glob(str(cache_dir / "*" / "pairkernel.pkl"))
        assert len(paths) == 1
        return paths[0]

    def test_truncated_tables_rebuild_cold(self, design, tmp_path):
        cold = _run(design, tmp_path)
        path = self._tables_path(tmp_path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])

        warm = _run(design, tmp_path)
        assert not warm.stats["pairkernel.preloaded"]
        assert warm.stats["pairkernel.built"] > 0
        assert _fingerprint(warm) == _fingerprint(cold)

        # The rebuild re-persisted the tables: next run preloads.
        again = _run(design, tmp_path)
        assert again.stats["pairkernel.preloaded"]

    def test_garbage_tables_rebuild_cold(self, design, tmp_path):
        cold = _run(design, tmp_path)
        with open(self._tables_path(tmp_path), "wb") as handle:
            handle.write(b"not a pickle")
        warm = _run(design, tmp_path)
        assert not warm.stats["pairkernel.preloaded"]
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_wrong_fingerprint_tables_rejected(self, tmp_path):
        ours = AccessCache(str(tmp_path), "a" * 64)
        ours.store_pair_tables({"k": 1})
        assert ours.load_pair_tables() == {"k": 1}
        # Copy the table file into another generation's directory:
        # the recorded fingerprint no longer matches and the entry
        # must be rejected wholesale.
        theirs = AccessCache(str(tmp_path), "b" * 64)
        shutil.copy(
            os.path.join(ours.root, "pairkernel.pkl"),
            os.path.join(theirs.root, "pairkernel.pkl"),
        )
        assert theirs.load_pair_tables() is None


class TestCacheUnit:
    def test_load_missing_is_miss(self, tmp_path):
        cache = AccessCache(str(tmp_path), "deadbeef" * 8)
        class FakeUi:
            signature = ("M", "N", (0, 0))
            class representative:
                class location:
                    x = 0
                    y = 0
        assert cache.load(FakeUi) is None
        assert cache.misses == 1

    def test_store_is_atomic(self, design, tmp_path):
        """No partial entry files are left behind after a run."""
        _run(design, tmp_path)
        stray = [
            name
            for name in os.listdir(next(iter(glob.glob(str(tmp_path / "*")))))
            if not name.endswith(".pkl")
        ]
        assert stray == []
