"""Unit tests for the benchmark suite generators."""

import pytest

from repro.bench.ispd18 import (
    DEFAULT_SCALE,
    ISPD18_TESTCASES,
    build_testcase,
)
from repro.bench.ispd18 import testcase_spec as spec_by_name
from repro.bench.aes14 import build_aes14
from repro.bench.stdcells import build_library
from repro.drc.context import ShapeContext
from repro.drc.engine import DrcEngine


class TestSpecs:
    def test_ten_testcases(self):
        assert len(ISPD18_TESTCASES) == 10
        assert [s.name for s in ISPD18_TESTCASES] == [
            f"ispd18_test{i}" for i in range(1, 11)
        ]

    def test_table1_full_scale_counts(self):
        spec = spec_by_name("ispd18_test10")
        assert spec.std_cells == 290386
        assert spec.node == "N32"

    def test_nodes_match_table1(self):
        for spec in ISPD18_TESTCASES[:3]:
            assert spec.node == "N45"
        for spec in ISPD18_TESTCASES[3:]:
            assert spec.node == "N32"

    def test_misalignment_flags(self):
        for name in ("ispd18_test4", "ispd18_test5", "ispd18_test6"):
            assert spec_by_name(name).misaligned_tracks
        assert not spec_by_name("ispd18_test1").misaligned_tracks

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec_by_name("ispd18_test99")


class TestLibrary:
    def test_deterministic(self, n45):
        lib1 = build_library(n45, seed=7)
        lib2 = build_library(n45, seed=7)
        for m1, m2 in zip(lib1.masters, lib2.masters):
            assert m1.name == m2.name
            for p1, p2 in zip(m1.pins, m2.pins):
                assert p1.shapes == p2.shapes

    def test_seed_changes_layouts(self, n45):
        lib1 = build_library(n45, seed=1)
        lib2 = build_library(n45, seed=2)
        diffs = sum(
            1
            for m1, m2 in zip(lib1.masters, lib2.masters)
            for p1, p2 in zip(m1.pins, m2.pins)
            if p1.shapes != p2.shapes
        )
        assert diffs > 0

    def test_cells_are_site_multiples(self, n45):
        lib = build_library(n45)
        for master in lib.masters:
            assert master.width % n45.site_width == 0
            assert master.height == n45.site_height

    def test_pins_inside_cell(self, n45):
        lib = build_library(n45)
        for master in lib.masters:
            for pin in master.signal_pins():
                box = pin.bbox()
                assert 0 <= box.xlo and box.xhi <= master.width
                assert 0 <= box.ylo and box.yhi <= master.height

    def test_pin_shapes_mutually_drc_clean(self, n45):
        # A well-formed library: no shape-vs-shape violations inside a
        # cell (vias may still conflict; that is the point of the DP).
        from repro.db.inst import Instance
        from repro.geom.point import Point

        engine = DrcEngine(n45)
        lib = build_library(n45)
        for master in lib.masters[:12]:
            inst = Instance("u", master, Point(0, 0))
            ctx = ShapeContext.from_instance(inst)
            for pin, layer, rect in inst.all_pin_shapes():
                violations = [
                    v
                    for v in engine.check_metal_rect(
                        layer, rect, ("u", pin.name), ctx
                    )
                ]
                assert violations == [], (master.name, pin.name, violations)

    def test_macro_has_obs_and_pins(self, n45):
        lib = build_library(n45, num_macros=2)
        assert len(lib.macros) == 2
        macro = lib.macros[0]
        assert macro.is_macro
        assert macro.obstructions
        assert macro.signal_pins()

    def test_num_masters_trim(self, n45):
        lib = build_library(n45, num_masters=10)
        assert len(lib.masters) == 10


class TestBuildTestcase:
    def test_scaled_counts(self):
        design = build_testcase("ispd18_test2", scale=0.005)
        stats = design.stats()
        assert stats["num_std_cells"] == round(35913 * 0.005)
        assert stats["num_io_pins"] == round(1211 * 0.005)
        assert stats["node"] == "N45"

    def test_deterministic(self):
        d1 = build_testcase("ispd18_test1", scale=0.005)
        d2 = build_testcase("ispd18_test1", scale=0.005)
        assert [
            (i.name, i.location, i.orient) for i in d1.instances.values()
        ] == [(i.name, i.location, i.orient) for i in d2.instances.values()]

    def test_instances_on_site_grid_inside_die(self):
        design = build_testcase("ispd18_test1", scale=0.01)
        site_w = design.tech.site_width
        for inst in design.instances.values():
            assert (inst.location.x - design.core_origin.x) % site_w == 0
            assert design.die_area.contains_rect(inst.bbox)

    def test_no_overlapping_instances(self):
        design = build_testcase("ispd18_test4", scale=0.005)
        by_row = {}
        for inst in design.instances.values():
            by_row.setdefault(inst.location.y, []).append(inst)
        for insts in by_row.values():
            insts.sort(key=lambda i: i.location.x)
            for a, b in zip(insts, insts[1:]):
                assert a.bbox.xhi <= b.bbox.xlo, (a.name, b.name)

    def test_macros_placed_for_test3(self):
        design = build_testcase("ispd18_test3", scale=0.01)
        assert design.stats()["num_macros"] == 4

    def test_every_net_has_terms(self):
        design = build_testcase("ispd18_test1", scale=0.005)
        for net in design.nets.values():
            assert net.degree >= 1

    def test_most_signal_pins_connected(self):
        design = build_testcase("ispd18_test1", scale=0.01)
        total_signal = sum(
            len(i.master.signal_pins()) for i in design.instances.values()
        )
        assert len(design.connected_pins()) >= 0.9 * total_signal

    def test_tracks_cover_all_routing_layers(self):
        design = build_testcase("ispd18_test1", scale=0.005)
        layers_with_tracks = {p.layer_name for p in design.track_patterns}
        assert layers_with_tracks == {
            l.name for l in design.tech.routing_layers()
        }

    def test_misaligned_steps(self):
        design = build_testcase("ispd18_test4", scale=0.005)
        m2 = design.track_patterns_on("M2")[0]
        assert m2.step == 120  # 1.2 x 100
        aligned = build_testcase("ispd18_test9", scale=0.005)
        assert aligned.track_patterns_on("M2")[0].step == 100

    def test_spec_by_object(self):
        spec = spec_by_name("ispd18_test1")
        design = build_testcase(spec, scale=0.005)
        assert design.name == "ispd18_test1"


class TestAes14:
    def test_build(self):
        design = build_aes14(scale=0.02)
        stats = design.stats()
        assert stats["node"] == "N14"
        assert stats["num_std_cells"] == 400
        assert design.track_patterns_on("M2")[0].step == 76  # misaligned
