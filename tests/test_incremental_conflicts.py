"""Incremental analysis: conflict bookkeeping across edits."""

import pytest

from repro.core import PinAccessFramework, evaluate_failed_pins
from repro.core.incremental import IncrementalPinAccess
from repro.geom.point import Point

from tests.conftest import make_simple_design


@pytest.fixture
def design(n45):
    # Three abutting cells in one row plus one isolated.
    d = make_simple_design(n45, num_instances=3)
    return d


class TestConflictTracking:
    def test_initial_conflicts_match_framework(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        full = PinAccessFramework(design).run()
        assert sorted(inc.conflicts()) == sorted(full.selection.conflicts)

    def test_moving_away_clears_abutment(self, design, n45):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        # Pull the middle cell out of the cluster; everything stays
        # clean and the access map tracks the move.
        u1 = design.instance("u1")
        inc.move_instance("u1", Point(9800, 1400))
        assert u1.location == Point(9800, 1400)
        assert evaluate_failed_pins(design, inc.access_map()) == []
        moved = inc.access_map()[("u1", "A")]
        assert 9800 <= moved.x <= 9800 + u1.bbox.width

    def test_move_back_and_forth_stable(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        original_map = {
            k: (ap.x, ap.y) for k, ap in inc.access_map().items()
        }
        u1 = design.instance("u1")
        origin = u1.location
        inc.move_instance("u1", Point(9800, 1400))
        inc.move_instance("u1", origin)
        back_map = {k: (ap.x, ap.y) for k, ap in inc.access_map().items()}
        assert back_map == original_map

    def test_unknown_instance_raises(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        with pytest.raises(KeyError):
            inc.move_instance("ghost", Point(0, 0))

    def test_last_update_seconds_recorded(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        assert inc.last_update_seconds == 0.0
        inc.move_instance("u2", Point(9800, 1400))
        assert inc.last_update_seconds > 0.0

    def test_new_signature_analyzed_on_demand(self, design, n45):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        before = len(inc._ua_by_signature)
        # Move by a non-multiple of the upper-layer pitch: new offsets,
        # new signature class.
        inc.move_instance("u2", Point(9800 + 140, 1400))
        assert len(inc._ua_by_signature) >= before
        assert evaluate_failed_pins(design, inc.access_map()) == []
