"""Unit tests for maximal rectangle enumeration."""

from repro.geom.maxrect import maximal_rectangles
from repro.geom.polygon import RectilinearPolygon
from repro.geom.rect import Rect


def maxrects(rects):
    return maximal_rectangles(RectilinearPolygon(rects))


class TestMaximalRectangles:
    def test_single_rect_is_its_own_maximal(self):
        assert maxrects([Rect(0, 0, 10, 20)]) == [Rect(0, 0, 10, 20)]

    def test_l_shape_has_two(self):
        out = maxrects([Rect(0, 0, 100, 40), Rect(0, 0, 40, 100)])
        assert sorted(out) == sorted(
            [Rect(0, 0, 100, 40), Rect(0, 0, 40, 100)]
        )

    def test_t_shape_has_two(self):
        out = maxrects([Rect(0, 0, 100, 40), Rect(40, 0, 60, 100)])
        assert sorted(out) == sorted(
            [Rect(0, 0, 100, 40), Rect(40, 0, 60, 100)]
        )

    def test_plus_shape_has_three(self):
        out = maxrects([Rect(10, 0, 20, 30), Rect(0, 10, 30, 20)])
        assert sorted(out) == sorted(
            [
                Rect(10, 0, 20, 30),
                Rect(0, 10, 30, 20),
            ]
        )

    def test_staircase_has_three(self):
        stairs = [
            Rect(0, 0, 30, 10),
            Rect(0, 10, 20, 20),
            Rect(0, 20, 10, 30),
        ]
        out = maxrects(stairs)
        assert sorted(out) == sorted(
            [
                Rect(0, 0, 30, 10),
                Rect(0, 0, 20, 20),
                Rect(0, 0, 10, 30),
            ]
        )

    def test_every_maximal_rect_is_contained(self):
        shape = [Rect(0, 0, 100, 40), Rect(40, 20, 60, 100)]
        poly = RectilinearPolygon(shape)
        for rect in maximal_rectangles(poly):
            assert poly.contains_rect(rect)

    def test_maximality_no_rect_contains_another(self):
        shape = [
            Rect(0, 0, 100, 40),
            Rect(40, 0, 60, 100),
            Rect(0, 60, 100, 100),
        ]
        out = maxrects(shape)
        for i, a in enumerate(out):
            for j, b in enumerate(out):
                if i != j:
                    assert not a.contains_rect(b)

    def test_overlapping_input_rects(self):
        # Overlap along x: the union is one rect, so one maximal rect.
        out = maxrects([Rect(0, 0, 60, 40), Rect(40, 0, 100, 40)])
        assert out == [Rect(0, 0, 100, 40)]
