"""Tests for incremental pin access maintenance."""

import pytest

from repro.bench import build_testcase
from repro.core import PinAccessFramework, evaluate_failed_pins
from repro.core.incremental import IncrementalPinAccess
from repro.geom.point import Point


@pytest.fixture
def design():
    return build_testcase("ispd18_test1", scale=0.01)


def free_site(design, row_y):
    """Find an x where a cell of 6 sites fits with clearance."""
    site_w = design.tech.site_width
    occupied = sorted(
        (i.location.x, i.bbox.xhi)
        for i in design.instances.values()
        if i.location.y == row_y
    )
    x = design.core_origin.x
    for start, end in occupied:
        if start - x >= 10 * site_w:
            return x + 2 * site_w
        x = max(x, end)
    return x + 2 * site_w


class TestIncremental:
    def test_analyze_matches_full(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        full = PinAccessFramework(design).run()
        inc_map = {k: (a.x, a.y) for k, a in inc.access_map().items()}
        full_map = {k: (a.x, a.y) for k, a in full.access_map().items()}
        assert inc_map == full_map

    def test_move_same_row_stays_clean(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        inst = next(iter(design.instances.values()))
        target = Point(
            free_site(design, inst.location.y), inst.location.y
        )
        inc.move_instance(inst.name, target)
        failed = evaluate_failed_pins(design, inc.access_map())
        assert failed == []
        # The moved instance's APs follow its new placement.
        moved_ap = inc.access_map()[
            (inst.name, inst.master.signal_pins()[0].name)
        ]
        assert inst.bbox.xlo <= moved_ap.x <= inst.bbox.xhi

    def test_move_matches_full_reanalysis(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        inst = list(design.instances.values())[3]
        target = Point(free_site(design, inst.location.y), inst.location.y)
        inc.move_instance(inst.name, target)

        # A from-scratch analysis of the mutated design agrees on every
        # pin's accessibility.
        full = PinAccessFramework(design).run()
        inc_failed = set(evaluate_failed_pins(design, inc.access_map()))
        full_failed = set(evaluate_failed_pins(design, full.access_map()))
        assert inc_failed == full_failed == set()

    def test_move_across_rows(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        rows = sorted({i.location.y for i in design.instances.values()})
        assert len(rows) >= 2
        inst = next(
            i
            for i in design.instances.values()
            if i.location.y == rows[0]
        )
        target = Point(free_site(design, rows[1]), rows[1])
        # Keep the orientation consistent with the row parity by moving
        # two rows when available.
        if len(rows) >= 3:
            target = Point(free_site(design, rows[2]), rows[2])
        inc.move_instance(inst.name, target)
        assert evaluate_failed_pins(design, inc.access_map()) == []

    def test_cached_signature_reused(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        signatures_before = len(inc._ua_by_signature)
        inst = next(iter(design.instances.values()))
        # Move by exactly the track LCM: same signature class.
        target = Point(
            free_site(design, inst.location.y), inst.location.y
        )
        inc.move_instance(inst.name, target)
        # Same-parity move on an aligned design: no new signature
        # unless the upper-layer offsets changed.
        assert len(inc._ua_by_signature) <= signatures_before + 1

    def test_moved_representative_follows_placement(self, design):
        """Moving a signature class's own representative must move its
        answers.

        Regression test: translations used to be computed against the
        representative's *live* location, so moving the representative
        within its signature class (e.g. by a whole number of sites
        that lands on the same track-offset class) produced a zero
        translation and answers pinned to the old placement.
        """
        inc = IncrementalPinAccess(design)
        inc.analyze()
        full0 = PinAccessFramework(design).run()
        # Representatives are the first member of each unique
        # instance: pick one and move it within its own row.
        rep = next(
            ua.unique_instance.representative
            for ua in full0.unique_accesses
        )
        site = design.tech.site_width
        target = Point(rep.location.x + 4 * site, rep.location.y)
        inc.move_instance(rep.name, target)
        # Every selected AP of the moved instance sits in its new bbox
        # and matches a from-scratch analysis exactly.
        full = PinAccessFramework(design).run()
        full_map = full.access_map()
        for (inst_name, pin_name), ap in inc.access_map().items():
            if inst_name != rep.name:
                continue
            assert rep.bbox.xlo <= ap.x <= rep.bbox.xhi
            want = full_map[(inst_name, pin_name)]
            assert (ap.x, ap.y) == (want.x, want.y)

    def test_repeated_moves_stay_consistent(self, design):
        inc = IncrementalPinAccess(design)
        inc.analyze()
        insts = list(design.instances.values())[:4]
        for inst in insts:
            target = Point(
                free_site(design, inst.location.y), inst.location.y
            )
            inc.move_instance(inst.name, target)
            assert evaluate_failed_pins(design, inc.access_map()) == []
