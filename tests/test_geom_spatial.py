"""Unit tests for the grid spatial index."""

import pytest

from repro.geom.rect import Rect
from repro.geom.spatial import GridIndex


class TestGridIndex:
    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            GridIndex(bucket=0)

    def test_empty_query(self):
        index = GridIndex(bucket=100)
        assert index.query(Rect(0, 0, 1000, 1000)) == []

    def test_basic_hit_and_miss(self):
        index = GridIndex(bucket=100)
        index.insert(Rect(10, 10, 20, 20), "a")
        assert index.query(Rect(0, 0, 15, 15)) == ["a"]
        assert index.query(Rect(500, 500, 600, 600)) == []

    def test_closed_touch_counts(self):
        index = GridIndex(bucket=100)
        index.insert(Rect(0, 0, 10, 10), "a")
        assert index.query(Rect(10, 10, 20, 20)) == ["a"]

    def test_no_duplicates_for_multibucket_shape(self):
        index = GridIndex(bucket=10)
        index.insert(Rect(0, 0, 100, 100), "big")
        hits = index.query(Rect(0, 0, 100, 100))
        assert hits == ["big"]

    def test_negative_coordinates(self):
        index = GridIndex(bucket=100)
        index.insert(Rect(-250, -250, -150, -150), "neg")
        assert index.query(Rect(-200, -200, -100, -100)) == ["neg"]
        assert index.query(Rect(0, 0, 100, 100)) == []

    def test_query_pairs_returns_rects(self):
        index = GridIndex(bucket=100)
        r = Rect(0, 0, 10, 10)
        index.insert(r, "a")
        assert index.query_pairs(Rect(0, 0, 5, 5)) == [(r, "a")]

    def test_deterministic_order(self):
        index = GridIndex(bucket=50)
        rects = [Rect(i * 10, 0, i * 10 + 5, 5) for i in range(20)]
        for k, r in enumerate(rects):
            index.insert(r, k)
        hits = index.query(Rect(0, 0, 200, 10))
        assert hits == sorted(hits)

    def test_len_and_all_items(self):
        index = GridIndex(bucket=100)
        index.insert(Rect(0, 0, 1, 1), "x")
        index.insert(Rect(5, 5, 6, 6), "y")
        assert len(index) == 2
        assert [p for _, p in index.all_items()] == ["x", "y"]

    def test_many_shapes_window_query(self):
        index = GridIndex(bucket=100)
        for i in range(100):
            index.insert(Rect(i * 100, 0, i * 100 + 50, 50), i)
        hits = index.query(Rect(1000, 0, 1500, 50))
        assert hits == [10, 11, 12, 13, 14, 15]
