"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def lefdef_pair(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    lef = tmp / "t.lef"
    deff = tmp / "t.def"
    code = main(
        [
            "generate",
            "ispd18_test1",
            "--scale",
            "0.005",
            "--lef",
            str(lef),
            "--def",
            str(deff),
        ]
    )
    assert code == 0
    return lef, deff


class TestGenerate:
    def test_writes_files(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        assert lef.exists() and deff.exists()
        assert "MACRO" in lef.read_text()
        assert "COMPONENTS" in deff.read_text()

    def test_unknown_testcase(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "generate",
                    "nope",
                    "--lef",
                    str(tmp_path / "a.lef"),
                    "--def",
                    str(tmp_path / "a.def"),
                ]
            )


class TestAnalyze:
    def test_paaf_clean_exit(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        code = main(["analyze", "--lef", str(lef), "--def", str(deff)])
        out = capsys.readouterr().out
        assert code == 0
        assert "failed pins" in out
        assert "PAAF w/ BCA" in out

    def test_baseline_fails(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        code = main(
            [
                "analyze",
                "--lef",
                str(lef),
                "--def",
                str(deff),
                "--baseline",
                "--list-failed",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_no_bca_flag(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        main(
            ["analyze", "--lef", str(lef), "--def", str(deff), "--no-bca"]
        )
        assert "w/o BCA" in capsys.readouterr().out


class TestRoute:
    def test_route_with_svg(self, lefdef_pair, tmp_path, capsys):
        lef, deff = lefdef_pair
        svg = tmp_path / "routed.svg"
        code = main(
            [
                "route",
                "--lef",
                str(lef),
                "--def",
                str(deff),
                "--svg",
                str(svg),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "routed" in out
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestRender:
    def test_render(self, lefdef_pair, tmp_path, capsys):
        lef, deff = lefdef_pair
        svg = tmp_path / "access.svg"
        code = main(
            ["render", "--lef", str(lef), "--def", str(deff), "--svg", str(svg)]
        )
        assert code == 0
        assert "<line" in svg.read_text()


class TestSuite:
    def test_suite_subset(self, capsys):
        code = main(
            ["suite", "--scale", "0.002", "--testcases", "ispd18_test1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "ispd18_test1" in out


class TestTopLevel:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out


class TestAnalyzeErrors:
    """Bad inputs exit non-zero with a message, never a traceback."""

    def test_missing_lef(self, tmp_path, capsys):
        code = main(
            [
                "analyze",
                "--lef",
                str(tmp_path / "no.lef"),
                "--def",
                str(tmp_path / "no.def"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--lef" in err and "no.lef" in err

    def test_missing_def(self, lefdef_pair, tmp_path, capsys):
        lef, _ = lefdef_pair
        code = main(
            ["analyze", "--lef", str(lef), "--def", str(tmp_path / "no.def")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--def" in err

    def test_unreadable_lef(self, tmp_path, capsys):
        # A directory passes an existence check but cannot be read;
        # the CLI must still fail cleanly.
        code = main(
            ["analyze", "--lef", str(tmp_path), "--def", str(tmp_path)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_paircheck_mode(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        code = main(
            [
                "analyze",
                "--lef",
                str(lef),
                "--def",
                str(deff),
                "--paircheck-mode",
                "bogus",
            ]
        )
        assert code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestQaCli:
    @pytest.fixture(scope="class")
    def goldens_dir(self, tmp_path_factory):
        goldens = tmp_path_factory.mktemp("qa") / "goldens"
        code = main(
            [
                "qa",
                "snapshot",
                "ispd18_test1",
                "--scale",
                "0.005",
                "--goldens",
                str(goldens),
            ]
        )
        assert code == 0
        return goldens

    def test_snapshot_wrote_record(self, goldens_dir):
        assert (goldens_dir / "ispd18_test1@0.005.json").exists()

    def test_check_passes_and_writes_report(
        self, goldens_dir, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        code = main(
            [
                "qa",
                "check",
                "--goldens",
                str(goldens_dir),
                "--json",
                str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out
        data = json.loads(report.read_text())
        assert [e["status"] for e in data["cases"]] == ["ok"]

    def test_diff_identical(self, goldens_dir, capsys):
        code = main(["qa", "diff", "--goldens", str(goldens_dir)])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_unknown_case_is_clean_error(self, goldens_dir, capsys):
        code = main(
            [
                "qa",
                "check",
                "--goldens",
                str(goldens_dir),
                "--cases",
                "nope@1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_tolerances_file(self, goldens_dir, tmp_path, capsys):
        bad = tmp_path / "tol.json"
        bad.write_text("{not json")
        code = main(
            [
                "qa",
                "check",
                "--goldens",
                str(goldens_dir),
                "--tolerances",
                str(bad),
            ]
        )
        assert code == 2
        assert "--tolerances" in capsys.readouterr().err

    def test_qa_without_subcommand_shows_help(self, capsys):
        assert main(["qa"]) == 2
        assert "usage" in capsys.readouterr().out
