"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def lefdef_pair(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    lef = tmp / "t.lef"
    deff = tmp / "t.def"
    code = main(
        [
            "generate",
            "ispd18_test1",
            "--scale",
            "0.005",
            "--lef",
            str(lef),
            "--def",
            str(deff),
        ]
    )
    assert code == 0
    return lef, deff


class TestGenerate:
    def test_writes_files(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        assert lef.exists() and deff.exists()
        assert "MACRO" in lef.read_text()
        assert "COMPONENTS" in deff.read_text()

    def test_unknown_testcase(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "generate",
                    "nope",
                    "--lef",
                    str(tmp_path / "a.lef"),
                    "--def",
                    str(tmp_path / "a.def"),
                ]
            )


class TestAnalyze:
    def test_paaf_clean_exit(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        code = main(["analyze", "--lef", str(lef), "--def", str(deff)])
        out = capsys.readouterr().out
        assert code == 0
        assert "failed pins" in out
        assert "PAAF w/ BCA" in out

    def test_baseline_fails(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        code = main(
            [
                "analyze",
                "--lef",
                str(lef),
                "--def",
                str(deff),
                "--baseline",
                "--list-failed",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_no_bca_flag(self, lefdef_pair, capsys):
        lef, deff = lefdef_pair
        main(
            ["analyze", "--lef", str(lef), "--def", str(deff), "--no-bca"]
        )
        assert "w/o BCA" in capsys.readouterr().out


class TestRoute:
    def test_route_with_svg(self, lefdef_pair, tmp_path, capsys):
        lef, deff = lefdef_pair
        svg = tmp_path / "routed.svg"
        code = main(
            [
                "route",
                "--lef",
                str(lef),
                "--def",
                str(deff),
                "--svg",
                str(svg),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "routed" in out
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestRender:
    def test_render(self, lefdef_pair, tmp_path, capsys):
        lef, deff = lefdef_pair
        svg = tmp_path / "access.svg"
        code = main(
            ["render", "--lef", str(lef), "--def", str(deff), "--svg", str(svg)]
        )
        assert code == 0
        assert "<line" in svg.read_text()


class TestSuite:
    def test_suite_subset(self, capsys):
        code = main(
            ["suite", "--scale", "0.002", "--testcases", "ispd18_test1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "ispd18_test1" in out


class TestTopLevel:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
