"""Tests for routed min-area accounting and repair."""

import pytest

from repro.bench import build_testcase
from repro.core import PaafConfig, PinAccessFramework
from repro.route import DetailedRouter, count_route_drcs
from repro.route.router import net_layer_components


@pytest.fixture(scope="module")
def env():
    design = build_testcase("ispd18_test1", scale=0.005)
    access = PinAccessFramework(design).run().access_map()
    return design, access


class TestComponents:
    def test_pin_layer_excluded(self, env):
        design, access = env
        result = DetailedRouter(design).route(access)
        layers = {layer for _, layer, _ in net_layer_components(design, result)}
        assert "M1" not in layers
        assert "M2" in layers

    def test_components_are_single_net(self, env):
        design, access = env
        result = DetailedRouter(design).route(access)
        for net_name, _, members in net_layer_components(design, result):
            for wire, _ in members:
                if wire is not None:
                    assert wire[0] == net_name

    def test_members_connected(self, env):
        design, access = env
        result = DetailedRouter(design).route(access)
        for _, _, members in net_layer_components(design, result):
            if len(members) == 1:
                continue
            # Every member touches at least one other member.
            for k, (_, rect) in enumerate(members):
                assert any(
                    rect.intersects(other)
                    for j, (_, other) in enumerate(members)
                    if j != k
                )


class TestRepair:
    def test_repair_reduces_min_area_violations(self, env):
        design, access = env
        plain = DetailedRouter(design).route(access, repair_min_area=False)
        repaired = DetailedRouter(design).route(access, repair_min_area=True)
        before = [
            v
            for v in count_route_drcs(design, plain, scope="full")
            if v.rule == "min-area"
        ]
        after = [
            v
            for v in count_route_drcs(design, repaired, scope="full")
            if v.rule == "min-area"
        ]
        assert len(before) > 0
        assert len(after) < len(before) / 2

    def test_repair_keeps_pin_access_clean(self, env):
        design, access = env
        repaired = DetailedRouter(design).route(access, repair_min_area=True)
        assert count_route_drcs(design, repaired, scope="pin-access") == []


class TestStrictViaInPin:
    def test_strict_mode_prunes_aps(self):
        design = build_testcase("ispd18_test1", scale=0.005)
        normal = PinAccessFramework(design).run_step1()
        strict = PinAccessFramework(
            design, PaafConfig(require_cut_on_pin=True)
        ).run_step1()
        assert strict.total_access_points < normal.total_access_points

    def test_strict_cuts_land_on_pin(self):
        from repro.geom.polygon import RectilinearPolygon

        design = build_testcase("ispd18_test1", scale=0.005)
        strict = PinAccessFramework(
            design, PaafConfig(require_cut_on_pin=True)
        ).run_step1()
        for ua in strict.unique_accesses:
            rep = ua.unique_instance.representative
            for pin_name, aps in ua.aps_by_pin.items():
                shapes = rep.pin_rects(pin_name)
                for ap in aps:
                    if not ap.has_via_access:
                        continue
                    polygon = RectilinearPolygon(shapes[ap.layer_name])
                    via = design.tech.via(ap.primary_via)
                    assert polygon.contains_rect(via.cut_at(ap.x, ap.y))

    def test_strict_mode_still_zero_failed(self):
        from repro.core import evaluate_failed_pins

        design = build_testcase("ispd18_test1", scale=0.005)
        result = PinAccessFramework(
            design, PaafConfig(require_cut_on_pin=True)
        ).run()
        assert evaluate_failed_pins(design, result.access_map()) == []
