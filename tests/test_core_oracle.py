"""Tests for the pin access oracle facade."""

import pytest

from repro.core.oracle import PinAccessOracle

from tests.conftest import make_simple_design


@pytest.fixture(scope="module")
def oracle():
    import repro.tech as tech

    design = make_simple_design(tech.make_n45(), num_instances=3)
    return PinAccessOracle(design), design


class TestQuery:
    def test_selected_matches_access_map(self, oracle):
        orc, design = oracle
        answer = orc.query("u0", "A")
        assert answer.accessible
        assert answer.selected is not None
        amap = orc.result.access_map()
        assert (answer.selected.x, answer.selected.y) == (
            amap[("u0", "A")].x,
            amap[("u0", "A")].y,
        )

    def test_alternatives_in_cost_order_and_translated(self, oracle):
        orc, design = oracle
        answer = orc.query("u2", "Z")
        assert answer.alternatives
        inst = design.instance("u2")
        for ap in answer.alternatives:
            assert inst.bbox.xlo <= ap.x <= inst.bbox.xhi
        costs = [ap.cost for ap in answer.alternatives]
        # Generation order is the coordinate ladder: the non-preferred
        # type (dominant cost term) never decreases.
        t1s = [int(ap.nonpref_type) for ap in answer.alternatives]
        assert t1s == sorted(t1s)

    def test_selected_is_among_alternatives(self, oracle):
        orc, _ = oracle
        answer = orc.query("u1", "A")
        positions = {(ap.x, ap.y) for ap in answer.alternatives}
        assert (answer.selected.x, answer.selected.y) in positions

    def test_unknown_pin_answers_inaccessible(self, oracle):
        orc, _ = oracle
        answer = orc.query("u0", "NOPE")
        assert not answer.accessible
        assert answer.alternatives == []

    def test_unknown_instance_raises(self, oracle):
        orc, _ = oracle
        with pytest.raises(KeyError):
            orc.query("ghost", "A")

    def test_accessible_fraction_full(self, oracle):
        orc, _ = oracle
        assert orc.accessible_fraction() == 1.0

    def test_signature_exposed(self, oracle):
        orc, design = oracle
        sig0 = orc.signature_of("u0")
        sig2 = orc.signature_of("u2")
        assert sig0 == sig2  # same unique instance (see signature tests)
        assert sig0[0] == "CELL_X1"
