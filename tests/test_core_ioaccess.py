"""Tests for IO pin access analysis."""

import pytest

from repro.bench import build_testcase
from repro.core.ioaccess import IoPinAccess
from repro.drc import DrcEngine, ShapeContext


@pytest.fixture(scope="module")
def env():
    design = build_testcase("ispd18_test2", scale=0.005)
    assert design.io_pins
    access = IoPinAccess(design).run()
    return design, access


class TestIoAccess:
    def test_every_io_pin_covered(self, env):
        design, access = env
        assert set(access) == set(design.io_pins)

    def test_every_io_pin_gets_points(self, env):
        design, access = env
        for name, aps in access.items():
            assert aps, f"IO pin {name} has no access points"

    def test_points_on_pin_shape(self, env):
        design, access = env
        for name, aps in access.items():
            rect = design.io_pins[name].rect
            for ap in aps:
                assert rect.xlo <= ap.x <= rect.xhi
                assert rect.ylo <= ap.y <= rect.yhi
                assert ap.layer_name == design.io_pins[name].layer_name

    def test_points_are_drc_clean(self, env):
        design, access = env
        engine = DrcEngine(design.tech)
        context = ShapeContext.from_design(design)
        for name, aps in access.items():
            io_pin = design.io_pins[name]
            net_key = next(
                (
                    net.name
                    for net in design.nets.values()
                    if name in net.io_pins
                ),
                name,
            )
            for ap in aps:
                via = design.tech.via(ap.primary_via)
                assert (
                    engine.check_via_placement(
                        via, ap.x, ap.y, net_key, context
                    )
                    == []
                )

    def test_quota_respected(self, env):
        design, access = env
        for aps in access.values():
            assert len(aps) <= 8  # k=3 with group completion

    def test_design_without_io_pins(self, n45):
        from tests.conftest import make_simple_design

        design = make_simple_design(n45)
        assert IoPinAccess(design).run() == {}
