"""Shared fixtures for the test suite."""

import pytest

from repro import (
    CellMaster,
    Design,
    Instance,
    MasterPin,
    Orientation,
    Point,
    Rect,
    make_node,
)
from repro.db.master import PinUse
from repro.db.net import Net
from repro.db.tracks import TrackPattern
from repro.tech.layer import RoutingDirection


@pytest.fixture(scope="session")
def n45():
    """The 45 nm node preset (session-scoped: it is immutable)."""
    return make_node("N45")


@pytest.fixture(scope="session")
def n32():
    return make_node("N32")


@pytest.fixture(scope="session")
def n14():
    return make_node("N14")


def make_simple_master(name="CELL_X1", width=700, height=1400) -> CellMaster:
    """A small cell with rails and two well-shaped signal pins."""
    master = CellMaster(name=name, width=width, height=height)
    vss = MasterPin(name="VSS", use=PinUse.GROUND)
    vss.add_shape("M1", Rect(0, 0, width, 140))
    master.add_pin(vss)
    vdd = MasterPin(name="VDD", use=PinUse.POWER)
    vdd.add_shape("M1", Rect(0, height - 140, width, height))
    master.add_pin(vdd)
    a = MasterPin(name="A")
    a.add_shape("M1", Rect(140, 560, 420, 700))
    master.add_pin(a)
    z = MasterPin(name="Z")
    z.add_shape("M1", Rect(420, 840, 630, 980))
    master.add_pin(z)
    return master


def make_simple_design(tech, num_instances=2) -> Design:
    """A one-row design with abutting simple cells and full tracks."""
    design = Design("simple", tech)
    master = make_simple_master()
    design.add_master(master)
    design.die_area = Rect(0, 0, 14000, 5600)
    for layer in tech.routing_layers():
        direction = layer.direction
        design.add_track_pattern(
            TrackPattern(
                layer_name=layer.name,
                direction=direction,
                start=layer.offset,
                step=layer.pitch,
                count=(
                    14000 // layer.pitch
                    if direction is RoutingDirection.VERTICAL
                    else 5600 // layer.pitch
                ),
            )
        )
    for k in range(num_instances):
        inst = Instance(
            name=f"u{k}",
            master=master,
            location=Point(1400 + k * master.width, 1400),
            orient=Orientation.R0,
        )
        design.add_instance(inst)
        for pin_name in ("A", "Z"):
            net = Net(name=f"net_{k}_{pin_name}")
            net.add_term(inst.name, pin_name)
            design.add_net(net)
    return design


@pytest.fixture
def simple_design(n45):
    return make_simple_design(n45)
