"""Unit tests for unique instance extraction."""

import pytest

from repro.core.signature import instance_signature, unique_instances
from repro.db.inst import Instance
from repro.db.tracks import TrackPattern
from repro.geom.point import Point
from repro.geom.transform import Orientation
from repro.tech.layer import RoutingDirection

from tests.conftest import make_simple_design, make_simple_master


class TestSignature:
    def test_same_placement_modulo_tracks_same_signature(self, n45):
        design = make_simple_design(n45, num_instances=0)
        master = design.masters["CELL_X1"]
        # Track step on M1 is 140 and on M2 is 140 in the simple design;
        # x offsets 1400 and 2800 are both 0 mod 140.
        a = design.add_instance(Instance("a", master, Point(1400, 1400)))
        b = design.add_instance(Instance("b", master, Point(2800, 1400)))
        assert instance_signature(design, a) == instance_signature(design, b)

    def test_different_orientation_differs(self, n45):
        design = make_simple_design(n45, num_instances=0)
        master = design.masters["CELL_X1"]
        a = design.add_instance(Instance("a", master, Point(1400, 1400)))
        b = design.add_instance(
            Instance("b", master, Point(2800, 1400), Orientation.MX)
        )
        assert instance_signature(design, a) != instance_signature(design, b)

    def test_track_offset_differs(self, n45):
        design = make_simple_design(n45, num_instances=0)
        design.add_track_pattern(
            TrackPattern("M2", RoutingDirection.VERTICAL, 50, 120, 100)
        )
        master = design.masters["CELL_X1"]
        # 1400 mod 120 = 80; 1500 mod 120 = 60: different signatures.
        a = design.add_instance(Instance("a", master, Point(1400, 1400)))
        b = design.add_instance(Instance("b", master, Point(1500, 1400)))
        assert instance_signature(design, a) != instance_signature(design, b)

    def test_master_name_in_signature(self, n45):
        design = make_simple_design(n45, num_instances=1)
        sig = instance_signature(design, design.instance("u0"))
        assert sig[0] == "CELL_X1"


class TestUniqueInstances:
    def test_grouping_and_members(self, n45):
        design = make_simple_design(n45, num_instances=3)
        uis = unique_instances(design)
        # The cell is 700 wide but upper-layer tracks have a 280 pitch,
        # so alternating placements differ in their upper-layer offsets:
        # u0/u2 share a signature, u1 gets its own (the paper's "offsets
        # to all track patterns" rule).
        assert len(uis) == 2
        assert [m.name for m in uis[0].members] == ["u0", "u2"]
        assert [m.name for m in uis[1].members] == ["u1"]
        assert uis[0].representative.name == "u0"

    def test_first_seen_order(self, n45):
        design = make_simple_design(n45, num_instances=1)
        master2 = make_simple_master(name="OTHER")
        design.add_master(master2)
        design.add_instance(Instance("x", master2, Point(4200, 1400)))
        uis = unique_instances(design)
        assert [u.master_name for u in uis] == ["CELL_X1", "OTHER"]

    def test_translation_to_member(self, n45):
        design = make_simple_design(n45, num_instances=3)
        ui = unique_instances(design)[0]
        member = design.instance("u2")
        dx, dy = ui.translation_to(member)
        assert (dx, dy) == (1400, 0)

    def test_translation_rejects_wrong_master(self, n45):
        design = make_simple_design(n45, num_instances=1)
        master2 = make_simple_master(name="OTHER")
        design.add_master(master2)
        other = design.add_instance(Instance("x", master2, Point(4200, 1400)))
        ui = unique_instances(design)[0]
        with pytest.raises(ValueError):
            ui.translation_to(other)

    def test_misaligned_tracks_multiply_unique_instances(self):
        from repro.bench import build_testcase

        aligned = build_testcase("ispd18_test9", scale=0.003)
        misaligned = build_testcase("ispd18_test4", scale=0.003)
        per_master_aligned = len(unique_instances(aligned)) / max(
            1, len({i.master.name for i in aligned.instances.values()})
        )
        per_master_misaligned = len(unique_instances(misaligned)) / max(
            1, len({i.master.name for i in misaligned.instances.values()})
        )
        assert per_master_misaligned > per_master_aligned
