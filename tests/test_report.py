"""Unit tests for the table renderers."""

from repro.bench import build_testcase
from repro.report import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    table1_row,
    table2_row,
    table3_row,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows equal width.
        assert len(set(map(len, lines))) == 1

    def test_title(self):
        text = format_table(["a"], [["x"]], title="T")
        assert text.splitlines()[0] == "T"


class TestRows:
    def test_table1_row(self):
        design = build_testcase("ispd18_test1", scale=0.005)
        row = table1_row(design)
        assert row[0] == "ispd18_test1"
        assert row[1] == design.stats()["num_std_cells"]
        assert row[-1] == "N45"

    def test_table2_row_formats_times(self):
        row = table2_row("t", 10, 100, 120, 5, 0, 1.234, 0.5678)
        assert row[-2] == "1.23"
        assert row[-1] == "0.57"

    def test_table3_row(self):
        row = table3_row("t", 1000, 50, 3, 0, 1.0, 2.0, 3.0)
        assert row[:5] == ["t", 1000, 50, 3, 0]


class TestRender:
    def test_render_table1(self):
        design = build_testcase("ispd18_test1", scale=0.005)
        text = render_table1([design])
        assert "ispd18_test1" in text
        assert "Table I" in text

    def test_render_table2(self):
        text = render_table2([table2_row("t", 1, 2, 3, 4, 0, 0.1, 0.2)])
        assert "PAAF #APs" in text

    def test_render_table3(self):
        text = render_table3([table3_row("t", 10, 5, 1, 0, 1, 2, 3)])
        assert "w/ BCA" in text
