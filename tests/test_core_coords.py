"""Unit tests for coordinate-type enumeration (paper Sec. II-C)."""

import pytest

from repro.core.coords import (
    CoordType,
    NON_PREFERRED_TYPES,
    PREFERRED_TYPES,
    candidate_coords,
    track_patterns_for_axis,
)
from repro.db.design import Design
from repro.db.tracks import TrackPattern
from repro.geom.rect import Rect
from repro.tech.layer import RoutingDirection


@pytest.fixture
def design(n45):
    d = Design("coords", n45)
    d.die_area = Rect(0, 0, 14000, 14000)
    for layer in n45.routing_layers():
        d.add_track_pattern(
            TrackPattern(
                layer_name=layer.name,
                direction=layer.direction,
                start=70,
                step=layer.pitch,
                count=90,
            )
        )
    return d


class TestTypeLadder:
    def test_costs_are_enum_values(self):
        assert int(CoordType.ON_TRACK) == 0
        assert int(CoordType.ENCLOSURE_BOUNDARY) == 3

    def test_preferred_includes_all_four(self):
        assert PREFERRED_TYPES == (
            CoordType.ON_TRACK,
            CoordType.HALF_TRACK,
            CoordType.SHAPE_CENTER,
            CoordType.ENCLOSURE_BOUNDARY,
        )

    def test_non_preferred_excludes_boundary(self):
        assert CoordType.ENCLOSURE_BOUNDARY not in NON_PREFERRED_TYPES


class TestTrackSourceSelection:
    def test_preferred_axis_uses_own_layer(self, design, n45):
        m1 = n45.layer("M1")  # horizontal: preferred axis is y
        patterns = track_patterns_for_axis(design, n45, m1, "y")
        assert patterns and all(p.layer_name == "M1" for p in patterns)

    def test_non_preferred_axis_uses_layer_above(self, design, n45):
        m1 = n45.layer("M1")
        patterns = track_patterns_for_axis(design, n45, m1, "x")
        assert patterns and all(p.layer_name == "M2" for p in patterns)

    def test_top_layer_falls_back_below(self, design, n45):
        m9 = n45.layer("M9")  # horizontal, top of stack
        patterns = track_patterns_for_axis(design, n45, m9, "x")
        assert patterns and all(p.layer_name == "M8" for p in patterns)

    def test_bad_axis_rejected(self, design, n45):
        with pytest.raises(ValueError):
            track_patterns_for_axis(design, n45, n45.layer("M1"), "z")


class TestCandidateCoords:
    def test_on_track(self, design, n45):
        m1 = n45.layer("M1")
        rect = Rect(0, 100, 500, 400)
        ys = candidate_coords("y", CoordType.ON_TRACK, rect, m1, design, n45)
        assert ys == [210, 350]

    def test_half_track(self, design, n45):
        m1 = n45.layer("M1")
        rect = Rect(0, 100, 500, 400)
        ys = candidate_coords("y", CoordType.HALF_TRACK, rect, m1, design, n45)
        assert ys == [140, 280]

    def test_shape_center_skipped_when_two_tracks_touch(self, design, n45):
        m1 = n45.layer("M1")
        rect = Rect(0, 100, 500, 400)  # touches tracks 210 and 350
        assert (
            candidate_coords(
                "y", CoordType.SHAPE_CENTER, rect, m1, design, n45
            )
            == []
        )

    def test_shape_center_generated_when_narrow(self, design, n45):
        m1 = n45.layer("M1")
        rect = Rect(0, 100, 500, 200)  # touches no track
        got = candidate_coords(
            "y", CoordType.SHAPE_CENTER, rect, m1, design, n45
        )
        assert got == [150]

    def test_enclosure_boundary_both_alignments(self, design, n45):
        m1 = n45.layer("M1")
        via = n45.primary_via_from("M1")  # enclosure yspan [-35, 35]
        rect = Rect(0, 100, 500, 200)
        got = candidate_coords(
            "y", CoordType.ENCLOSURE_BOUNDARY, rect, m1, design, n45, via
        )
        assert got == [135, 165]

    def test_enclosure_boundary_requires_via(self, design, n45):
        m1 = n45.layer("M1")
        rect = Rect(0, 100, 500, 200)
        assert (
            candidate_coords(
                "y", CoordType.ENCLOSURE_BOUNDARY, rect, m1, design, n45, None
            )
            == []
        )

    def test_enclosure_boundary_skipped_when_enclosure_larger(
        self, design, n45
    ):
        m1 = n45.layer("M1")
        via = n45.primary_via_from("M1")
        rect = Rect(0, 100, 500, 150)  # 50 tall < enclosure 70
        assert (
            candidate_coords(
                "y", CoordType.ENCLOSURE_BOUNDARY, rect, m1, design, n45, via
            )
            == []
        )

    def test_x_axis_on_vertical_layer_uses_own_tracks(self, design, n45):
        m2 = n45.layer("M2")
        rect = Rect(100, 0, 400, 500)
        xs = candidate_coords("x", CoordType.ON_TRACK, rect, m2, design, n45)
        assert xs == [210, 350]
