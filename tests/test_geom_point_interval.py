"""Unit tests for points and intervals."""

import pytest

from repro.geom.interval import Interval, union_intervals
from repro.geom.point import Point, manhattan_distance


class TestPoint:
    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_translated(self):
        assert Point(3, 4).translated(-1, 2) == Point(2, 6)

    def test_immutability(self):
        p = Point(0, 0)
        with pytest.raises(Exception):
            p.x = 5

    def test_as_tuple_and_str(self):
        assert Point(7, -2).as_tuple() == (7, -2)
        assert str(Point(7, -2)) == "(7, -2)"

    def test_manhattan_distance(self):
        assert manhattan_distance(Point(0, 0), Point(3, 4)) == 7
        assert manhattan_distance(Point(-1, -1), Point(1, 1)) == 4
        assert manhattan_distance(Point(5, 5), Point(5, 5)) == 0


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_degenerate_allowed(self):
        iv = Interval(4, 4)
        assert iv.length == 0
        assert iv.contains(4)

    def test_length_and_center(self):
        iv = Interval(10, 30)
        assert iv.length == 20
        assert iv.center == 20
        assert Interval(0, 5).center == 2  # rounds toward lo

    def test_contains(self):
        iv = Interval(0, 10)
        assert iv.contains(0) and iv.contains(10) and iv.contains(5)
        assert not iv.contains(-1) and not iv.contains(11)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(-1, 5))

    def test_overlaps_closed_semantics(self):
        assert Interval(0, 10).overlaps(Interval(10, 20))  # touch counts
        assert not Interval(0, 10).overlaps(Interval(11, 20))

    def test_overlap_length_signs(self):
        assert Interval(0, 10).overlap_length(Interval(5, 20)) == 5
        assert Interval(0, 10).overlap_length(Interval(10, 20)) == 0
        assert Interval(0, 10).overlap_length(Interval(15, 20)) == -5

    def test_distance(self):
        assert Interval(0, 10).distance(Interval(15, 20)) == 5
        assert Interval(0, 10).distance(Interval(5, 20)) == 0

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        with pytest.raises(ValueError):
            Interval(0, 10).intersect(Interval(11, 20))

    def test_hull_and_bloat(self):
        assert Interval(0, 5).hull(Interval(8, 9)) == Interval(0, 9)
        assert Interval(5, 10).bloated(3) == Interval(2, 13)


class TestUnionIntervals:
    def test_empty(self):
        assert union_intervals([]) == []

    def test_disjoint_kept_sorted(self):
        out = union_intervals([Interval(10, 20), Interval(0, 5)])
        assert out == [Interval(0, 5), Interval(10, 20)]

    def test_touching_merge(self):
        out = union_intervals([Interval(0, 5), Interval(5, 9)])
        assert out == [Interval(0, 9)]

    def test_nested_merge(self):
        out = union_intervals(
            [Interval(0, 100), Interval(10, 20), Interval(50, 120)]
        )
        assert out == [Interval(0, 120)]
