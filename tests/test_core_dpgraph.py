"""Unit tests for the layered DP graph (Algorithm 2 machinery)."""

import pytest

from repro.core.dpgraph import LayeredDpGraph


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            LayeredDpGraph([])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            LayeredDpGraph([["a"], [], ["b"]])


class TestSolve:
    def test_single_group_picks_cheapest(self):
        graph = LayeredDpGraph([["a", "b", "c"]])
        costs = {"a": 5, "b": 1, "c": 3}

        def edge_cost(prev, curr, prev_prev):
            return costs[curr]

        path, total = graph.solve(edge_cost)
        assert path == ["b"]
        assert total == 1

    def test_two_groups_minimize_sum(self):
        graph = LayeredDpGraph([["a1", "a2"], ["b1", "b2"]])
        edge = {
            (None, "a1"): 1, (None, "a2"): 10,
            ("a1", "b1"): 10, ("a1", "b2"): 1,
            ("a2", "b1"): 1, ("a2", "b2"): 10,
        }

        def edge_cost(prev, curr, prev_prev):
            return edge[(prev, curr)]

        path, total = graph.solve(edge_cost)
        assert path == ["a1", "b2"]
        assert total == 2

    def test_greedy_trap_avoided(self):
        # The cheapest first vertex leads to an expensive total; DP must
        # not take it.
        graph = LayeredDpGraph([["cheap", "costly"], ["x"]])
        edge = {
            (None, "cheap"): 0, (None, "costly"): 2,
            ("cheap", "x"): 100, ("costly", "x"): 1,
        }
        path, total = graph.solve(lambda p, c, pp: edge[(p, c)])
        assert path == ["costly", "x"]
        assert total == 3

    def test_visits_one_vertex_per_group(self):
        groups = [["a"], ["b1", "b2", "b3"], ["c"], ["d1", "d2"]]
        graph = LayeredDpGraph(groups)
        path, _ = graph.solve(lambda p, c, pp: 1)
        assert len(path) == 4
        for group, chosen in zip(groups, path):
            assert chosen in group

    def test_history_sees_back_pointer(self):
        # prev_prev must be the chosen predecessor of prev, fixed
        # before the current stage is relaxed.
        seen = []

        def edge_cost(prev, curr, prev_prev):
            if prev is not None and prev_prev is not None:
                seen.append((prev_prev, prev, curr))
            return {"a1": 0, "a2": 5}.get(curr, 1)

        graph = LayeredDpGraph([["a1", "a2"], ["b"], ["c"]])
        path, _ = graph.solve(edge_cost)
        assert path == ["a1", "b", "c"]
        # When pricing b->c the recorded predecessor of b is a1.
        assert ("a1", "b", "c") in seen
        assert ("a2", "b", "c") not in seen

    def test_history_cost_influences_choice(self):
        # c2 conflicts with a1 two groups back; DP should route through
        # b such that the history cost is avoided... the chain model
        # prices it on the edge (b, c2) given prev_prev.
        def edge_cost(prev, curr, prev_prev):
            if prev is None:
                return 0
            if prev_prev == "a1" and curr == "c1":
                return 100
            return 1

        graph = LayeredDpGraph([["a1"], ["b"], ["c1", "c2"]])
        path, total = graph.solve(edge_cost)
        assert path == ["a1", "b", "c2"]

    def test_deterministic_tie_break(self):
        graph = LayeredDpGraph([["a", "b"], ["x", "y"]])
        path1, _ = graph.solve(lambda p, c, pp: 1)
        graph2 = LayeredDpGraph([["a", "b"], ["x", "y"]])
        path2, _ = graph2.solve(lambda p, c, pp: 1)
        assert path1 == path2

    def test_long_chain(self):
        groups = [[f"v{i}a", f"v{i}b"] for i in range(50)]

        def edge_cost(prev, curr, prev_prev):
            return 0 if curr.endswith("a") else 1

        graph = LayeredDpGraph(groups)
        path, total = graph.solve(edge_cost)
        assert total == 0
        assert all(v.endswith("a") for v in path)
