"""Tests for routed-DEF writing and parsing."""

import pytest

from repro.bench import build_testcase
from repro.core import PinAccessFramework
from repro.lefdef import (
    parse_lef,
    parse_routed_def,
    write_lef,
    write_routed_def,
)
from repro.route import DetailedRouter, count_route_drcs


@pytest.fixture(scope="module")
def routed():
    design = build_testcase("ispd18_test1", scale=0.005)
    access = PinAccessFramework(design).run().access_map()
    result = DetailedRouter(design).route(access)
    return design, result


class TestWrite:
    def test_routed_clause_emitted(self, routed):
        design, result = routed
        text = write_routed_def(design, result)
        assert "+ ROUTED" in text
        assert "NEW " in text
        assert "V12_P" in text or "V12_S" in text

    def test_every_routed_net_has_clause(self, routed):
        design, result = routed
        text = write_routed_def(design, result)
        nets_with_wires = {net for net, _, _ in result.wires}
        for net_name in nets_with_wires:
            start = text.index(f"- {net_name} ")
            end = text.index(";", start)
            assert "+ ROUTED" in text[start:end], net_name

    def test_statement_terminators_preserved(self, routed):
        design, result = routed
        text = write_routed_def(design, result)
        # The NETS section still has one ';' per net statement.
        nets_section = text[text.index("NETS ") : text.index("END NETS")]
        assert nets_section.count(";") == len(design.nets) + 1


class TestRoundtrip:
    def roundtrip(self, design, result):
        lef = write_lef(design.tech, list(design.masters.values()))
        tech, masters = parse_lef(lef, name=design.tech.name)
        text = write_routed_def(design, result)
        return parse_routed_def(text, tech, masters)

    def test_connectivity_survives(self, routed):
        design, result = routed
        back_design, _ = self.roundtrip(design, result)
        assert back_design.stats() == design.stats()
        for name, net in design.nets.items():
            assert back_design.nets[name].terms == net.terms

    def test_vias_survive_exactly(self, routed):
        design, result = routed
        _, back = self.roundtrip(design, result)
        assert sorted(back.vias) == sorted(result.vias)

    def test_wires_survive_exactly(self, routed):
        design, result = routed
        _, back = self.roundtrip(design, result)
        assert sorted(back.wires) == sorted(result.wires)

    def test_drc_score_identical(self, routed):
        design, result = routed
        back_design, back = self.roundtrip(design, result)
        original = count_route_drcs(design, result, scope="pin-access")
        reparsed = count_route_drcs(back_design, back, scope="pin-access")
        assert len(original) == len(reparsed)
