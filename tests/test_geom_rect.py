"""Unit tests for rectangles."""

import pytest

from repro.geom.point import Point
from repro.geom.rect import Rect


class TestConstruction:
    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            Rect(10, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 10, 10, 0)

    def test_degenerate_allowed(self):
        r = Rect(5, 5, 5, 5)
        assert r.area == 0

    def test_from_points_any_corner_order(self):
        assert Rect.from_points(Point(10, 0), Point(0, 10)) == Rect(0, 0, 10, 10)

    def test_centered_at_even(self):
        r = Rect.centered_at(100, 100, 40, 20)
        assert r == Rect(80, 90, 120, 110)
        assert r.center == Point(100, 100)

    def test_centered_at_odd_keeps_size(self):
        r = Rect.centered_at(100, 100, 41, 21)
        assert r.width == 41 and r.height == 21


class TestAccessors:
    def test_dims(self):
        r = Rect(0, 0, 30, 10)
        assert (r.width, r.height) == (30, 10)
        assert r.min_dim == 10 and r.max_dim == 30
        assert r.area == 300

    def test_spans(self):
        r = Rect(1, 2, 3, 4)
        assert (r.xspan.lo, r.xspan.hi) == (1, 3)
        assert (r.yspan.lo, r.yspan.hi) == (2, 4)

    def test_corners_ccw(self):
        r = Rect(0, 0, 2, 3)
        assert r.corners() == [
            Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3),
        ]


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(10, 10))
        assert not r.contains_point(Point(11, 5))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert Rect(0, 0, 10, 10).contains_rect(Rect(0, 0, 10, 10))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 11, 8))

    def test_intersects_touch(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(10, 0, 20, 10))

    def test_overlaps_requires_area(self):
        assert not Rect(0, 0, 10, 10).overlaps(Rect(10, 0, 20, 10))
        assert Rect(0, 0, 10, 10).overlaps(Rect(9, 9, 20, 20))


class TestDerived:
    def test_intersection(self):
        got = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 20, 20))
        assert got == Rect(5, 5, 10, 10)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6))

    def test_hull(self):
        assert Rect(0, 0, 1, 1).hull(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_bloat_shrink(self):
        assert Rect(10, 10, 20, 20).bloated(5) == Rect(5, 5, 25, 25)
        assert Rect(10, 10, 20, 20).bloated(-2) == Rect(12, 12, 18, 18)

    def test_translated(self):
        assert Rect(0, 0, 5, 5).translated(3, -1) == Rect(3, -1, 8, 4)


class TestMetrics:
    def test_distance_axis_aligned(self):
        assert Rect(0, 0, 10, 10).distance(Rect(20, 0, 30, 10)) == 10
        assert Rect(0, 0, 10, 10).distance(Rect(0, 25, 10, 30)) == 15

    def test_distance_overlapping_is_zero(self):
        assert Rect(0, 0, 10, 10).distance(Rect(5, 5, 15, 15)) == 0

    def test_distance_diagonal_is_euclidean(self):
        # gaps dx=3, dy=4 -> 5
        assert Rect(0, 0, 10, 10).distance(Rect(13, 14, 20, 20)) == 5

    def test_prl_positive_on_parallel_overlap(self):
        a = Rect(0, 0, 100, 10)
        b = Rect(50, 20, 200, 30)
        assert a.prl(b) == 50

    def test_prl_negative_on_diagonal(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(20, 20, 30, 30)
        assert a.prl(b) == -10
