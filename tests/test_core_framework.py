"""Unit and integration tests for the framework orchestrator."""

import pytest

from repro.core.config import PaafConfig
from repro.core.framework import (
    PinAccessFramework,
    evaluate_failed_pins,
)

from tests.conftest import make_simple_design


@pytest.fixture
def design(n45):
    return make_simple_design(n45, num_instances=3)


class TestConfig:
    def test_defaults_match_paper(self):
        config = PaafConfig()
        assert config.k == 3
        assert config.alpha == 0.3
        assert config.patterns_per_unique_instance == 3
        assert config.boundary_conflict_aware
        assert config.history_aware

    def test_validation(self):
        with pytest.raises(ValueError):
            PaafConfig(k=0)
        with pytest.raises(ValueError):
            PaafConfig(patterns_per_unique_instance=0)

    def test_without_bca(self):
        base = PaafConfig()
        nobca = base.without_bca()
        assert nobca.patterns_per_unique_instance == 1
        assert not nobca.boundary_conflict_aware
        assert base.patterns_per_unique_instance == 3  # original untouched


class TestRun:
    def test_full_run_populates_everything(self, design):
        result = PinAccessFramework(design).run()
        assert result.num_unique_instances == 2
        assert result.total_access_points > 0
        assert result.selection is not None
        assert set(result.timings) == {"step1", "step2", "step3", "total"}
        for ua in result.unique_accesses:
            assert ua.patterns

    def test_step1_only(self, design):
        result = PinAccessFramework(design).run_step1()
        assert result.total_access_points > 0
        assert result.selection is None
        assert all(not ua.patterns for ua in result.unique_accesses)

    def test_no_dirty_aps(self, design):
        result = PinAccessFramework(design).run()
        assert result.count_dirty_aps() == 0

    def test_access_map_covers_connected_pins(self, design):
        result = PinAccessFramework(design).run()
        amap = result.access_map()
        for inst, pin in design.connected_pins():
            assert (inst.name, pin.name) in amap

    def test_no_failed_pins(self, design):
        result = PinAccessFramework(design).run()
        assert result.failed_pins() == []
        assert evaluate_failed_pins(design, result.access_map()) == []

    def test_access_map_positions_differ_across_members(self, design):
        result = PinAccessFramework(design).run()
        amap = result.access_map()
        # u0 and u2 share a unique instance: their APs are pure
        # translations of each other.
        a0 = amap[("u0", "A")]
        a2 = amap[("u2", "A")]
        assert (a2.x - a0.x, a2.y - a0.y) == (1400, 0)

    def test_deterministic_across_runs(self, design, n45):
        r1 = PinAccessFramework(design).run()
        design2 = make_simple_design(n45, num_instances=3)
        r2 = PinAccessFramework(design2).run()
        m1 = {
            k: (ap.x, ap.y) for k, ap in r1.access_map().items()
        }
        m2 = {
            k: (ap.x, ap.y) for k, ap in r2.access_map().items()
        }
        assert m1 == m2


class TestEvaluator:
    def test_missing_pin_fails(self, design):
        result = PinAccessFramework(design).run()
        amap = result.access_map()
        removed = ("u0", "A")
        del amap[removed]
        failed = evaluate_failed_pins(design, amap)
        assert failed == [removed]

    def test_conflicting_pair_fails_both(self, design):
        result = PinAccessFramework(design).run()
        amap = result.access_map()
        # Force u1's A onto a point adjacent to u0's A via.
        ap0 = amap[("u0", "A")]
        amap[("u1", "A")] = ap0.translated(140, 0)
        failed = set(evaluate_failed_pins(design, amap))
        assert ("u0", "A") in failed
        assert ("u1", "A") in failed


class TestBaseline:
    def test_baseline_generates_dirty_aps_on_suite(self):
        from repro.bench import build_testcase
        from repro.core.baseline import LegacyPinAccess

        design = build_testcase("ispd18_test1", scale=0.005)
        baseline = LegacyPinAccess(design)
        result = baseline.run()
        assert result.total_access_points > 0
        assert result.count_dirty_aps() > 0

    def test_baseline_fails_more_pins_than_paaf(self):
        from repro.bench import build_testcase
        from repro.core.baseline import LegacyPinAccess

        design = build_testcase("ispd18_test1", scale=0.005)
        baseline = LegacyPinAccess(design)
        base_failed = evaluate_failed_pins(
            design, baseline.access_map(baseline.run())
        )
        paaf = PinAccessFramework(design).run()
        paaf_failed = evaluate_failed_pins(design, paaf.access_map())
        assert len(base_failed) > 10 * max(1, len(paaf_failed))

    def test_baseline_k_truncates(self):
        from repro.bench import build_testcase
        from repro.core.baseline import LegacyPinAccess

        design = build_testcase("ispd18_test1", scale=0.005)
        result = LegacyPinAccess(design, k=1).run()
        for ua in result.unique_accesses:
            for aps in ua.aps_by_pin.values():
                assert len(aps) <= 1
